// Centralized collaborative learning on the synthetic MNIST-like dataset
// (the Figure 1 / Figure 2a pipeline): 10 clients, configurable attack,
// heterogeneity and aggregation rule.
//
//   ./examples/centralized_training --rule BOX-GEOM --attack sign-flip \
//       --byzantine 1 --heterogeneity mild --rounds 30

#include <iostream>

#include "core/bcl.hpp"

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv,
                     {"rule", "attack", "byzantine", "heterogeneity",
                      "rounds", "seed", "batch", "image", "threads"});

  const std::string rule = args.get_string("rule", "BOX-GEOM");
  const std::string attack = args.get_string("attack", "sign-flip");
  const std::size_t image =
      static_cast<std::size_t>(args.get_int("image", 14));

  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_like(
      static_cast<std::uint64_t>(args.get_int("seed", 42)));
  spec.height = image;
  spec.width = image;
  spec.train_per_class = 120;
  spec.test_per_class = 30;
  const auto data = ml::make_synthetic_dataset(spec);
  const std::size_t dim = data.train.feature_dim();

  TrainingConfig cfg;
  cfg.num_clients = 10;
  cfg.num_byzantine =
      static_cast<std::size_t>(args.get_int("byzantine", 1));
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 30));
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch", 32));
  cfg.rule = make_rule(rule);
  cfg.attack = make_attack(attack);
  cfg.schedule = ml::LearningRateSchedule::paper_default(cfg.rounds);
  // The paper's eta = 0.01 is tuned for TensorFlow-scale runs; a slightly
  // larger constant works better at this reduced scale.
  cfg.schedule = ml::LearningRateSchedule(0.05, 0.05 / cfg.rounds);
  cfg.heterogeneity =
      ml::parse_heterogeneity(args.get_string("heterogeneity", "mild"));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
  cfg.pool = &pool;

  std::cout << "Centralized collaborative learning: rule=" << rule
            << " attack=" << attack << " f=" << cfg.num_byzantine
            << " heterogeneity="
            << ml::heterogeneity_name(cfg.heterogeneity) << "\n"
            << "model=MLP(" << dim << "-32-16-10), clients=10, rounds="
            << cfg.rounds << "\n\n";

  ModelFactory factory = [dim] { return ml::make_mlp(dim, 32, 16, 10); };
  CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
  const auto result = trainer.run();

  Table table({"round", "accuracy", "honest loss", "lr"});
  for (const auto& metrics : result.history) {
    if (metrics.round % 5 == 0 || metrics.round + 1 == cfg.rounds) {
      table.new_row()
          .add_int(static_cast<long long>(metrics.round))
          .add_num(metrics.accuracy, 4)
          .add_num(metrics.mean_honest_loss, 4)
          .add_num(metrics.learning_rate, 5);
    }
  }
  table.print(std::cout);
  std::cout << "\nBest accuracy: " << format_double(result.best_accuracy(), 4)
            << "\n";
  return 0;
}
