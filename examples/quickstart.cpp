// Quickstart: aggregate a handful of gradient vectors with every rule in
// the library, with two of the vectors Byzantine, and measure each output's
// approximation of the true geometric median (Definition 3.3).
//
//   ./examples/quickstart

#include <iostream>

#include "core/bcl.hpp"

int main() {
  using namespace bcl;

  // Eight honest 3-dimensional "gradients" clustered around (1, -1, 0.5).
  Rng rng(2024);
  VectorList honest;
  for (int i = 0; i < 8; ++i) {
    honest.push_back({1.0 + rng.gaussian(0.0, 0.2),
                      -1.0 + rng.gaussian(0.0, 0.2),
                      0.5 + rng.gaussian(0.0, 0.2)});
  }

  // Two Byzantine vectors try to drag the aggregate away.
  VectorList received = honest;
  received.push_back({50.0, 50.0, 50.0});
  received.push_back({-40.0, 60.0, -10.0});

  AggregationContext ctx;
  ctx.n = received.size();  // n = 10 clients
  ctx.t = 2;                // tolerate up to 2 Byzantine

  const Vector mu_star = geometric_median_point(honest);
  std::cout << "True geometric median of the honest vectors: ("
            << mu_star[0] << ", " << mu_star[1] << ", " << mu_star[2]
            << ")\n\n";

  Table table({"rule", "out[0]", "out[1]", "out[2]", "dist to mu*",
               "ratio (Def 3.3)"});
  for (const auto& name : all_rule_names()) {
    const auto rule = make_rule(name);
    const Vector out = rule->aggregate(received, ctx);
    const auto report = measure_geo_approximation(received, honest, ctx.t, out);
    table.new_row()
        .add(name)
        .add_num(out[0], 3)
        .add_num(out[1], 3)
        .add_num(out[2], 3)
        .add_num(report.distance_to_true, 4)
        .add_num(report.ratio, 3);
  }
  table.print(std::cout);

  std::cout << "\nNote how MEAN is dragged by the outliers while the robust\n"
               "rules stay near mu*; BOX-GEOM is the paper's Algorithm 2\n"
               "with a 2*sqrt(d) worst-case guarantee.\n";
  return 0;
}
