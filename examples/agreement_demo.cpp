// Approximate-agreement demo: runs the hyperbox protocol (Algorithm 2) and
// the MD-GEOM protocol (Algorithm 1) against two adversaries and prints the
// per-round honest diameter, showing Theorem 4.4's halving and Lemma 4.2's
// non-convergence side by side.
//
//   ./examples/agreement_demo [--nodes 10] [--byzantine 2] [--dim 3]
//                             [--rounds 10] [--seed 1]

#include <iostream>

#include "core/bcl.hpp"

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv,
                     {"nodes", "byzantine", "dim", "rounds", "seed"});
  const std::size_t n = static_cast<std::size_t>(args.get_int("nodes", 10));
  const std::size_t t = static_cast<std::size_t>(args.get_int("byzantine", 2));
  const std::size_t d = static_cast<std::size_t>(args.get_int("dim", 3));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 10));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  if (3 * t >= n) {
    std::cerr << "need t < n/3\n";
    return 1;
  }

  // Random honest inputs; Byzantine ids are the last t.
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(-5.0, 5.0);
    inputs.push_back(v);
  }
  std::vector<std::size_t> byz_ids;
  for (std::size_t i = n - t; i < n; ++i) byz_ids.push_back(i);

  auto run = [&](const std::string& fn_name, Adversary& adversary) {
    AgreementConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.round_function = make_round_function(fn_name);
    cfg.epsilon = 0.0;  // run all rounds; we want the full trace
    return run_fixed_rounds_agreement(inputs, adversary, rounds, cfg);
  };

  std::cout << "=== BOX-GEOM vs MD-GEOM under a sign-flip adversary ===\n";
  {
    SignFlipAdversary adv_a(byz_ids);
    SignFlipAdversary adv_b(byz_ids);
    const auto box = run("BOX-GEOM", adv_a);
    const auto md = run("MD-GEOM-STICKY", adv_b);
    Table table({"round", "BOX-GEOM diameter", "MD-GEOM diameter"});
    for (std::size_t r = 0; r < box.trace.honest_diameter.size(); ++r) {
      table.new_row()
          .add_int(static_cast<long long>(r))
          .add_num(box.trace.honest_diameter[r], 6)
          .add_num(md.trace.honest_diameter[r], 6);
    }
    table.print(std::cout);
  }

  std::cout << "\n=== Lemma 4.2: split-world adversary (n = 10, t = 2) ===\n";
  {
    // Two camps of 4 honest nodes; one Byzantine supporter per camp.
    VectorList split_inputs(10, constant(d, 0.0));
    for (std::size_t i = 4; i < 8; ++i) split_inputs[i] = constant(d, 1.0);
    SplitWorldAdversary adv_a({0, 1, 2, 3}, {4, 5, 6, 7}, {8}, {9});
    SplitWorldAdversary adv_b({0, 1, 2, 3}, {4, 5, 6, 7}, {8}, {9});
    AgreementConfig cfg;
    cfg.n = 10;
    cfg.t = 2;
    cfg.epsilon = 0.0;
    cfg.round_function = make_round_function("BOX-GEOM");
    const auto box = run_fixed_rounds_agreement(split_inputs, adv_a, rounds, cfg);
    cfg.round_function = make_round_function("MD-GEOM-STICKY");
    const auto md = run_fixed_rounds_agreement(split_inputs, adv_b, rounds, cfg);
    Table table({"round", "BOX-GEOM diameter", "MD-GEOM diameter (stuck)"});
    for (std::size_t r = 0; r < box.trace.honest_diameter.size(); ++r) {
      table.new_row()
          .add_int(static_cast<long long>(r))
          .add_num(box.trace.honest_diameter[r], 6)
          .add_num(md.trace.honest_diameter[r], 6);
    }
    table.print(std::cout);
    std::cout << "\nBOX-GEOM halves the diameter every round (Theorem 4.4);\n"
                 "MD-GEOM never leaves the initial configuration (Lemma 4.2).\n";
  }
  return 0;
}
