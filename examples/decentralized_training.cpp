// Decentralized collaborative learning (the Figure 3 pipeline): no server,
// gradients agreed on via the approximate-agreement subroutine with
// ceil(log2 t) sub-rounds per learning iteration.
//
//   ./examples/decentralized_training --rule BOX-GEOM --attack sign-flip \
//       --byzantine 1 --rounds 20

#include <iostream>

#include "core/bcl.hpp"

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv,
                     {"rule", "attack", "byzantine", "heterogeneity",
                      "rounds", "seed", "batch", "image", "threads"});

  const std::string rule = args.get_string("rule", "BOX-GEOM");
  const std::string attack = args.get_string("attack", "sign-flip");
  const std::size_t image =
      static_cast<std::size_t>(args.get_int("image", 10));

  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_like(
      static_cast<std::uint64_t>(args.get_int("seed", 42)));
  spec.height = image;
  spec.width = image;
  spec.train_per_class = 80;
  spec.test_per_class = 25;
  const auto data = ml::make_synthetic_dataset(spec);
  const std::size_t dim = data.train.feature_dim();

  TrainingConfig cfg;
  cfg.num_clients = 10;
  cfg.num_byzantine =
      static_cast<std::size_t>(args.get_int("byzantine", 1));
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 20));
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch", 16));
  cfg.rule = make_rule(rule);
  cfg.attack = make_attack(attack);
  cfg.schedule = ml::LearningRateSchedule(0.05, 0.05 / cfg.rounds);
  cfg.heterogeneity =
      ml::parse_heterogeneity(args.get_string("heterogeneity", "mild"));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
  cfg.pool = &pool;

  std::cout << "Decentralized collaborative learning: rule=" << rule
            << " attack=" << attack << " f=" << cfg.num_byzantine << "\n"
            << "agreement sub-rounds per iteration t: ceil(log2(t+2))\n\n";

  ModelFactory factory = [dim] { return ml::make_mlp(dim, 16, 8, 10); };
  DecentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
  const auto result = trainer.run();

  Table table({"round", "mean acc", "min acc", "max acc", "disagreement"});
  for (const auto& metrics : result.history) {
    table.new_row()
        .add_int(static_cast<long long>(metrics.round))
        .add_num(metrics.accuracy, 4)
        .add_num(metrics.accuracy_min, 4)
        .add_num(metrics.accuracy_max, 4)
        .add_num(metrics.disagreement, 5);
  }
  table.print(std::cout);
  std::cout << "\nBest mean accuracy: "
            << format_double(result.best_accuracy(), 4) << "\n"
            << "The 'disagreement' column is the post-agreement diameter of\n"
               "the honest gradient vectors in that learning round.\n";
  return 0;
}
