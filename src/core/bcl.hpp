#pragma once
// Umbrella header: the full public API of the Byzantine collaborative
// learning library.
//
// Layering (bottom up):
//   util        - RNG, thread pool, tables, CLI
//   linalg      - vectors, hyperboxes, order statistics
//   geometry    - Weiszfeld, medoid, enclosing balls, min-diameter subsets,
//                 planar safe areas
//   aggregation - all aggregation rules + the approximation measure
//   compression - gradient codecs (top-k / rand-k / QSGD) with wire-cost
//                 accounting, error feedback + name registry
//   network     - discrete-event P2P simulator (delay models, partial
//                 synchrony, bandwidth-priced delivery) with Byzantine
//                 adversaries; sync adapter
//   agreement   - multidimensional approximate-agreement protocols
//   ml          - tensors, layers, models, synthetic datasets, partitions
//   attacks     - Byzantine client behaviours + name registry
//   learning    - centralized / decentralized collaborative training
//   experiments - declarative scenario specs, runner, metric emitters,
//                 sweep expansion

#include "aggregation/approximation.hpp"
#include "aggregation/hyperbox_rules.hpp"
#include "aggregation/krum.hpp"
#include "aggregation/minimum_diameter_rules.hpp"
#include "aggregation/registry.hpp"
#include "aggregation/rule.hpp"
#include "aggregation/simple_rules.hpp"
#include "agreement/protocol.hpp"
#include "agreement/round_function.hpp"
#include "attacks/attack.hpp"
#include "attacks/registry.hpp"
#include "compression/codec.hpp"
#include "compression/registry.hpp"
#include "experiments/emitters.hpp"
#include "experiments/runner.hpp"
#include "experiments/scenario.hpp"
#include "experiments/sweep.hpp"
#include "faults/fault_plan.hpp"
#include "faults/staleness.hpp"
#include "geometry/convex2d.hpp"
#include "geometry/enclosing_ball.hpp"
#include "geometry/medoid.hpp"
#include "geometry/min_diameter.hpp"
#include "geometry/safe_area.hpp"
#include "geometry/subsets.hpp"
#include "geometry/weiszfeld.hpp"
#include "learning/centralized.hpp"
#include "learning/client.hpp"
#include "learning/config.hpp"
#include "learning/decentralized.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"
#include "linalg/hyperbox.hpp"
#include "linalg/kernels.hpp"
#include "linalg/sparse_rows.hpp"
#include "linalg/stats.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"
#include "ml/architectures.hpp"
#include "aggregation/robust_baselines.hpp"
#include "ml/dataset.hpp"
#include "ml/checkpoint.hpp"
#include "ml/idx_loader.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "ml/partition.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/event_network.hpp"
#include "network/message.hpp"
#include "network/sync_network.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
