#include "network/event_network.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <stdexcept>

#include "faults/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

namespace {

constexpr std::size_t kNoQuorum = static_cast<std::size_t>(-1);

double clamp_extra_delay(double requested, double bound) {
  if (requested <= 0.0) return 0.0;
  return requested < bound ? requested : bound;
}

}  // namespace

std::size_t HonestProcess::outgoing_wire_bytes(std::size_t /*round*/) const {
  return kDenseWire;
}

EventNetwork::EventNetwork(std::vector<HonestProcess*> processes,
                           Adversary& adversary, EventNetworkConfig config)
    : processes_(std::move(processes)),
      adversary_(adversary),
      config_(config),
      shards_(processes_.size()),
      nodes_(processes_.size()) {
  heads_.init(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const bool byz = adversary_.is_byzantine(i);
    if (byz && processes_[i] != nullptr) {
      throw std::invalid_argument(
          "EventNetwork: Byzantine id must not own an honest process");
    }
    if (!byz && processes_[i] == nullptr) {
      throw std::invalid_argument("EventNetwork: honest id requires a process");
    }
    if (byz) {
      ++byzantine_count_;
    } else {
      ++honest_count_;
      honest_ids_.push_back(i);
    }
  }
}

std::size_t EventNetwork::plan_round(std::size_t round) const {
  return config_.fault_membership_frozen
             ? config_.fault_round_offset
             : config_.fault_round_offset + round;
}

bool EventNetwork::is_down(std::size_t node, std::size_t round) const {
  return config_.faults != nullptr &&
         !config_.faults->alive(node, plan_round(round));
}

std::size_t EventNetwork::effective_quorum(std::size_t round) const {
  if (config_.quorum == kNoQuorum || config_.faults == nullptr) {
    return config_.quorum;
  }
  return std::min(config_.quorum,
                  config_.faults->live_count(plan_round(round)));
}

EventNetwork::RoundBook& EventNetwork::book_for(std::size_t round) {
  auto [it, inserted] = rounds_.try_emplace(round);
  RoundBook& book = it->second;
  if (inserted) {
    const std::size_t n = processes_.size();
    book.values.resize(n);
    book.present.assign(n, 0);
    book.wire.assign(n, 0);
    if (byzantine_count_ > 0) book.adversary_view.resize(n);
    if (!arena_pool_.empty()) {
      book.arena = std::move(arena_pool_.back());
      arena_pool_.pop_back();
    }
  }
  return book;
}

const EventNetwork::ShardEvent& EventNetwork::Shard::front() const {
  const Run* best = &runs[0];
  for (std::size_t k = 1; k < runs.size(); ++k) {
    if (ShardEventEarlier{}(runs[k].head(), best->head())) best = &runs[k];
  }
  return best->head();
}

EventNetwork::ShardEvent EventNetwork::Shard::pop() {
  std::size_t best = 0;
  for (std::size_t k = 1; k < runs.size(); ++k) {
    if (ShardEventEarlier{}(runs[k].head(), runs[best].head())) best = k;
  }
  const ShardEvent event = runs[best].head();
  if (++runs[best].at == runs[best].events.size()) {
    runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return event;
}

void EventNetwork::Shard::seal_wave() {
  if (wave.empty()) return;
  std::sort(wave.begin(), wave.end(), ShardEventEarlier{});
  Run run;
  run.events = std::move(wave);
  wave = {};
  runs.push_back(std::move(run));
  // Keep run sizes geometric (each at least twice its successor) so the
  // run count — and with it the per-pop head scan — stays logarithmic in
  // the queue size, at amortized O(log) merge work per event.
  while (runs.size() > 1 &&
         2 * runs.back().left() >= runs[runs.size() - 2].left()) {
    Run& a = runs[runs.size() - 2];
    Run& b = runs.back();
    Run merged;
    merged.events.reserve(a.left() + b.left());
    std::merge(a.events.begin() + static_cast<std::ptrdiff_t>(a.at),
               a.events.end(),
               b.events.begin() + static_cast<std::ptrdiff_t>(b.at),
               b.events.end(), std::back_inserter(merged.events),
               ShardEventEarlier{});
    runs.pop_back();
    runs.pop_back();
    runs.push_back(std::move(merged));
  }
}

// Appends to the shard's unsealed wave; the scheduling phases call
// seal_wave() once per receiver afterwards.  (time, seq) is a total
// order, so how the queue is organized internally cannot change the pop
// sequence — hence the simulation.
void EventNetwork::append_event(Shard& shard, double time, EventKind kind,
                                std::size_t sender, std::size_t round) {
  shard.wave.push_back(ShardEvent{time, shard.next_seq++,
                                  static_cast<std::uint32_t>(sender),
                                  static_cast<std::uint32_t>(round), kind});
}

void EventNetwork::enter_rounds(std::vector<Entering>& entering) {
  if (entering.empty()) return;
  BCL_TRACE_SPAN_FINE("net.schedule");
  obs::Histogram* delay_hist =
      config_.metrics != nullptr
          ? &config_.metrics->histogram("net.message_delay")
          : nullptr;

  // A node down for the round it enters broadcasts nothing and collects
  // nothing: it skips production, commits no value, and gets a single
  // self wake event so it flows through the normal ready/seal machinery
  // (a round of all-down nodes still seals — the no-hang guarantee).
  for (Entering& e : entering) e.down = is_down(e.node, e.round);

  // Phase 1 (parallel over entering nodes): produce each broadcast.  Each
  // task touches only its own process and Entering slot.
  auto produce = [&](std::size_t k) {
    Entering& e = entering[k];
    if (e.down) return;
    e.value = processes_[e.node]->outgoing(e.round);
    e.wire = processes_[e.node]->outgoing_wire_bytes(e.round);
    if (e.wire == HonestProcess::kDenseWire) {
      e.wire = e.value.size() * sizeof(double);
    }
  };
  if (config_.pool != nullptr && entering.size() > 1) {
    config_.pool->parallel_for(0, entering.size(), produce);
  } else {
    for (std::size_t k = 0; k < entering.size(); ++k) produce(k);
  }

  // Phase 2 (serial): per-node round state, value commit into the round
  // arena, adversary view, delay-model warm-up.  Arena allocation and the
  // rounds_ map only ever mutate here (and in fix_byzantine_values), on
  // the driving thread — the parallel phases read them.
  for (Entering& e : entering) {
    NodeState& st = nodes_[e.node];
    e.entry = st.completed;  // a round starts when the last ended
    st.round = e.round;
    st.entered = e.entry;
    st.done = false;
    st.timed_out = false;
    st.inbox.clear();
    const auto buffered = st.future.find(e.round);
    if (buffered != st.future.end()) {
      if (e.down) {
        // A down node's buffered arrivals are lost, like any delivery to
        // a down endpoint; they already hit the wire, so count them late.
        shards_[e.node].delta.late += buffered->second.size();
      } else {
        st.inbox = std::move(buffered->second);
      }
      st.future.erase(buffered);
    }

    if (e.down) {
      RoundBook& down_book = book_for(e.round);
      st.book = &down_book;
      ++down_book.honest_entered;  // the adversary view keeps nullopt here
      down_book.max_entry = std::max(down_book.max_entry, e.entry);
      ++stats_.broadcasts_skipped;
      continue;
    }

    RoundBook& book = book_for(e.round);
    double* stored = book.arena.allocate(e.value.size());
    if (!e.value.empty()) {
      std::memcpy(stored, e.value.data(), e.value.size() * sizeof(double));
    }
    book.values[e.node] = PayloadView(stored, e.value.size());
    book.present[e.node] = 1;
    book.wire[e.node] = e.wire;
    st.book = &book;
    if (byzantine_count_ > 0) {
      book.adversary_view[e.node] = std::move(e.value);
    }
    ++book.honest_entered;
    book.max_entry = std::max(book.max_entry, e.entry);
    e.transmission = config_.bandwidth > 0.0
                         ? static_cast<double>(e.wire) / config_.bandwidth
                         : 0.0;
    if (config_.delay != nullptr) config_.delay->prepare(e.node, e.round);
  }

  // Phase 3 (parallel over receiver shards): schedule the deliveries.
  // Every receiver walks the entering list in order and pushes into its
  // own shard only; drop and latency draws come from the pure per-message
  // streams, so the draw a message gets is independent of which thread
  // (or how many) computed it.  Self-delivery is a local loopback —
  // instant, lossless and byte-free — so the delay model, the drop draw,
  // the bandwidth term and the adversary's scheduling power only apply to
  // real links.
  const bool adversarial_scheduling = config_.adversary_delay_bound > 0.0;
  auto schedule_for = [&](std::size_t k) {
    const std::size_t receiver = honest_ids_[k];
    Shard& shard = shards_[receiver];
    for (const Entering& e : entering) {
      if (e.node == receiver) {
        if (e.down) {
          // Sole wake event of a down node's round: ready via timed_out,
          // empty inbox, sealed with everyone else.
          append_event(shard, e.entry, EventKind::Timeout, e.node, e.round);
          continue;
        }
        append_event(shard, e.entry, EventKind::Delivery, e.node, e.round);
        if (config_.timeout >= 0.0) {
          append_event(shard, e.entry + config_.timeout, EventKind::Timeout,
                       e.node, e.round);
        }
        continue;
      }
      // Links with a down endpoint carry nothing: a down sender committed
      // no value, and a down receiver's inbox does not exist this round.
      if (e.down || is_down(receiver, e.round)) continue;
      shard.delta.bytes_sent += e.wire;
      Rng rng = message_stream(config_.seed, e.node, receiver, e.round);
      if (config_.drop_probability > 0.0 &&
          rng.uniform() < config_.drop_probability) {
        ++shard.delta.dropped;
        continue;
      }
      double latency = config_.delay != nullptr
                           ? config_.delay->sample(e.node, receiver, e.round,
                                                   rng)
                           : 0.0;
      if (latency < 0.0) {  // the model itself ate the message
        ++shard.delta.dropped;
        continue;
      }
      latency += e.transmission;
      if (config_.faults != nullptr) {
        // Stragglers push their whole link term (propagation + wire time)
        // out by the configured factor; the adversary's extra delay stays
        // separately clamped to the partial-synchrony bound.
        latency *= config_.faults->slowdown(e.node);
      }
      if (adversarial_scheduling) {
        latency += clamp_extra_delay(
            adversary_.scheduling_delay(e.node, receiver, e.round),
            config_.adversary_delay_bound);
      }
      if (delay_hist != nullptr) delay_hist->record(latency);
      append_event(shard, e.entry + latency, EventKind::Delivery, e.node,
                   e.round);
    }
    shard.seal_wave();
  };
  if (config_.pool != nullptr && honest_ids_.size() > 1) {
    config_.pool->parallel_for(0, honest_ids_.size(), schedule_for);
  } else {
    for (std::size_t k = 0; k < honest_ids_.size(); ++k) schedule_for(k);
  }
  reduce_shard_deltas(honest_ids_);
  refresh_heads(honest_ids_);

  // Any round whose last honest node just entered: the rushing adversary
  // fixes its values now (ascending round order; the relative order of
  // different rounds' pushes is unobservable).
  std::vector<std::size_t> filled;
  for (const Entering& e : entering) {
    if (rounds_.at(e.round).honest_entered == honest_count_) {
      filled.push_back(e.round);
    }
  }
  std::sort(filled.begin(), filled.end());
  filled.erase(std::unique(filled.begin(), filled.end()), filled.end());
  for (const std::size_t round : filled) fix_byzantine_values(round);
}

void EventNetwork::fix_byzantine_values(std::size_t round) {
  RoundBook& book = rounds_.at(round);
  // The rushing adversary fixes its round values only now, after every
  // honest node committed its broadcast; the view still holds nullopt at
  // Byzantine slots during the calls, matching the omniscient-adversary
  // convention of the synchronous engine.  Strictly serial: value fixing
  // is the one adversary hook allowed to mutate adversary state.
  const double fix_time = book.max_entry;
  struct Fixed {
    std::size_t sender = 0;
    std::size_t wire = 0;
    double transmission = 0.0;
  };
  std::vector<Fixed> fixed;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] != nullptr) continue;
    if (is_down(i, round)) {  // the fault plan crashes Byzantine ids too
      ++stats_.broadcasts_skipped;
      continue;
    }
    auto value = adversary_.byzantine_value(i, round, book.adversary_view);
    if (!value) {
      ++stats_.broadcasts_skipped;
      continue;
    }
    // The adversary speaks the protocol's wire format: with a codec
    // configured its value is serialized through it (lossy decode on the
    // payload, encoded size on the wire) — a dense oversized message would
    // be rejected at the receiver's boundary.  Without one it is priced
    // dense.
    std::size_t wire = value->size() * sizeof(double);
    if (config_.codec != nullptr) {
      const CompressedGradient encoded = config_.codec->encode(
          value->data(), value->size(), config_.codec_seed, i, round);
      wire = encoded.wire_bytes();
      *value = encoded.decode();
    }
    double* stored = book.arena.allocate(value->size());
    if (!value->empty()) {
      std::memcpy(stored, value->data(), value->size() * sizeof(double));
    }
    book.values[i] = PayloadView(stored, value->size());
    book.present[i] = 1;
    book.wire[i] = wire;
    fixed.push_back(Fixed{
        i, wire,
        config_.bandwidth > 0.0
            ? static_cast<double>(wire) / config_.bandwidth
            : 0.0});
  }
  if (fixed.empty()) return;

  // Fan the fixed values out, parallel per receiver shard like the honest
  // phase.  Rushing by default: a Byzantine message leaves the instant the
  // value is fixed; targeted extra delay stays inside the
  // partial-synchrony bound.  delivers()/scheduling_delay() are consulted
  // concurrently — pure decision hooks per the Adversary contract.
  const bool adversarial_scheduling = config_.adversary_delay_bound > 0.0;
  auto schedule_for = [&](std::size_t k) {
    const std::size_t receiver = honest_ids_[k];
    if (is_down(receiver, round)) return;  // no inbox to poison this round
    Shard& shard = shards_[receiver];
    for (const Fixed& f : fixed) {
      if (!adversary_.delivers(f.sender, receiver, round)) {
        ++shard.delta.omitted;
        continue;
      }
      shard.delta.bytes_sent += f.wire;
      double latency = f.transmission;
      if (adversarial_scheduling) {
        latency += clamp_extra_delay(
            adversary_.scheduling_delay(f.sender, receiver, round),
            config_.adversary_delay_bound);
      }
      append_event(shard, fix_time + latency, EventKind::Delivery, f.sender,
                   round);
    }
    shard.seal_wave();
  };
  if (config_.pool != nullptr && honest_ids_.size() > 1) {
    config_.pool->parallel_for(0, honest_ids_.size(), schedule_for);
  } else {
    for (std::size_t k = 0; k < honest_ids_.size(); ++k) schedule_for(k);
  }
  reduce_shard_deltas(honest_ids_);
  refresh_heads(honest_ids_);
}

void EventNetwork::process_event(std::size_t receiver,
                                 const ShardEvent& event, Shard& shard) {
  NodeState& st = nodes_[receiver];
  if (event.kind == EventKind::Timeout) {
    if (!st.done && st.round == event.round) st.timed_out = true;
    return;
  }
  // A round sealed by every honest node has had its book GC'd already;
  // any event still arriving for it is late by definition (and the late
  // check fires before any book access, so the view is never touched).
  const bool past = st.done ? event.round <= st.round : event.round < st.round;
  if (past) {
    ++shard.delta.late;
    if (config_.staleness_bound > 0) {
      // Bounded-staleness bookkeeping: would this arrival still have been
      // usable under a tau-version acceptance window?
      if (event.round + config_.staleness_bound >= st.round) {
        ++shard.delta.stale_ok;
      } else {
        ++shard.delta.stale_old;
      }
    }
    return;
  }
  // Not past => this receiver has not completed `event.round`, so the
  // round is unsealed and its book is alive; concurrent shard tasks only
  // read it.
  if (!st.done && event.round == st.round) {
    const RoundBook& book = *st.book;
    st.inbox.push_back(Message{event.sender, book.values[event.sender],
                               book.wire[event.sender]});
  } else {
    // The sender ran ahead of this receiver inside a multi-round window.
    const RoundBook& book = rounds_.find(event.round)->second;
    st.future[event.round].push_back(Message{
        event.sender, book.values[event.sender], book.wire[event.sender]});
  }
}

bool EventNetwork::node_ready(const NodeState& node) const {
  if (node.done) return false;
  if (node.timed_out) return true;
  const std::size_t quorum = effective_quorum(node.round);
  return quorum != kNoQuorum && node.inbox.size() >= quorum;
}

void EventNetwork::HeadIndex::init(std::size_t n) {
  heap.clear();
  key.assign(n, 0.0);
  pos.assign(n, -1);
}

void EventNetwork::HeadIndex::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (key[heap[parent]] <= key[heap[i]]) break;
    std::swap(heap[parent], heap[i]);
    pos[heap[i]] = static_cast<std::int32_t>(i);
    pos[heap[parent]] = static_cast<std::int32_t>(parent);
    i = parent;
  }
}

void EventNetwork::HeadIndex::sift_down(std::size_t i) {
  const std::size_t size = heap.size();
  while (true) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < size && key[heap[left]] < key[heap[best]]) best = left;
    if (right < size && key[heap[right]] < key[heap[best]]) best = right;
    if (best == i) break;
    std::swap(heap[i], heap[best]);
    pos[heap[i]] = static_cast<std::int32_t>(i);
    pos[heap[best]] = static_cast<std::int32_t>(best);
    i = best;
  }
}

void EventNetwork::HeadIndex::update(std::uint32_t id, double t) {
  if (pos[id] < 0) {
    key[id] = t;
    pos[id] = static_cast<std::int32_t>(heap.size());
    heap.push_back(id);
    sift_up(static_cast<std::size_t>(pos[id]));
    return;
  }
  if (key[id] == t) return;  // head unchanged — the common refresh case
  const bool towards_root = t < key[id];
  key[id] = t;
  if (towards_root) {
    sift_up(static_cast<std::size_t>(pos[id]));
  } else {
    sift_down(static_cast<std::size_t>(pos[id]));
  }
}

void EventNetwork::HeadIndex::remove(std::uint32_t id) {
  const std::int32_t at = pos[id];
  if (at < 0) return;
  const std::uint32_t last = heap.back();
  heap.pop_back();
  pos[id] = -1;
  if (static_cast<std::size_t>(at) == heap.size()) return;
  heap[at] = last;
  pos[last] = at;
  sift_up(static_cast<std::size_t>(at));
  sift_down(static_cast<std::size_t>(pos[last]));
}

void EventNetwork::refresh_heads(const std::vector<std::size_t>& ids) {
  for (const std::size_t i : ids) {
    const Shard& shard = shards_[i];
    const auto id = static_cast<std::uint32_t>(i);
    if (shard.empty()) {
      heads_.remove(id);
    } else {
      heads_.update(id, shard.front().time);
    }
  }
}

void EventNetwork::drain_next_batch() {
  BCL_TRACE_SPAN_FINE("net.drain");
  touched_.clear();
  if (heads_.empty()) {
    // Every shard is empty: stalled below quorum with no timeout
    // configured (loss without partial synchrony).  Force the stuck
    // rounds open so the run always terminates, accounted as timeouts.
    batch_time_ = now_;
    for (const std::size_t i : honest_ids_) {
      if (!nodes_[i].done) nodes_[i].timed_out = true;
    }
    touched_ = honest_ids_;
    return;
  }
  batch_time_ = heads_.top_key();
  now_ = std::max(now_, batch_time_);
  // Under a continuous delay distribution almost every batch is a single
  // event on a single shard.  The heap property bounds equal keys: if
  // neither child of the root matches the batch instant, no deeper entry
  // can, so the root shard alone is due — drain it in place with one
  // in-place key update instead of the remove / re-insert round trip.
  const bool solo =
      (heads_.heap.size() < 2 ||
       heads_.key[heads_.heap[1]] != batch_time_) &&
      (heads_.heap.size() < 3 || heads_.key[heads_.heap[2]] != batch_time_);
  if (solo) {
    const std::uint32_t id = heads_.top();
    touched_.push_back(id);
    Shard& shard = shards_[id];
    while (!shard.empty() && shard.front().time == batch_time_) {
      const ShardEvent event = shard.pop();
      process_event(id, event, shard);
    }
    reduce_shard_deltas(touched_);
    if (shard.empty()) {
      heads_.remove(id);
    } else {
      heads_.update(id, shard.front().time);
    }
    return;
  }
  // Pop every shard due at the batch instant (the freshness invariant —
  // refresh_heads after every heap-mutating phase — makes heads_ exact);
  // refresh_heads(touched_) below re-inserts whatever they have left.
  // Sorting restores id order so the downstream ready/entering walks
  // stay deterministic.
  while (!heads_.empty() && heads_.top_key() == batch_time_) {
    const std::uint32_t shard = heads_.top();
    heads_.remove(shard);
    touched_.push_back(shard);
  }
  std::sort(touched_.begin(), touched_.end());
  // The conservative safe window: every event at the minimum head
  // timestamp, across shards.  Within the window all effects are
  // per-receiver, so touched shards drain concurrently; per-shard pops
  // stay in (time, seq) order, reproducing the old global queue's
  // per-receiver FIFO exactly.
  auto drain_shard = [&](std::size_t k) {
    BCL_TRACE_SPAN_FINE("net.drain_shard");
    const std::size_t i = touched_[k];
    Shard& shard = shards_[i];
    while (!shard.empty() && shard.front().time == batch_time_) {
      const ShardEvent event = shard.pop();
      process_event(i, event, shard);
    }
  };
  if (config_.pool != nullptr && touched_.size() > 1) {
    config_.pool->parallel_for(0, touched_.size(), drain_shard);
  } else {
    for (std::size_t k = 0; k < touched_.size(); ++k) drain_shard(k);
  }
  reduce_shard_deltas(touched_);
  refresh_heads(touched_);
}

void EventNetwork::advance_ready_nodes() {
  BCL_TRACE_SPAN_FINE("net.deliver");
  // Readiness can only have changed for nodes whose shard the batch
  // touched (delivery grew the inbox or a timeout fired) — the stall path
  // marks every shard touched.
  std::vector<std::size_t> ready;
  for (const std::size_t i : touched_) {
    if (node_ready(nodes_[i])) ready.push_back(i);
  }
  if (ready.empty()) return;

  // Finalize + deliver, parallel per ready node: sender order, then the
  // honored-delay floor ("receive up to n messages": adversarial requests
  // to withhold honest messages are honored only while the inbox stays at
  // or above the quorum), byte accounting into the shard delta, and the
  // receive() hand-off.  Each task mutates only its own node, shard and
  // process.
  auto finalize = [&](std::size_t k) {
    const std::size_t i = ready[k];
    NodeState& st = nodes_[i];
    if (is_down(i, st.round)) {
      // A down node makes no progress this round: nothing arrived, nothing
      // is delivered, and its process is not called.
      st.inbox.clear();
      return;
    }
    Shard& shard = shards_[i];
    const std::size_t quorum = effective_quorum(st.round);
    std::sort(st.inbox.begin(), st.inbox.end(),
              [](const Message& a, const Message& b) {
                return a.sender < b.sender;
              });
    if (quorum != kNoQuorum && st.inbox.size() > quorum) {
      std::size_t droppable = st.inbox.size() - quorum;
      std::vector<Message> kept;
      kept.reserve(st.inbox.size());
      for (const Message& message : st.inbox) {
        if (droppable > 0 && processes_[message.sender] != nullptr &&
            adversary_.delays_honest(message.sender, i, st.round)) {
          --droppable;
          ++shard.delta.delayed;
          continue;
        }
        kept.push_back(message);
      }
      st.inbox = std::move(kept);
    }
    shard.delta.delivered += st.inbox.size();
    for (const Message& message : st.inbox) {
      if (message.sender == i) continue;  // loopback carries no bytes
      shard.delta.bytes_delivered += message.wire_bytes;
      shard.delta.bytes_dense += message.payload.size() * sizeof(double);
    }
    if (st.timed_out && config_.timeout != 0.0 &&
        (quorum == kNoQuorum || st.inbox.size() < quorum)) {
      ++shard.delta.timeouts;
    }
    processes_[i]->receive(st.round, std::move(st.inbox));
  };
  if (config_.pool != nullptr && ready.size() > 1) {
    config_.pool->parallel_for(0, ready.size(), finalize);
  } else {
    for (std::size_t k = 0; k < ready.size(); ++k) finalize(k);
  }
  reduce_shard_deltas(ready);

  // Complete the rounds, seal any round now finished by all honest nodes
  // (in order — a node finishes r before r+1, so the frontier walks
  // forward) and recycle its arena, then enter next rounds in id order so
  // every round-(r+1) broadcast precedes the adversary's round-(r+1)
  // value fixing, exactly as in the synchronous engine.
  for (const std::size_t i : ready) {
    NodeState& st = nodes_[i];
    st.done = true;
    st.inbox.clear();
    st.completed = std::max(st.entered, batch_time_);
    RoundBook& book = rounds_.at(st.round);
    book.max_end = std::max(book.max_end, st.completed);
    ++book.done_count;
  }
  while (true) {
    const auto done = rounds_.find(completed_rounds_);
    if (done == rounds_.end() || done->second.done_count != honest_count_) {
      break;
    }
    const double prev_end =
        round_end_times_.empty() ? 0.0 : round_end_times_.back();
    round_end_times_.push_back(
        std::max(prev_end, done->second.max_end));
    now_ = std::max(now_, round_end_times_.back());
    done->second.arena.reset();
    arena_pool_.push_back(std::move(done->second.arena));
    rounds_.erase(done);
    if (config_.faults != nullptr && config_.faults->any()) {
      if (!config_.fault_membership_frozen) {
        // Frozen membership = the caller drives the plan round by round
        // and accounts transitions itself (the decentralized trainer).
        const FaultPlan::RoundTransitions& moved =
            config_.faults->transitions(plan_round(completed_rounds_));
        stats_.crashes += moved.crashes;
        stats_.recoveries += moved.recoveries;
        stats_.joins += moved.joins;
      }
      const std::size_t quorum = effective_quorum(completed_rounds_);
      if (config_.quorum != kNoQuorum && quorum < config_.quorum) {
        ++stats_.rounds_degraded;
      }
    }
    ++completed_rounds_;
    stats_.rounds = completed_rounds_;
  }
  std::vector<Entering> entering;
  for (const std::size_t i : ready) {
    const std::size_t next = nodes_[i].round + 1;
    if (next < target_rounds_) {
      Entering e;
      e.node = i;
      e.round = next;
      entering.push_back(std::move(e));
    }
  }
  enter_rounds(entering);
}

void EventNetwork::reduce_shard_deltas(const std::vector<std::size_t>& ids) {
  for (const std::size_t i : ids) {
    ShardStats& d = shards_[i].delta;
    stats_.messages_dropped += d.dropped;
    stats_.messages_omitted += d.omitted;
    stats_.messages_late += d.late;
    stats_.messages_delivered += d.delivered;
    stats_.messages_delayed += d.delayed;
    stats_.timeouts_fired += d.timeouts;
    stats_.bytes_sent += d.bytes_sent;
    stats_.bytes_delivered += d.bytes_delivered;
    stats_.bytes_dense_delivered += d.bytes_dense;
    stats_.stale_accepted += d.stale_ok;
    stats_.stale_rejected += d.stale_old;
    d = ShardStats{};
  }
}

void EventNetwork::run_round() { run(1); }

void EventNetwork::run(std::size_t rounds) {
  if (rounds == 0) return;
  target_rounds_ = completed_rounds_ + rounds;
  std::vector<Entering> entering;
  if (!started_) {
    started_ = true;
    for (const std::size_t i : honest_ids_) {
      Entering e;
      e.node = i;
      e.round = 0;
      entering.push_back(std::move(e));
    }
  } else {
    // Release nodes holding at the barrier of the previous run() call.
    for (const std::size_t i : honest_ids_) {
      if (nodes_[i].done && nodes_[i].round + 1 < target_rounds_) {
        Entering e;
        e.node = i;
        e.round = nodes_[i].round + 1;
        entering.push_back(std::move(e));
      }
    }
  }
  enter_rounds(entering);
  while (completed_rounds_ < target_rounds_) {
    drain_next_batch();
    advance_ready_nodes();
  }
}

double EventNetwork::last_round_latency() const {
  if (round_end_times_.empty()) return 0.0;
  if (round_end_times_.size() == 1) return round_end_times_.front();
  return round_end_times_.back() -
         round_end_times_[round_end_times_.size() - 2];
}

void publish_network_stats(const NetworkStats& stats,
                           obs::MetricsRegistry& registry) {
  registry.counter("net.rounds").add(stats.rounds);
  registry.counter("net.messages_delivered").add(stats.messages_delivered);
  registry.counter("net.messages_omitted").add(stats.messages_omitted);
  registry.counter("net.broadcasts_skipped").add(stats.broadcasts_skipped);
  registry.counter("net.messages_delayed").add(stats.messages_delayed);
  registry.counter("net.messages_dropped").add(stats.messages_dropped);
  registry.counter("net.messages_late").add(stats.messages_late);
  registry.counter("net.timeouts_fired").add(stats.timeouts_fired);
  registry.counter("net.bytes_sent").add(stats.bytes_sent);
  registry.counter("net.bytes_delivered").add(stats.bytes_delivered);
  registry.counter("net.bytes_dense_delivered")
      .add(stats.bytes_dense_delivered);
  registry.counter("net.crashes").add(stats.crashes);
  registry.counter("net.recoveries").add(stats.recoveries);
  registry.counter("net.joins").add(stats.joins);
  registry.counter("net.rounds_degraded").add(stats.rounds_degraded);
  registry.counter("net.stale_accepted").add(stats.stale_accepted);
  registry.counter("net.stale_rejected").add(stats.stale_rejected);
}

}  // namespace bcl
