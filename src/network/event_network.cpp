#include "network/event_network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace bcl {

namespace {

constexpr std::size_t kNoQuorum = static_cast<std::size_t>(-1);

double clamp_extra_delay(double requested, double bound) {
  if (requested <= 0.0) return 0.0;
  return requested < bound ? requested : bound;
}

}  // namespace

std::size_t HonestProcess::outgoing_wire_bytes(std::size_t /*round*/) const {
  return kDenseWire;
}

EventNetwork::EventNetwork(std::vector<HonestProcess*> processes,
                           Adversary& adversary, EventNetworkConfig config)
    : processes_(std::move(processes)),
      adversary_(adversary),
      config_(config),
      nodes_(processes_.size()) {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const bool byz = adversary_.is_byzantine(i);
    if (byz && processes_[i] != nullptr) {
      throw std::invalid_argument(
          "EventNetwork: Byzantine id must not own an honest process");
    }
    if (!byz && processes_[i] == nullptr) {
      throw std::invalid_argument("EventNetwork: honest id requires a process");
    }
    if (!byz) ++honest_count_;
  }
}

void EventNetwork::schedule(Event event) {
  event.seq = next_seq_++;
  queue_.push(event);
}

void EventNetwork::enter_round(std::size_t node, std::size_t round) {
  NodeState& st = nodes_[node];
  const double entry = st.completed;  // a round starts when the last ended
  st.round = round;
  st.entered = entry;
  st.done = false;
  st.timed_out = false;
  st.inbox.clear();
  const auto buffered = st.future.find(round);
  if (buffered != st.future.end()) {
    st.inbox = std::move(buffered->second);
    st.future.erase(buffered);
  }

  auto& values = values_by_round_[round];
  if (values.empty()) values.resize(processes_.size());
  values[node] = processes_[node]->outgoing(round);
  auto& wires = wire_by_round_[round];
  if (wires.empty()) wires.resize(processes_.size(), 0);
  std::size_t wire = processes_[node]->outgoing_wire_bytes(round);
  if (wire == HonestProcess::kDenseWire) {
    wire = values[node]->size() * sizeof(double);
  }
  wires[node] = wire;
  auto& pending = pending_by_round_[round];
  if (pending.empty()) pending.resize(processes_.size(), 0);
  auto& max_entry = round_max_entry_[round];
  max_entry = std::max(max_entry, entry);

  // Broadcast: one message per honest receiver.  Self-delivery is a local
  // loopback — instant, lossless and byte-free — so the delay model, the
  // drop draw, the bandwidth term and the adversary's scheduling power
  // only apply to real links.
  const bool adversarial_scheduling = config_.adversary_delay_bound > 0.0;
  const double transmission =
      config_.bandwidth > 0.0 ? static_cast<double>(wire) / config_.bandwidth
                              : 0.0;
  for (std::size_t receiver = 0; receiver < processes_.size(); ++receiver) {
    if (processes_[receiver] == nullptr) continue;
    double latency = 0.0;
    if (receiver != node) {
      stats_.bytes_sent += wire;
      Rng rng = message_stream(config_.seed, node, receiver, round);
      if (config_.drop_probability > 0.0 &&
          rng.uniform() < config_.drop_probability) {
        ++stats_.messages_dropped;
        continue;
      }
      latency = config_.delay != nullptr
                    ? config_.delay->sample(node, receiver, round, rng)
                    : 0.0;
      if (latency < 0.0) {  // the model itself ate the message
        ++stats_.messages_dropped;
        continue;
      }
      latency += transmission;
      if (adversarial_scheduling) {
        latency += clamp_extra_delay(
            adversary_.scheduling_delay(node, receiver, round),
            config_.adversary_delay_bound);
      }
    }
    ++pending[node];
    schedule(Event{entry + latency, 0, EventKind::Delivery, receiver, round,
                   node});
  }
  if (config_.timeout >= 0.0) {
    schedule(Event{entry + config_.timeout, 0, EventKind::Timeout, node,
                   round, node});
  }

  const std::size_t entered = ++honest_entered_[round];
  if (entered == honest_count_) fix_byzantine_values(round);
}

void EventNetwork::fix_byzantine_values(std::size_t round) {
  auto& values = values_by_round_[round];
  if (values.empty()) values.resize(processes_.size());
  // The rushing adversary fixes its round values only now, after every
  // honest node committed its broadcast; `values` still holds nullopt at
  // Byzantine slots during the calls, matching the omniscient-adversary
  // convention of the synchronous engine.
  const double fix_time = round_max_entry_[round];
  std::vector<std::pair<std::size_t, Vector>> fixed;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] != nullptr) continue;
    auto value = adversary_.byzantine_value(i, round, values);
    if (!value) {
      ++stats_.broadcasts_skipped;
      continue;
    }
    fixed.emplace_back(i, std::move(*value));
  }
  const bool adversarial_scheduling = config_.adversary_delay_bound > 0.0;
  auto& wires = wire_by_round_[round];
  if (wires.empty()) wires.resize(processes_.size(), 0);
  auto& pending = pending_by_round_[round];
  if (pending.empty()) pending.resize(processes_.size(), 0);
  for (auto& [sender, value] : fixed) {
    // The adversary speaks the protocol's wire format: with a codec
    // configured its value is serialized through it (lossy decode on the
    // payload, encoded size on the wire) — a dense oversized message would
    // be rejected at the receiver's boundary.  Without one it is priced
    // dense.
    std::size_t wire = value.size() * sizeof(double);
    if (config_.codec != nullptr) {
      const CompressedGradient encoded = config_.codec->encode(
          value.data(), value.size(), config_.codec_seed, sender, round);
      wire = encoded.wire_bytes();
      value = encoded.decode();
    }
    wires[sender] = wire;
    const double transmission = config_.bandwidth > 0.0
                                    ? static_cast<double>(wire) /
                                          config_.bandwidth
                                    : 0.0;
    values[sender] = std::move(value);
    for (std::size_t receiver = 0; receiver < processes_.size(); ++receiver) {
      if (processes_[receiver] == nullptr) continue;
      if (!adversary_.delivers(sender, receiver, round)) {
        ++stats_.messages_omitted;
        continue;
      }
      stats_.bytes_sent += wire;
      // Rushing by default: the Byzantine message leaves the instant the
      // value is fixed; targeted extra delay stays inside the
      // partial-synchrony bound.
      double latency = transmission;
      if (adversarial_scheduling) {
        latency += clamp_extra_delay(
            adversary_.scheduling_delay(sender, receiver, round),
            config_.adversary_delay_bound);
      }
      ++pending[sender];
      schedule(Event{fix_time + latency, 0, EventKind::Delivery, receiver,
                     round, sender});
    }
  }
}

void EventNetwork::process_event(const Event& event) {
  NodeState& st = nodes_[event.receiver];
  if (event.kind == EventKind::Timeout) {
    if (!st.done && st.round == event.round) st.timed_out = true;
    return;
  }
  // Every scheduled delivery of this (round, sender) value passes through
  // here exactly once, late or not, so the pending count reaching zero
  // means no future event will read the value again.  A round sealed by
  // every honest node has had its book-keeping GC'd already; any event
  // still arriving for it is late by definition.
  std::size_t remaining = static_cast<std::size_t>(-1);
  const auto pend = pending_by_round_.find(event.round);
  if (pend != pending_by_round_.end()) {
    remaining = --pend->second[event.sender];
  }
  const bool past = st.done ? event.round <= st.round : event.round < st.round;
  if (past) {
    ++stats_.messages_late;
    return;
  }
  auto& values = values_by_round_[event.round];
  // Hand off ownership on the last delivery: once the rushing adversary
  // has fixed its values for the round (it inspects the honest entries
  // until then) and no other delivery is pending, the stored vector's only
  // remaining reader is this message — move it instead of copying.
  const auto fixed = honest_entered_.find(event.round);
  const bool movable = remaining == 0 && fixed != honest_entered_.end() &&
                       fixed->second == honest_count_;
  Message message{event.sender,
                  movable ? std::move(*values[event.sender])
                          : *values[event.sender],
                  wire_by_round_[event.round][event.sender]};
  if (!st.done && event.round == st.round) {
    st.inbox.push_back(std::move(message));
  } else {
    // The sender ran ahead of this receiver inside a multi-round window.
    st.future[event.round].push_back(std::move(message));
  }
}

bool EventNetwork::node_ready(const NodeState& node) const {
  if (node.done) return false;
  if (node.timed_out) return true;
  return config_.quorum != kNoQuorum && node.inbox.size() >= config_.quorum;
}

void EventNetwork::drain_next_batch() {
  if (queue_.empty()) {
    // Stalled below quorum with no timeout configured (loss without
    // partial synchrony): force the stuck rounds open so the run always
    // terminates, and account them as timeouts.
    batch_time_ = now_;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      if (processes_[i] != nullptr && !nodes_[i].done) {
        nodes_[i].timed_out = true;
      }
    }
    return;
  }
  batch_time_ = queue_.top().time;
  now_ = std::max(now_, batch_time_);
  while (!queue_.empty() && queue_.top().time == batch_time_) {
    const Event event = queue_.top();
    queue_.pop();
    process_event(event);
  }
}

void EventNetwork::advance_ready_nodes() {
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] != nullptr && node_ready(nodes_[i])) ready.push_back(i);
  }
  if (ready.empty()) return;

  // Build the final inboxes on the driving thread: sender order, then the
  // honored-delay floor ("receive up to n messages": adversarial requests
  // to withhold honest messages are honored only while the inbox stays at
  // or above the quorum).
  for (const std::size_t i : ready) {
    NodeState& st = nodes_[i];
    std::sort(st.inbox.begin(), st.inbox.end(),
              [](const Message& a, const Message& b) {
                return a.sender < b.sender;
              });
    if (config_.quorum != kNoQuorum && st.inbox.size() > config_.quorum) {
      std::size_t droppable = st.inbox.size() - config_.quorum;
      std::vector<Message> kept;
      kept.reserve(st.inbox.size());
      for (auto& message : st.inbox) {
        if (droppable > 0 && processes_[message.sender] != nullptr &&
            adversary_.delays_honest(message.sender, i, st.round)) {
          --droppable;
          ++stats_.messages_delayed;
          continue;
        }
        kept.push_back(std::move(message));
      }
      st.inbox = std::move(kept);
    }
    stats_.messages_delivered += st.inbox.size();
    for (const Message& message : st.inbox) {
      if (message.sender == i) continue;  // loopback carries no bytes
      stats_.bytes_delivered += message.wire_bytes;
      stats_.bytes_dense_delivered += message.payload.size() * sizeof(double);
    }
    if (st.timed_out && config_.timeout != 0.0 &&
        (config_.quorum == kNoQuorum || st.inbox.size() < config_.quorum)) {
      ++stats_.timeouts_fired;
    }
  }

  // Deliver in parallel: each process mutates only its own state and owns
  // the inbox it is handed (the engine only clears the husk afterwards).
  auto deliver = [&](std::size_t k) {
    const std::size_t i = ready[k];
    processes_[i]->receive(nodes_[i].round, std::move(nodes_[i].inbox));
  };
  if (config_.pool != nullptr) {
    config_.pool->parallel_for(0, ready.size(), deliver);
  } else {
    for (std::size_t k = 0; k < ready.size(); ++k) deliver(k);
  }

  // Complete the rounds, seal any round now finished by all honest nodes
  // (in order — a node finishes r before r+1, so the frontier walks
  // forward), then enter next rounds in id order so every round-(r+1)
  // broadcast precedes the adversary's round-(r+1) value fixing, exactly
  // as in the synchronous engine.
  for (const std::size_t i : ready) {
    NodeState& st = nodes_[i];
    st.done = true;
    st.inbox.clear();
    st.completed = std::max(st.entered, batch_time_);
    auto& end = round_max_end_[st.round];
    end = std::max(end, st.completed);
    ++round_done_counts_[st.round];
  }
  while (true) {
    const auto done = round_done_counts_.find(completed_rounds_);
    if (done == round_done_counts_.end() || done->second != honest_count_) {
      break;
    }
    const double prev_end =
        round_end_times_.empty() ? 0.0 : round_end_times_.back();
    round_end_times_.push_back(
        std::max(prev_end, round_max_end_[completed_rounds_]));
    now_ = std::max(now_, round_end_times_.back());
    values_by_round_.erase(completed_rounds_);
    wire_by_round_.erase(completed_rounds_);
    pending_by_round_.erase(completed_rounds_);
    honest_entered_.erase(completed_rounds_);
    round_done_counts_.erase(completed_rounds_);
    round_max_end_.erase(completed_rounds_);
    round_max_entry_.erase(completed_rounds_);
    ++completed_rounds_;
    stats_.rounds = completed_rounds_;
  }
  for (const std::size_t i : ready) {
    const std::size_t next = nodes_[i].round + 1;
    if (next < target_rounds_) enter_round(i, next);
  }
}

void EventNetwork::run_round() { run(1); }

void EventNetwork::run(std::size_t rounds) {
  if (rounds == 0) return;
  target_rounds_ = completed_rounds_ + rounds;
  if (!started_) {
    started_ = true;
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      if (processes_[i] != nullptr) enter_round(i, 0);
    }
  } else {
    // Release nodes holding at the barrier of the previous run() call.
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      if (processes_[i] != nullptr && nodes_[i].done &&
          nodes_[i].round + 1 < target_rounds_) {
        enter_round(i, nodes_[i].round + 1);
      }
    }
  }
  while (completed_rounds_ < target_rounds_) {
    drain_next_batch();
    advance_ready_nodes();
  }
}

double EventNetwork::last_round_latency() const {
  if (round_end_times_.empty()) return 0.0;
  if (round_end_times_.size() == 1) return round_end_times_.front();
  return round_end_times_.back() -
         round_end_times_[round_end_times_.size() - 2];
}

}  // namespace bcl
