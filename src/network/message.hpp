#pragma once
// Wire format of the synchronous peer-to-peer simulator: one vector-valued
// message per sender per round.

#include <cstddef>

#include "linalg/gradient_batch.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

/// A delivered message.  Inboxes are sorted by sender id, which makes
/// tie-breaking in the receiving rules deterministic.
struct Message {
  std::size_t sender = 0;
  Vector payload;
};

/// Extracts just the payload vectors of an inbox, preserving order.
inline VectorList payloads(const std::vector<Message>& inbox) {
  VectorList out;
  out.reserve(inbox.size());
  for (const auto& msg : inbox) out.push_back(msg.payload);
  return out;
}

/// Packs an inbox's payloads into one contiguous row-major batch (row i =
/// i-th message, preserving the sender-sorted order).  Throws
/// std::invalid_argument if payload dimensions disagree — a malformed
/// Byzantine payload is rejected at the boundary, as the VectorList path
/// does inside the rules.
inline GradientBatch payload_batch(const std::vector<Message>& inbox) {
  if (inbox.empty()) return GradientBatch();
  GradientBatch batch(inbox.size(), inbox.front().payload.size());
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    batch.set_row(i, inbox[i].payload);
  }
  return batch;
}

}  // namespace bcl
