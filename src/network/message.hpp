#pragma once
// Wire format of the peer-to-peer simulators: one vector-valued message
// per sender per round, tagged with its modeled size on the wire.
//
// Payloads are *views*, not owned buffers.  The event engine stores each
// broadcast value exactly once, in a per-round arena (util/arena.hpp), and
// every delivery of that broadcast carries a PayloadView into the stored
// value — so fanning one round value out to n receivers costs n spans, not
// n heap-allocated vector copies.  The ownership rule that buys this:
//
//   A message's payload is guaranteed valid only for the duration of the
//   receive() call that delivers it.  A process that keeps payload data
//   beyond receive() must copy it (to_vector(), payloads(), or
//   payload_batch() all do); the arena behind the view is recycled once
//   every honest node has sealed the round.
//
// The protocol layer already obeys it: every receiving rule packs its
// inbox into an owned GradientBatch / VectorList before returning.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "linalg/gradient_batch.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

/// Read-only span over a payload's doubles (the engine's arena or any
/// caller-owned buffer).  Comparisons are element-wise, so tests and
/// consumers can compare payloads across engines without caring where the
/// bytes live.
class PayloadView {
 public:
  PayloadView() = default;
  PayloadView(const double* data, std::size_t size)
      : data_(data), size_(size) {}
  /// Views an owned vector (which must outlive the view).
  explicit PayloadView(const Vector& v) : data_(v.data()), size_(v.size()) {}

  const double* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Materializes an owned copy — the escape hatch for any consumer that
  /// keeps payload data beyond the receive() call.
  Vector to_vector() const { return Vector(data_, data_ + size_); }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
};

inline bool operator==(const PayloadView& a, const PayloadView& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}
inline bool operator!=(const PayloadView& a, const PayloadView& b) {
  return !(a == b);
}
inline bool operator==(const PayloadView& a, const Vector& b) {
  return a == PayloadView(b);
}
inline bool operator==(const Vector& a, const PayloadView& b) {
  return PayloadView(a) == b;
}

/// A delivered message.  Inboxes are sorted by sender id, which makes
/// tie-breaking in the receiving rules deterministic.  `wire_bytes` is the
/// modeled transmission size (compressed payloads are smaller than
/// payload.size() * sizeof(double)); the event engine fills it from the
/// sender's codec and prices delivery as propagation + wire_bytes /
/// bandwidth.  `payload` is a view into the engine's round storage — see
/// the ownership rule in the file comment.
struct Message {
  std::size_t sender = 0;
  PayloadView payload;
  std::size_t wire_bytes = 0;
};

/// Extracts the payload vectors of an inbox as owned copies, preserving
/// order.  (With view payloads there is nothing to steal — this *is* the
/// one copy a consumer pays, where the pre-arena engine paid one per
/// delivery plus one here.)
inline VectorList payloads(const std::vector<Message>& inbox) {
  VectorList out;
  out.reserve(inbox.size());
  for (const auto& msg : inbox) out.push_back(msg.payload.to_vector());
  return out;
}

/// Packs an inbox's payloads into one contiguous row-major batch (row i =
/// i-th message, preserving the sender-sorted order).  Throws
/// std::invalid_argument if payload dimensions disagree — a malformed
/// Byzantine payload is rejected at the boundary, as the VectorList path
/// does inside the rules.
inline GradientBatch payload_batch(const std::vector<Message>& inbox) {
  if (inbox.empty()) return GradientBatch();
  const std::size_t dim = inbox.front().payload.size();
  GradientBatch batch(inbox.size(), dim);
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    const PayloadView& p = inbox[i].payload;
    if (p.size() != dim) {
      throw std::invalid_argument(
          "payload_batch: payload dimensions disagree");
    }
    double* row = batch.row(i);
    for (std::size_t k = 0; k < dim; ++k) row[k] = p[k];
  }
  return batch;
}

/// Zero-copy flavour of payload_batch(): the returned batch *borrows* the
/// inbox's payload spans through `table` (filled here, one row pointer per
/// message, reusable across calls) instead of copying n x d doubles.  Same
/// dimension check, same row order.  Lifetime follows the payload ownership
/// rule above: the view batch (and `table`) are valid only while the inbox's
/// payloads are — i.e. for the duration of the receive() call — so a
/// consumer must finish with the batch before returning, exactly as the
/// agreement protocol does.
inline GradientBatch payload_batch_view(const std::vector<Message>& inbox,
                                        std::vector<const double*>& table) {
  table.clear();
  if (inbox.empty()) return GradientBatch();
  const std::size_t dim = inbox.front().payload.size();
  table.reserve(inbox.size());
  for (const Message& msg : inbox) {
    if (msg.payload.size() != dim) {
      throw std::invalid_argument(
          "payload_batch_view: payload dimensions disagree");
    }
    table.push_back(msg.payload.data());
  }
  return GradientBatch::view(table.data(), table.size(), dim);
}

}  // namespace bcl
