#pragma once
// Wire format of the synchronous peer-to-peer simulator: one vector-valued
// message per sender per round.

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// A delivered message.  Inboxes are sorted by sender id, which makes
/// tie-breaking in the receiving rules deterministic.
struct Message {
  std::size_t sender = 0;
  Vector payload;
};

/// Extracts just the payload vectors of an inbox, preserving order.
inline VectorList payloads(const std::vector<Message>& inbox) {
  VectorList out;
  out.reserve(inbox.size());
  for (const auto& msg : inbox) out.push_back(msg.payload);
  return out;
}

}  // namespace bcl
