#pragma once
// Wire format of the peer-to-peer simulators: one vector-valued message
// per sender per round, tagged with its modeled size on the wire.

#include <cstddef>
#include <utility>

#include "linalg/gradient_batch.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

/// A delivered message.  Inboxes are sorted by sender id, which makes
/// tie-breaking in the receiving rules deterministic.  `wire_bytes` is the
/// modeled transmission size (compressed payloads are smaller than
/// payload.size() * sizeof(double)); the event engine fills it from the
/// sender's codec and prices delivery as propagation + wire_bytes /
/// bandwidth.
struct Message {
  std::size_t sender = 0;
  Vector payload;
  std::size_t wire_bytes = 0;
};

/// Extracts just the payload vectors of an inbox, preserving order.
inline VectorList payloads(const std::vector<Message>& inbox) {
  VectorList out;
  out.reserve(inbox.size());
  for (const auto& msg : inbox) out.push_back(msg.payload);
  return out;
}

/// Rvalue overload: steals the payloads instead of copying them — the
/// receive() hand-off owns the inbox, so consumers shouldn't pay a second
/// copy per vector.
inline VectorList payloads(std::vector<Message>&& inbox) {
  VectorList out;
  out.reserve(inbox.size());
  for (auto& msg : inbox) out.push_back(std::move(msg.payload));
  return out;
}

/// Packs an inbox's payloads into one contiguous row-major batch (row i =
/// i-th message, preserving the sender-sorted order).  Throws
/// std::invalid_argument if payload dimensions disagree — a malformed
/// Byzantine payload is rejected at the boundary, as the VectorList path
/// does inside the rules.
inline GradientBatch payload_batch(const std::vector<Message>& inbox) {
  if (inbox.empty()) return GradientBatch();
  GradientBatch batch(inbox.size(), inbox.front().payload.size());
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    batch.set_row(i, inbox[i].payload);
  }
  return batch;
}

/// Rvalue overload: consumes the inbox, releasing each payload's heap
/// block as soon as it has been packed — the gather into contiguous
/// storage is then the only copy a payload pays after the engine moved it
/// into the Message.
inline GradientBatch payload_batch(std::vector<Message>&& inbox) {
  if (inbox.empty()) return GradientBatch();
  GradientBatch batch(inbox.size(), inbox.front().payload.size());
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    batch.set_row(i, inbox[i].payload);
    Vector().swap(inbox[i].payload);
  }
  return batch;
}

}  // namespace bcl
