#pragma once
// Discrete-event network engine with a sharded, parallel event core.
//
// Generalizes the lockstep synchronous round model to partial synchrony: a
// discrete-event simulator in which every broadcast message receives a
// delivery time from a pluggable DelayModel (plus independent loss and a
// bounded adversarial scheduling delay), and an honest node finishes a
// round once it holds at least `quorum` messages for it or the round
// timeout Delta fires.  Rounds stay logically aligned (a node enters round
// r + 1 only after completing round r; run_round() is a global barrier, so
// round-based protocols keep exact per-round traces), but *within* a round
// arrivals are genuinely asynchronous: stragglers determine quorum waits,
// bursty links trigger timeouts, and dropped or late messages simply never
// reach the inbox.
//
// The adversary keeps all of its synchronous powers (omniscient value
// choice after seeing the honest round values, selective omission, honest
// delay requests honored down to the quorum floor) and gains scheduling
// power: its own messages are fixed only once the last honest node entered
// the round (rushing — it sends after seeing everything) and it may add a
// targeted extra delay to any message, clamped to the partial-synchrony
// bound `adversary_delay_bound`.
//
// With a zero-delay model and timeout 0, every delivery and timeout of a
// round lands on one simulated instant; the engine drains simultaneous
// events before advancing anyone, so it reproduces the synchronous
// SyncNetwork semantics bitwise (SyncNetwork is a thin adapter over this
// engine).
//
// --- The sharded event core -------------------------------------------------
//
// Events live in per-destination queues (one shard per honest node)
// instead of one global priority queue.  The simulation advances by
// *conservative safe windows*: the next batch is every event sharing the
// minimum head timestamp across shards — exactly the set the old global
// queue drained per instant — and within a batch all effects are
// per-receiver (inbox/future appends, timeout flags, late counts), so the
// touched shards drain concurrently on the ThreadPool with no shared
// writes.  Scheduling parallelizes the same way: each receiver samples its
// own links' drop/latency draws from the pure per-message streams
// (message_stream) and pushes into its own shard.  Per-shard sequence
// numbers reproduce the old queue's FIFO tie-breaking per receiver, and
// cross-receiver interleaving of same-instant events is unobservable
// (inboxes are re-sorted by sender, statistics are sums, late
// classification reads only receiver state frozen during the batch) — so
// serial and pool-parallel runs are bitwise identical, which a test
// enforces.
//
// Each shard stores its events as LSM-style *sorted runs* rather than a
// binary heap: a scheduling wave sorts its appends once (sequential in
// memory) and similar-sized runs are merged, so popping means comparing a
// handful of run heads and walking each run linearly.  A binary heap pays
// ~log(size) scattered cache lines per pop — with thousands of shards the
// heaps evict each other and that dominated the drain — while runs cost
// amortized O(log wave) comparisons per event on prefetch-friendly
// memory.  Events are 24 bytes instead of 48, and readiness is re-checked
// only for nodes whose shard was touched by the batch instead of scanning
// all n every instant.
//
// Finding each batch costs O(log n), not an O(n) scan: a position-indexed
// min-heap over the shard heads (heads_, one entry per non-empty shard,
// updated in place) is refreshed serially after every phase that mutates
// shard heaps.  Under continuous delay distributions (every batch a
// single event) the engine thus stays O(log) per event like the global
// queue it replaced — but over n entries, not over all in-flight events —
// instead of degrading to O(n) per event.
//
// --- Round-value arena ------------------------------------------------------
//
// Each in-flight round owns a RoundBook: a DoubleArena holding every
// sender's broadcast value exactly once, committed serially when the
// sender enters the round (or when the rushing adversary fixes its
// values).  Deliveries carry PayloadView spans into that storage — n
// receivers share one stored value — so the per-delivery
// std::vector<double> allocate+copy of the previous engine is gone
// entirely.  Ownership rule (see network/message.hpp): views are valid
// only during receive(); the book (and its arena, recycled through a free
// pool) is released once every honest node has sealed the round, which is
// provably after the last receive() that can reference it — a node that
// has not consumed its round-r inbox (or still buffers round-r arrivals
// for a round it has not reached) has not completed r, so r is not sealed.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "compression/codec.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/message.hpp"
#include "util/arena.hpp"

namespace bcl {

class ThreadPool;
class FaultPlan;

namespace obs {
class MetricsRegistry;
}

/// Behaviour of one honest protocol participant (unchanged from the
/// synchronous engine: broadcast one vector per round, receive the round's
/// inbox sorted by sender id, touch only your own state).
class HonestProcess {
 public:
  /// outgoing_wire_bytes() sentinel: "price this broadcast dense",
  /// payload.size() * sizeof(double).
  static constexpr std::size_t kDenseWire = static_cast<std::size_t>(-1);

  virtual ~HonestProcess() = default;

  /// The vector this node reliably broadcasts in `round`.  The engine may
  /// call outgoing() for different nodes concurrently (each node still
  /// sees only its own calls, in round order).
  virtual Vector outgoing(std::size_t round) const = 0;

  /// Modeled wire size of this round's broadcast.  The engine queries it
  /// right after outgoing(round) and uses it for the bandwidth term of the
  /// delivery delay and the byte totals in NetworkStats.  Default: dense.
  /// Compressing processes return their codec's wire_bytes() instead.
  virtual std::size_t outgoing_wire_bytes(std::size_t round) const;

  /// Delivers the round's inbox (sorted by sender id).  Message payloads
  /// are views into the engine's round storage, valid only for the
  /// duration of this call — copy what you keep (message.hpp ownership
  /// rule).  The process updates its own state only.
  virtual void receive(std::size_t round, std::vector<Message>&& inbox) = 0;
};

/// Per-run delivery statistics.  The invariant over honest-to-honest
/// traffic: every sent message is exactly one of delivered, dropped
/// (network loss), late (arrived after the receiver finished the round) or
/// delayed (adversarial request honored at the quorum floor); Byzantine
/// messages are delivered, omitted, or late (a receiver can resolve its
/// round from honest arrivals alone before the rushing adversary fixes its
/// values), and a silent Byzantine round counts one broadcast_skipped
/// instead.
struct NetworkStats {
  std::size_t rounds = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_omitted = 0;  // Byzantine selective omissions
  std::size_t broadcasts_skipped = 0;  // crashed/silent Byzantine rounds
  std::size_t messages_delayed = 0;  // honored honest-message delays
  std::size_t messages_dropped = 0;  // network loss (drop prob / partition)
  std::size_t messages_late = 0;     // arrived after the round completed
  std::size_t timeouts_fired = 0;    // rounds finished by Delta, not quorum
  // Wire-cost accounting over real links (self-delivery is a local
  // loopback and carries no bytes).  `bytes_sent` counts every broadcast
  // copy put on a link, dropped or not; `bytes_delivered` counts the
  // copies that reached a final inbox; `bytes_dense_delivered` is what the
  // delivered copies would have cost uncompressed — the compression-ratio
  // baseline the emitters quote.
  std::size_t bytes_sent = 0;
  std::size_t bytes_delivered = 0;
  std::size_t bytes_dense_delivered = 0;
  // Membership accounting under a FaultPlan (all zero without one).  A
  // down node neither sends nor receives; links to a down endpoint carry
  // no traffic, so the sent/delivered invariant above is over live links.
  std::size_t crashes = 0;      // up -> down transitions observed
  std::size_t recoveries = 0;   // down -> up under crash-recover
  std::size_t joins = 0;        // down -> up under churn
  std::size_t rounds_degraded = 0;  // rounds run below the configured quorum
  // Late-arrival split when `staleness_bound` is set: within the bound
  // (stale but fresh enough) vs older.  Both still count as messages_late.
  std::size_t stale_accepted = 0;
  std::size_t stale_rejected = 0;
};

/// Adds every NetworkStats field into `registry` under unified dotted names
/// ("net.messages_delivered", "net.bytes_sent", ...).  Trainers call this
/// once per engine run so scattered per-run structs surface through one
/// MetricsSnapshot.
void publish_network_stats(const NetworkStats& stats,
                           obs::MetricsRegistry& registry);

/// Engine knobs.  The defaults reproduce full synchrony: zero delays,
/// timeout 0 (a node's round resolves at the instant it started) and an
/// infinite quorum (never honor adversarial delay requests).
struct EventNetworkConfig {
  /// Delivery floor per round: a node may finish a round once it holds
  /// this many messages (and adversarial delay requests are honored only
  /// down to it).  SIZE_MAX = wait for the timeout alone.  Protocols pass
  /// n - t.
  std::size_t quorum = static_cast<std::size_t>(-1);
  /// Round timeout Delta: a node finishes the round at entry + Delta even
  /// below quorum.  0 = resolve at the entry instant (synchronous rounds);
  /// negative = no timeout (wait for quorum; a drained event queue then
  /// forces the stall open and counts a timeout).
  double timeout = 0.0;
  /// Clamp on Adversary::scheduling_delay (the partial-synchrony bound on
  /// targeted delays).  0 = the adversary gets no scheduling power and the
  /// hook is never consulted.
  double adversary_delay_bound = 0.0;
  /// Independent loss probability per honest-link message.
  double drop_probability = 0.0;
  /// Link bandwidth in bytes per simulated second; a message's delivery
  /// delay is its propagation sample plus wire_bytes / bandwidth.  0 =
  /// infinite (transmission is free, the pre-wire-cost semantics).
  double bandwidth = 0.0;
  /// Seed of the delay/drop randomness (message_stream keys off it).
  std::uint64_t seed = 0;
  /// Wire format of broadcast payloads (not owned).  Honest processes
  /// encode for themselves (outgoing / outgoing_wire_bytes); this hook
  /// covers the adversary: when set, Byzantine values are serialized
  /// through the codec too — the payload delivered is decode(encode(v))
  /// and the wire size the encoded one — because a receiver in a
  /// compressed protocol admits nothing larger than the wire format, so
  /// the adversary cannot claim dense-size messages for itself.  nullptr =
  /// dense payloads priced dense.
  const Codec* codec = nullptr;
  /// Seed of the codec's per-(sender, round) randomness.
  std::uint64_t codec_seed = 0;
  /// Link latency model; nullptr = zero delay.  Not owned.
  DelayModel* delay = nullptr;
  /// Deterministic liveness schedule (src/faults); nullptr = every node is
  /// always up, and the engine's behaviour is bit-for-bit the pre-fault
  /// path (every fault branch is behind this pointer).  Not owned.
  const FaultPlan* faults = nullptr;
  /// Maps engine rounds onto plan rounds: plan round = offset + round, or
  /// just offset when membership is frozen (the decentralized trainer runs
  /// one agreement per learning round and freezes membership across its
  /// sub-rounds; transitions are then accounted by the trainer, not here).
  std::size_t fault_round_offset = 0;
  bool fault_membership_frozen = false;
  /// When > 0, classify each late arrival by how many rounds late it is:
  /// within the bound counts stale_accepted, older counts stale_rejected.
  std::size_t staleness_bound = 0;
  /// Optional pool for the three parallel phases (broadcast production,
  /// per-shard scheduling/draining, ready-node finalize + receive).  Runs
  /// are bitwise identical with and without it.  Not owned.
  ThreadPool* pool = nullptr;
  /// Optional per-scenario metrics registry: when set the engine records
  /// every scheduled delivery's latency into the "net.message_delay"
  /// histogram (simulated seconds).  nullptr records nothing.  Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The discrete-event engine (see file comment).  Node ids are [0, n);
/// honest ids own a HonestProcess, Byzantine ids are driven by the
/// adversary.  Not thread-safe: one engine, one driving thread (worker
/// parallelism lives inside the phases documented on EventNetworkConfig).
class EventNetwork {
 public:
  /// `processes[i]` must be non-null exactly for honest ids i.  The engine
  /// does not take ownership of the processes, adversary, model or pool.
  EventNetwork(std::vector<HonestProcess*> processes, Adversary& adversary,
               EventNetworkConfig config = {});

  std::size_t num_nodes() const { return processes_.size(); }

  /// Advances the simulation until every honest node has completed one
  /// more round (a global round barrier, so callers can read a consistent
  /// cross-node state between calls).
  void run_round();

  /// Runs `rounds` consecutive barrier rounds.
  void run(std::size_t rounds);

  /// Rounds completed by all honest nodes.
  std::size_t current_round() const { return completed_rounds_; }
  const NetworkStats& stats() const { return stats_; }

  /// Current simulated time (the completion instant of the last round).
  double now() const { return now_; }
  /// Simulated completion time of each finished round (monotone; index r =
  /// the instant the slowest honest node finished round r).
  const std::vector<double>& round_end_times() const {
    return round_end_times_;
  }
  /// Simulated duration of the last completed round.
  double last_round_latency() const;

 private:
  enum class EventKind : std::uint8_t { Delivery, Timeout };
  /// One event in a destination shard.  The receiver is implicit (the
  /// shard), which keeps the struct at 24 bytes — at m = 5000 a single
  /// round holds ~m^2 in-flight deliveries, so event size is live memory.
  struct ShardEvent {
    double time = 0.0;
    std::uint32_t seq = 0;  // per-shard FIFO order among equal times
    std::uint32_t sender = 0;
    std::uint32_t round = 0;
    EventKind kind = EventKind::Delivery;
  };
  struct ShardEventEarlier {
    bool operator()(const ShardEvent& a, const ShardEvent& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };
  /// Statistics deltas accumulated inside a parallel phase and reduced
  /// into NetworkStats serially afterwards (sums, so the reduction order
  /// is immaterial and parallel runs match serial ones exactly).
  struct ShardStats {
    std::size_t dropped = 0;
    std::size_t omitted = 0;
    std::size_t late = 0;
    std::size_t delivered = 0;
    std::size_t delayed = 0;
    std::size_t timeouts = 0;
    std::size_t bytes_sent = 0;
    std::size_t bytes_delivered = 0;
    std::size_t bytes_dense = 0;
    std::size_t stale_ok = 0;   // late within staleness_bound
    std::size_t stale_old = 0;  // late beyond it
  };
  /// One sorted run of a shard: ascending (time, seq), consumed from the
  /// front.  Consumed prefixes are reclaimed when the run empties.
  struct Run {
    std::vector<ShardEvent> events;
    std::size_t at = 0;  // consumption cursor
    std::size_t left() const { return events.size() - at; }
    const ShardEvent& head() const { return events[at]; }
  };
  /// One destination's event queue (see the file comment): appends land in
  /// `wave` raw; seal_wave() sorts them into a new run and merges runs of
  /// similar size, keeping the run count logarithmic in the queue size.
  /// Only the owning task of a parallel phase touches a shard, so no
  /// locks anywhere.
  struct Shard {
    std::vector<Run> runs;           // every run non-empty
    std::vector<ShardEvent> wave;    // unsealed appends of the current wave
    std::uint32_t next_seq = 0;
    ShardStats delta;

    bool empty() const { return runs.empty(); }
    const ShardEvent& front() const;  // global min head; runs non-empty
    ShardEvent pop();                 // pops front(), prunes emptied runs
    void seal_wave();
  };
  struct RoundBook;
  /// Per-node progress.
  struct NodeState {
    std::size_t round = 0;       // round the node is currently collecting
    double entered = 0.0;        // simulated entry time of that round
    double completed = 0.0;      // completion time of the last round
    bool done = false;           // finished `round`, holding at the barrier
    bool timed_out = false;      // Delta fired for the current round
    // Current round's book (std::map nodes are pointer-stable); spares
    // the per-delivery lookup.  Dereferenced only on the current-round
    // path, which a sealed — hence fully completed — round cannot reach.
    const RoundBook* book = nullptr;
    std::vector<Message> inbox;  // buffered arrivals for the current round
    // Arrivals for rounds the node has not reached yet (sender ran ahead
    // inside a multi-round run() window).
    std::map<std::size_t, std::vector<Message>> future;
  };
  /// Book-keeping of one in-flight round, GC'd (and its arena recycled)
  /// once every honest node has completed the round.
  struct RoundBook {
    DoubleArena arena;                 // backs every values[] span
    std::vector<PayloadView> values;   // per sender; gated by present[]
    std::vector<std::uint8_t> present;
    std::vector<std::size_t> wire;     // wire bytes per sender
    // Honest values as the Adversary interface expects them (nullopt at
    // Byzantine slots); materialized only when the run has Byzantine ids.
    std::vector<std::optional<Vector>> adversary_view;
    std::size_t honest_entered = 0;
    std::size_t done_count = 0;
    double max_entry = 0.0;  // adversary fix instant
    double max_end = 0.0;    // slowest completion
  };
  /// One node entering a round (the unit of the scheduling phases).
  struct Entering {
    std::size_t node = 0;
    std::size_t round = 0;
    double entry = 0.0;
    double transmission = 0.0;  // wire / bandwidth
    std::size_t wire = 0;
    bool down = false;  // node is down for this round (FaultPlan)
    Vector value;  // broadcast, produced in the parallel phase
  };

  /// The FaultPlan round an engine round maps to (identity without a
  /// plan; see EventNetworkConfig::fault_round_offset).
  std::size_t plan_round(std::size_t round) const;
  /// Is this node down for the given engine round?  Always false without
  /// a FaultPlan.
  bool is_down(std::size_t node, std::size_t round) const;
  /// The configured quorum clamped to the round's live membership, so a
  /// thin round resolves over who is actually up instead of hanging.
  std::size_t effective_quorum(std::size_t round) const;

  RoundBook& book_for(std::size_t round);
  static void append_event(Shard& shard, double time, EventKind kind,
                           std::size_t sender, std::size_t round);
  /// Enters every listed node into its round: parallel broadcast
  /// production, serial value commit (arena + adversary view + MMPP
  /// warm-up), parallel per-shard delivery scheduling, then Byzantine
  /// value fixing for any round whose last honest node just entered.
  void enter_rounds(std::vector<Entering>& entering);
  void fix_byzantine_values(std::size_t round);
  void process_event(std::size_t receiver, const ShardEvent& event,
                     Shard& shard);
  bool node_ready(const NodeState& node) const;
  /// Re-records the current head of every listed shard in heads_ (no-op
  /// per shard whose head did not move).  Must run serially after any
  /// phase that pushed or popped shard events.
  void refresh_heads(const std::vector<std::size_t>& ids);
  /// Pops every event sharing the earliest timestamp across shards (one
  /// simulated instant) into the per-node buffers, draining touched
  /// shards in parallel; an empty queue forces stalled rounds open
  /// instead.  Fills touched_.
  void drain_next_batch();
  /// Finishes every touched node whose quorum/timeout condition holds:
  /// honored delay floor, sorted inbox, byte accounting and receive() in
  /// one parallel pass per node, then (serially) round sealing, arena
  /// recycling and next-round entry.
  void advance_ready_nodes();
  /// Adds the listed shards' pending deltas into stats_ and clears them.
  /// Callers pass exactly the ids the preceding parallel phase touched —
  /// a full-n sweep here would put an O(n) term on every single-event
  /// batch.
  void reduce_shard_deltas(const std::vector<std::size_t>& ids);

  std::vector<HonestProcess*> processes_;
  Adversary& adversary_;
  EventNetworkConfig config_;
  std::size_t honest_count_ = 0;
  std::size_t byzantine_count_ = 0;
  std::vector<std::size_t> honest_ids_;

  /// Position-indexed min-heap over shard head times (see the file
  /// comment): one entry per non-empty shard, O(n) memory, in-place
  /// key updates — never stale, unlike a lazy candidate heap, whose
  /// entry count (and pop depth) would grow with in-flight events.
  struct HeadIndex {
    std::vector<std::uint32_t> heap;  // shard ids, min key at heap[0]
    std::vector<double> key;          // key[id] = that shard's head time
    std::vector<std::int32_t> pos;    // pos[id] = index in heap, -1 absent

    void init(std::size_t n);
    bool empty() const { return heap.empty(); }
    std::uint32_t top() const { return heap.front(); }
    double top_key() const { return key[heap.front()]; }
    void update(std::uint32_t id, double t);
    void remove(std::uint32_t id);

   private:
    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
  };

  std::vector<Shard> shards_;  // indexed by node id; Byzantine ids unused
  std::vector<NodeState> nodes_;
  std::map<std::size_t, RoundBook> rounds_;
  std::vector<DoubleArena> arena_pool_;  // recycled round arenas
  std::vector<std::size_t> touched_;     // shards hit by the current batch
  HeadIndex heads_;

  double now_ = 0.0;
  double batch_time_ = 0.0;
  std::size_t completed_rounds_ = 0;
  std::size_t target_rounds_ = 0;  // nodes never enter rounds >= target
  bool started_ = false;
  std::vector<double> round_end_times_;
  NetworkStats stats_;
};

}  // namespace bcl
