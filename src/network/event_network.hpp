#pragma once
// Discrete-event network engine.
//
// Generalizes the lockstep synchronous round model to partial synchrony: a
// priority-queue simulator in which every broadcast message receives a
// delivery time from a pluggable DelayModel (plus independent loss and a
// bounded adversarial scheduling delay), and an honest node finishes a
// round once it holds at least `quorum` messages for it or the round
// timeout Delta fires.  Rounds stay logically aligned (a node enters round
// r + 1 only after completing round r; run_round() is a global barrier, so
// round-based protocols keep exact per-round traces), but *within* a round
// arrivals are genuinely asynchronous: stragglers determine quorum waits,
// bursty links trigger timeouts, and dropped or late messages simply never
// reach the inbox.
//
// The adversary keeps all of its synchronous powers (omniscient value
// choice after seeing the honest round values, selective omission, honest
// delay requests honored down to the quorum floor) and gains scheduling
// power: its own messages are fixed only once the last honest node entered
// the round (rushing — it sends after seeing everything) and it may add a
// targeted extra delay to any message, clamped to the partial-synchrony
// bound `adversary_delay_bound`.
//
// With a zero-delay model and timeout 0, every delivery and timeout of a
// round lands on one simulated instant; the engine drains simultaneous
// events before advancing anyone, so it reproduces the synchronous
// SyncNetwork semantics bitwise (SyncNetwork is now a thin adapter over
// this engine).

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "compression/codec.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/message.hpp"

namespace bcl {

class ThreadPool;

/// Behaviour of one honest protocol participant (unchanged from the
/// synchronous engine: broadcast one vector per round, receive the round's
/// inbox sorted by sender id, touch only your own state).
class HonestProcess {
 public:
  /// outgoing_wire_bytes() sentinel: "price this broadcast dense",
  /// payload.size() * sizeof(double).
  static constexpr std::size_t kDenseWire = static_cast<std::size_t>(-1);

  virtual ~HonestProcess() = default;

  /// The vector this node reliably broadcasts in `round`.
  virtual Vector outgoing(std::size_t round) const = 0;

  /// Modeled wire size of this round's broadcast.  The engine queries it
  /// right after outgoing(round) and uses it for the bandwidth term of the
  /// delivery delay and the byte totals in NetworkStats.  Default: dense.
  /// Compressing processes return their codec's wire_bytes() instead.
  virtual std::size_t outgoing_wire_bytes(std::size_t round) const;

  /// Delivers the round's inbox (sorted by sender id), handing off
  /// ownership — the engine never reads these messages again, so consumers
  /// may move the payloads out instead of copying them.  The process
  /// updates its own state only.
  virtual void receive(std::size_t round, std::vector<Message>&& inbox) = 0;
};

/// Per-run delivery statistics.  The invariant over honest-to-honest
/// traffic: every sent message is exactly one of delivered, dropped
/// (network loss), late (arrived after the receiver finished the round) or
/// delayed (adversarial request honored at the quorum floor); Byzantine
/// messages are delivered, omitted, or late (a receiver can resolve its
/// round from honest arrivals alone before the rushing adversary fixes its
/// values), and a silent Byzantine round counts one broadcast_skipped
/// instead.
struct NetworkStats {
  std::size_t rounds = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_omitted = 0;  // Byzantine selective omissions
  std::size_t broadcasts_skipped = 0;  // crashed/silent Byzantine rounds
  std::size_t messages_delayed = 0;  // honored honest-message delays
  std::size_t messages_dropped = 0;  // network loss (drop prob / partition)
  std::size_t messages_late = 0;     // arrived after the round completed
  std::size_t timeouts_fired = 0;    // rounds finished by Delta, not quorum
  // Wire-cost accounting over real links (self-delivery is a local
  // loopback and carries no bytes).  `bytes_sent` counts every broadcast
  // copy put on a link, dropped or not; `bytes_delivered` counts the
  // copies that reached a final inbox; `bytes_dense_delivered` is what the
  // delivered copies would have cost uncompressed — the compression-ratio
  // baseline the emitters quote.
  std::size_t bytes_sent = 0;
  std::size_t bytes_delivered = 0;
  std::size_t bytes_dense_delivered = 0;
};

/// Engine knobs.  The defaults reproduce full synchrony: zero delays,
/// timeout 0 (a node's round resolves at the instant it started) and an
/// infinite quorum (never honor adversarial delay requests).
struct EventNetworkConfig {
  /// Delivery floor per round: a node may finish a round once it holds
  /// this many messages (and adversarial delay requests are honored only
  /// down to it).  SIZE_MAX = wait for the timeout alone.  Protocols pass
  /// n - t.
  std::size_t quorum = static_cast<std::size_t>(-1);
  /// Round timeout Delta: a node finishes the round at entry + Delta even
  /// below quorum.  0 = resolve at the entry instant (synchronous rounds);
  /// negative = no timeout (wait for quorum; a drained event queue then
  /// forces the stall open and counts a timeout).
  double timeout = 0.0;
  /// Clamp on Adversary::scheduling_delay (the partial-synchrony bound on
  /// targeted delays).  0 = the adversary gets no scheduling power and the
  /// hook is never consulted.
  double adversary_delay_bound = 0.0;
  /// Independent loss probability per honest-link message.
  double drop_probability = 0.0;
  /// Link bandwidth in bytes per simulated second; a message's delivery
  /// delay is its propagation sample plus wire_bytes / bandwidth.  0 =
  /// infinite (transmission is free, the pre-wire-cost semantics).
  double bandwidth = 0.0;
  /// Seed of the delay/drop randomness (message_stream keys off it).
  std::uint64_t seed = 0;
  /// Wire format of broadcast payloads (not owned).  Honest processes
  /// encode for themselves (outgoing / outgoing_wire_bytes); this hook
  /// covers the adversary: when set, Byzantine values are serialized
  /// through the codec too — the payload delivered is decode(encode(v))
  /// and the wire size the encoded one — because a receiver in a
  /// compressed protocol admits nothing larger than the wire format, so
  /// the adversary cannot claim dense-size messages for itself.  nullptr =
  /// dense payloads priced dense.
  const Codec* codec = nullptr;
  /// Seed of the codec's per-(sender, round) randomness.
  std::uint64_t codec_seed = 0;
  /// Link latency model; nullptr = zero delay.  Not owned.
  DelayModel* delay = nullptr;
  /// Optional pool: nodes that become ready at the same simulated instant
  /// run their receive callbacks in parallel.  Not owned.
  ThreadPool* pool = nullptr;
};

/// The discrete-event engine (see file comment).  Node ids are [0, n);
/// honest ids own a HonestProcess, Byzantine ids are driven by the
/// adversary.  Not thread-safe: one engine, one driving thread (worker
/// parallelism lives inside the receive fan-out).
class EventNetwork {
 public:
  /// `processes[i]` must be non-null exactly for honest ids i.  The engine
  /// does not take ownership of the processes, adversary, model or pool.
  EventNetwork(std::vector<HonestProcess*> processes, Adversary& adversary,
               EventNetworkConfig config = {});

  std::size_t num_nodes() const { return processes_.size(); }

  /// Advances the simulation until every honest node has completed one
  /// more round (a global round barrier, so callers can read a consistent
  /// cross-node state between calls).
  void run_round();

  /// Runs `rounds` consecutive barrier rounds.
  void run(std::size_t rounds);

  /// Rounds completed by all honest nodes.
  std::size_t current_round() const { return completed_rounds_; }
  const NetworkStats& stats() const { return stats_; }

  /// Current simulated time (the completion instant of the last round).
  double now() const { return now_; }
  /// Simulated completion time of each finished round (monotone; index r =
  /// the instant the slowest honest node finished round r).
  const std::vector<double>& round_end_times() const {
    return round_end_times_;
  }
  /// Simulated duration of the last completed round.
  double last_round_latency() const;

 private:
  enum class EventKind : std::uint8_t { Delivery, Timeout };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // deterministic FIFO order among equal times
    EventKind kind = EventKind::Delivery;
    std::size_t receiver = 0;
    std::size_t round = 0;
    std::size_t sender = 0;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// Per-node progress.
  struct NodeState {
    std::size_t round = 0;       // round the node is currently collecting
    double entered = 0.0;        // simulated entry time of that round
    double completed = 0.0;      // completion time of the last round
    bool done = false;           // finished `round`, holding at the barrier
    bool timed_out = false;      // Delta fired for the current round
    std::vector<Message> inbox;  // buffered arrivals for the current round
    // Arrivals for rounds the node has not reached yet (sender ran ahead
    // inside a multi-round run() window).
    std::map<std::size_t, std::vector<Message>> future;
  };

  void schedule(Event event);
  void enter_round(std::size_t node, std::size_t round);
  void fix_byzantine_values(std::size_t round);
  void process_event(const Event& event);
  bool node_ready(const NodeState& node) const;
  /// Pops every event sharing the earliest timestamp (one simulated
  /// instant) into the per-node buffers; an empty queue forces stalled
  /// rounds open instead.
  void drain_next_batch();
  /// Finishes every node whose quorum/timeout condition holds: honored
  /// delay floor, sorted inbox, parallel receive, round sealing, next-round
  /// entry.  Runs on the single driving thread; only receive() fans out.
  void advance_ready_nodes();

  std::vector<HonestProcess*> processes_;
  Adversary& adversary_;
  EventNetworkConfig config_;
  std::size_t honest_count_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_ = 0;
  std::vector<NodeState> nodes_;
  // Broadcast values of in-flight rounds (GC'd once the round completes
  // globally): value_by_round_[r][i] is node i's round-r vector, honest and
  // Byzantine alike; nullopt = silent.
  std::map<std::size_t, std::vector<std::optional<Vector>>> values_by_round_;
  // Wire size of each sender's round-r broadcast (parallel to
  // values_by_round_), and the number of its scheduled deliveries not yet
  // processed: when the count hits zero (and the adversary can no longer
  // inspect the round's values) the last delivery moves the vector into
  // its Message instead of copying it.
  std::map<std::size_t, std::vector<std::size_t>> wire_by_round_;
  std::map<std::size_t, std::vector<std::size_t>> pending_by_round_;
  std::map<std::size_t, std::size_t> honest_entered_;     // round -> count
  std::map<std::size_t, std::size_t> round_done_counts_;  // round -> count
  std::map<std::size_t, double> round_max_entry_;  // adversary fix instant
  std::map<std::size_t, double> round_max_end_;    // slowest completion

  double now_ = 0.0;
  double batch_time_ = 0.0;
  std::size_t completed_rounds_ = 0;
  std::size_t target_rounds_ = 0;  // nodes never enter rounds >= target
  bool started_ = false;
  std::vector<double> round_end_times_;
  NetworkStats stats_;
};

}  // namespace bcl
