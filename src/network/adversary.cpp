#include "network/adversary.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace bcl {

std::size_t Adversary::count_byzantine(std::size_t n) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_byzantine(i)) ++count;
  }
  return count;
}

// --- CrashAdversary ---

CrashAdversary::CrashAdversary(std::vector<std::size_t> byzantine_ids,
                               std::size_t crash_round,
                               VectorList pre_crash_values)
    : ids_(std::move(byzantine_ids)),
      crash_round_(crash_round),
      pre_crash_values_(std::move(pre_crash_values)) {
  if (pre_crash_values_.size() != ids_.size()) {
    throw std::invalid_argument(
        "CrashAdversary: one pre-crash value per Byzantine node required");
  }
}

bool CrashAdversary::is_byzantine(std::size_t node) const {
  return std::find(ids_.begin(), ids_.end(), node) != ids_.end();
}

std::optional<Vector> CrashAdversary::byzantine_value(
    std::size_t node, std::size_t round,
    const std::vector<std::optional<Vector>>& /*honest_values*/) {
  if (round >= crash_round_) return std::nullopt;
  const auto it = std::find(ids_.begin(), ids_.end(), node);
  if (it == ids_.end()) return std::nullopt;
  return pre_crash_values_[static_cast<std::size_t>(it - ids_.begin())];
}

// --- FixedVectorAdversary ---

FixedVectorAdversary::FixedVectorAdversary(
    std::vector<std::size_t> byzantine_ids, Vector value)
    : ids_(std::move(byzantine_ids)), value_(std::move(value)) {}

bool FixedVectorAdversary::is_byzantine(std::size_t node) const {
  return std::find(ids_.begin(), ids_.end(), node) != ids_.end();
}

std::optional<Vector> FixedVectorAdversary::byzantine_value(
    std::size_t /*node*/, std::size_t /*round*/,
    const std::vector<std::optional<Vector>>& /*honest_values*/) {
  return value_;
}

// --- SignFlipAdversary ---

SignFlipAdversary::SignFlipAdversary(std::vector<std::size_t> byzantine_ids,
                                     double scale)
    : ids_(std::move(byzantine_ids)), scale_(scale) {}

bool SignFlipAdversary::is_byzantine(std::size_t node) const {
  return std::find(ids_.begin(), ids_.end(), node) != ids_.end();
}

std::optional<Vector> SignFlipAdversary::byzantine_value(
    std::size_t /*node*/, std::size_t /*round*/,
    const std::vector<std::optional<Vector>>& honest_values) {
  VectorList honest;
  for (const auto& v : honest_values) {
    if (v) honest.push_back(*v);
  }
  if (honest.empty()) return std::nullopt;
  return scale(mean(honest), -scale_);
}

// --- DelayingAdversary ---

DelayingAdversary::DelayingAdversary(Adversary& inner,
                                     double drop_probability,
                                     std::uint64_t seed)
    : inner_(inner), drop_probability_(drop_probability), seed_(seed) {
  if (drop_probability < 0.0 || drop_probability > 1.0) {
    throw std::invalid_argument(
        "DelayingAdversary: drop probability must be in [0, 1]");
  }
}

bool DelayingAdversary::is_byzantine(std::size_t node) const {
  return inner_.is_byzantine(node);
}

std::optional<Vector> DelayingAdversary::byzantine_value(
    std::size_t node, std::size_t round,
    const std::vector<std::optional<Vector>>& honest_values) {
  return inner_.byzantine_value(node, round, honest_values);
}

bool DelayingAdversary::delivers(std::size_t sender, std::size_t receiver,
                                 std::size_t round) {
  return inner_.delivers(sender, receiver, round);
}

bool DelayingAdversary::delays_honest(std::size_t sender,
                                      std::size_t receiver,
                                      std::size_t round) {
  // Stateless per-link coin: a pure function of (seed, round, sender,
  // receiver) so the decision does not depend on query order.
  Rng coin = Rng(seed_).split(round).split(sender * 4096 + receiver);
  return coin.uniform() < drop_probability_;
}

// --- PerNodeFixedAdversary ---

PerNodeFixedAdversary::PerNodeFixedAdversary(
    std::vector<std::size_t> byzantine_ids,
    std::vector<std::optional<Vector>> values)
    : ids_(std::move(byzantine_ids)), values_(std::move(values)) {}

bool PerNodeFixedAdversary::is_byzantine(std::size_t node) const {
  return std::find(ids_.begin(), ids_.end(), node) != ids_.end();
}

std::optional<Vector> PerNodeFixedAdversary::byzantine_value(
    std::size_t node, std::size_t /*round*/,
    const std::vector<std::optional<Vector>>& /*honest_values*/) {
  if (node >= values_.size()) return std::nullopt;
  return values_[node];
}

// --- SplitWorldAdversary ---

SplitWorldAdversary::SplitWorldAdversary(std::vector<std::size_t> camp1,
                                         std::vector<std::size_t> camp2,
                                         std::vector<std::size_t> byz_camp1,
                                         std::vector<std::size_t> byz_camp2)
    : camp1_(std::move(camp1)),
      camp2_(std::move(camp2)),
      byz1_(std::move(byz_camp1)),
      byz2_(std::move(byz_camp2)) {
  if (camp1_.empty() || camp2_.empty()) {
    throw std::invalid_argument("SplitWorldAdversary: camps must be non-empty");
  }
}

bool SplitWorldAdversary::in(const std::vector<std::size_t>& ids,
                             std::size_t node) const {
  return std::find(ids.begin(), ids.end(), node) != ids.end();
}

bool SplitWorldAdversary::is_byzantine(std::size_t node) const {
  return in(byz1_, node) || in(byz2_, node);
}

std::optional<Vector> SplitWorldAdversary::byzantine_value(
    std::size_t node, std::size_t /*round*/,
    const std::vector<std::optional<Vector>>& honest_values) {
  // Echo the current value of the supported camp's first honest node.
  const std::vector<std::size_t>& camp = in(byz1_, node) ? camp1_ : camp2_;
  const auto& value = honest_values.at(camp.front());
  if (!value) return std::nullopt;
  return *value;
}

bool SplitWorldAdversary::delivers(std::size_t sender, std::size_t receiver,
                                   std::size_t /*round*/) {
  // Camp-1 supporters deliver only to camp 1; likewise for camp 2.
  if (in(byz1_, sender)) return in(camp1_, receiver);
  if (in(byz2_, sender)) return in(camp2_, receiver);
  return true;
}

}  // namespace bcl
