#pragma once
// Pluggable message-delay models for the discrete-event network engine.
//
// A DelayModel maps one message (sender, receiver, round) to a simulated
// link latency; the event engine adds it to the sender's round-entry time
// to obtain the delivery time.  Models are deterministic: the engine hands
// each sample a message-keyed Rng stream, so a given (seed, sender,
// receiver, round) always yields the same latency no matter in which order
// the event queue asks.  A negative sample means the link ate the message
// (hard partition drop); independent random loss is the engine's
// drop_probability instead, so every model composes with it.
//
// The textual grammar (the `net=` scenario dimension) round-trips through
// NetConfig:
//
//   net=sync
//   net=async:delay=exp,mean=5,drop=0.01,timeout=50
//   net=async:delay=mmpp,mean=1,mean2=20,p01=0.1,p10=0.3
//   net=async:delay=partition,mean=1,penalty=40,until=8
//
// The MMPP model is the bursty two-state arrival process of the related
// MMPP literature (squared coefficient of variation > 1): a calm and a
// congested state with exponential service in each, switching per round.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace bcl {

/// Parsed form of the `net=` scenario dimension (see file comment for the
/// grammar).  Plain data; `parse` and `to_string` round-trip so scenario
/// artifacts can replay any network configuration byte for byte.
struct NetConfig {
  /// false = the lockstep full-synchrony model (every other field ignored).
  bool async = false;
  /// Delay family: zero | const | uniform | exp | mmpp | partition.
  std::string delay = "zero";
  /// Mean latency (const value, exp mean, mmpp calm mean, partition base).
  double mean = 1.0;
  /// Uniform support [min, max].
  double min = 0.0;
  double max = 1.0;
  /// MMPP congested-state mean and per-round switching probabilities
  /// (calm -> congested, congested -> calm).
  double mean2 = 10.0;
  double p01 = 0.1;
  double p10 = 0.5;
  /// Independent per-message loss probability on honest links.
  double drop = 0.0;
  /// Link bandwidth in bytes per simulated second: delivery delay becomes
  /// propagation + wire_bytes / bw, so compressed payloads measurably
  /// shorten rounds.  0 = infinite (transmission free — the pre-wire-cost
  /// semantics, under which compression changes bytes but not time).
  double bw = 0.0;
  /// Partial-synchrony round timeout Delta: a node stuck below quorum
  /// advances once Delta simulated time passed since it entered the round.
  /// 0 = no timeout (wait for quorum).
  double timeout = 0.0;
  /// Bound on the adversary's targeted extra delay per message
  /// (Adversary::scheduling_delay is clamped to [0, adv]).
  double adv = 0.0;
  /// Link partition: messages crossing the id boundary (ids < boundary vs
  /// the rest) before round `until` pay `penalty` extra latency; boundary
  /// 0 = n/2.
  double penalty = 10.0;
  std::size_t until = 0;
  std::size_t boundary = 0;
  /// Root seed of the delay/drop randomness.  Not part of the grammar —
  /// the scenario seed (mixed per learning round) drives it.
  std::uint64_t seed = 0;

  /// Parses "sync" or "async:key=value,...".  Throws std::invalid_argument
  /// on unknown modes, delay families, or keys (valid lists attached).
  static NetConfig parse(const std::string& text);

  /// Canonical textual form; parse(to_string()) round-trips (the seed is
  /// intentionally excluded — it is scenario state, not grammar).
  std::string to_string() const;

  bool operator==(const NetConfig& other) const = default;
};

/// The valid `net=` parameter keys (shared by parse errors and the docs).
const std::vector<std::string>& net_config_keys();

/// The valid delay-family names (shared by parse errors and the bcl_run
/// --list menu, so the menu cannot go stale against make_delay_model).
const std::vector<std::string>& delay_family_names();

/// Deterministic per-message Rng stream keyed by (seed, sender, receiver,
/// round): the engine's drop draw and the model's latency draw both come
/// from this stream, in that order, so a message's fate never depends on
/// event-queue processing order.
Rng message_stream(std::uint64_t seed, std::size_t sender,
                   std::size_t receiver, std::size_t round);

/// One link-latency distribution (see file comment).  Instances are
/// per-run.  The sharded event engine fans a sender's broadcast out to
/// worker threads, so sampling follows a two-phase contract: the engine
/// calls prepare(sender, round) serially for every sender it is about to
/// schedule, then sample() concurrently from the workers — after its
/// prepare(), a model's sample() must not mutate shared state (stateless
/// models satisfy this trivially; MMPP advances its per-sender state
/// chain in prepare() so the samples only read it).
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual std::string name() const = 0;
  /// Serial warm-up hook before the engine fans `sender`'s round-`round`
  /// broadcast out to worker threads (see the class comment).  Default:
  /// nothing — most models keep no per-sender state.
  virtual void prepare(std::size_t sender, std::size_t round) {
    (void)sender;
    (void)round;
  }
  /// Latency of the message sender -> receiver broadcast in `round`.
  /// `rng` is a stream keyed to this exact message by the engine; models
  /// draw from it so samples are order-independent.  Negative = dropped.
  /// May be called from worker threads after prepare() (class comment).
  virtual double sample(std::size_t sender, std::size_t receiver,
                        std::size_t round, Rng& rng) = 0;
};

/// Every message takes exactly 0 time: the event engine degenerates to the
/// lockstep synchronous round model (SyncNetwork's semantics).
class ZeroDelayModel final : public DelayModel {
 public:
  std::string name() const override { return "zero"; }
  double sample(std::size_t, std::size_t, std::size_t, Rng&) override {
    return 0.0;
  }
};

/// Every message takes exactly `value` time (homogeneous links).
class ConstantDelayModel final : public DelayModel {
 public:
  explicit ConstantDelayModel(double value);
  std::string name() const override { return "const"; }
  double sample(std::size_t, std::size_t, std::size_t, Rng&) override {
    return value_;
  }

 private:
  double value_;
};

/// Uniform latency in [min, max].
class UniformDelayModel final : public DelayModel {
 public:
  UniformDelayModel(double min, double max);
  std::string name() const override { return "uniform"; }
  double sample(std::size_t, std::size_t, std::size_t, Rng& rng) override;

 private:
  double min_, max_;
};

/// Exponential latency with the given mean (memoryless heterogeneity).
class ExponentialDelayModel final : public DelayModel {
 public:
  explicit ExponentialDelayModel(double mean);
  std::string name() const override { return "exp"; }
  double sample(std::size_t, std::size_t, std::size_t, Rng& rng) override;

 private:
  double mean_;
};

/// Bursty two-state Markov-modulated latency: each sender carries a hidden
/// calm/congested state evolving once per round (calm -> congested with
/// p01, back with p10); latency is exponential with the state's mean.  The
/// state chain is a pure function of (seed, sender, round), so samples
/// stay deterministic under any event order.
class MmppDelayModel final : public DelayModel {
 public:
  MmppDelayModel(double calm_mean, double burst_mean, double p01, double p10,
                 std::uint64_t seed);
  std::string name() const override { return "mmpp"; }
  /// Advances `sender`'s state chain to `round` on the driving thread, so
  /// the concurrent sample() calls that follow only read it.
  void prepare(std::size_t sender, std::size_t round) override;
  double sample(std::size_t sender, std::size_t receiver, std::size_t round,
                Rng& rng) override;
  /// The hidden state of `sender` at `round` (true = congested); exposed
  /// for tests.
  bool congested(std::size_t sender, std::size_t round);

 private:
  struct Chain {
    std::size_t round = 0;
    bool congested = false;
  };
  double calm_mean_, burst_mean_, p01_, p10_;
  std::uint64_t seed_;
  std::vector<Chain> chains_;  // cached per-sender state, advanced forward
};

/// Link partition: ids < boundary and ids >= boundary form two camps;
/// until round `until`, cross-camp messages pay `penalty` extra latency on
/// top of the exponential base mean (penalty < 0 drops them outright).
/// From round `until` on the partition heals and only the base remains.
class PartitionDelayModel final : public DelayModel {
 public:
  PartitionDelayModel(double base_mean, double penalty, std::size_t until,
                      std::size_t boundary);
  std::string name() const override { return "partition"; }
  double sample(std::size_t sender, std::size_t receiver, std::size_t round,
                Rng& rng) override;

 private:
  double base_mean_, penalty_;
  std::size_t until_, boundary_;
};

/// Materializes the delay family of `config` for an n-node run (`n` fixes
/// the default partition boundary).  Throws std::invalid_argument for an
/// unknown family — parse() already rejects those, so reaching it via a
/// parsed config is a bug.
std::unique_ptr<DelayModel> make_delay_model(const NetConfig& config,
                                             std::size_t n);

/// Per-message wire sizes of one centralized (star-topology) round, for
/// the bandwidth term of star_round_latency: `uplink_bytes[i]` is client
/// i's upload as the trainer priced it — EF-encoded for honest clients,
/// codec-serialized (or dense without a codec) for Byzantine submissions,
/// 0 for a silent round — and `downlink_bytes` the server's broadcast
/// payload.  Empty/zero = free transmission (the pre-wire-cost
/// semantics).
struct StarWire {
  std::vector<std::size_t> uplink_bytes;
  std::size_t downlink_bytes = 0;
};

/// Which of one star round's messages actually arrived (filled by
/// star_round_latency when requested): `uplink[i]` for client i's upload,
/// `downlink[i]` for honest client i's copy of the broadcast.  Lets the
/// trainer count delivered bytes consistently with the event engine's
/// NetworkStats, which also excludes dropped messages.
struct StarDelivery {
  std::vector<bool> uplink;
  std::vector<bool> downlink;
};

/// Simulated latency of one centralized (star-topology) learning round:
/// every client uploads its gradient to the server over a sampled uplink,
/// the server waits for the `quorum`-th arrival (Byzantine clients rush:
/// their propagation is 0, but with `config.bw` set every upload still
/// pays its transmission time wire_bytes / bw), bounded by the timeout
/// when one is configured, then broadcasts the model back and the round
/// ends at the slowest honest downlink (propagation + downlink
/// transmission).  Dropped uplinks never arrive; if fewer than `quorum`
/// make it the server stalls until the timeout (or the last arrival
/// without one).
double star_round_latency(DelayModel& model, const NetConfig& config,
                          std::size_t n, std::size_t f, std::size_t quorum,
                          std::size_t round, const StarWire& wire = {},
                          StarDelivery* delivery = nullptr);

}  // namespace bcl
