#pragma once
// Byzantine adversary model of the synchronous simulator.
//
// The communication model (Section 2.3): n nodes exchange vectors in
// synchronous rounds over reliable broadcast.  Reliable broadcast prevents
// equivocation — a sender's value in a round is unique — which the
// simulator enforces structurally: the adversary supplies one value per
// Byzantine node per round.  The adversary may still *selectively omit*
// deliveries of its own messages ("receive up to n messages"), crash, and
// choose its values omnisciently after seeing every honest value of the
// round.  Honest-to-honest delivery is never interfered with (synchrony).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// Strategy interface.  One instance drives all Byzantine nodes of a run,
/// so coordinated (colluding) behaviour is expressible.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// True if node `node` is Byzantine.  Must be constant over a run.
  virtual bool is_byzantine(std::size_t node) const = 0;

  /// The unique value Byzantine node `node` reliably broadcasts in `round`,
  /// or nullopt to stay silent (crash/omission of the whole broadcast).
  /// `honest_values[i]` holds the value honest node i broadcasts this round
  /// (nullopt at Byzantine indices) — the omniscient-adversary convention
  /// of the Byzantine-ML literature.
  virtual std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) = 0;

  /// Whether the (already fixed) value of Byzantine `sender` reaches
  /// `receiver` this round.  Selective omission hook; defaults to full
  /// delivery.
  virtual bool delivers(std::size_t sender, std::size_t receiver,
                        std::size_t round) {
    (void)sender;
    (void)receiver;
    (void)round;
    return true;
  }

  /// Whether the adversary *requests* to delay the honest message
  /// sender -> receiver this round ("receive up to n messages": in the
  /// asynchronous-flavoured model the scheduler may withhold some honest
  /// messages, but every honest node is still guaranteed at least n - t).
  /// The network honors requests only while the receiver's inbox stays at
  /// n - t or more; defaults to no delays (fully synchronous).
  virtual bool delays_honest(std::size_t sender, std::size_t receiver,
                             std::size_t round) {
    (void)sender;
    (void)receiver;
    (void)round;
    return false;
  }

  /// Extra simulated latency the adversary injects on the message
  /// sender -> receiver in `round` (scheduling power under partial
  /// synchrony: targeted slow-downs of honest links, or holding back its
  /// own messages instead of rushing them).  The discrete-event engine
  /// clamps the request to [0, adversary_delay_bound] and never consults
  /// the hook when the bound is 0 — in particular the synchronous adapter
  /// never calls it.  Defaults to no extra delay.
  ///
  /// Decision hooks (delivers, delays_honest, scheduling_delay) must be
  /// pure functions of their arguments: the engines may consult them a
  /// different number of times per link per round, and the sharded event
  /// engine consults them concurrently from worker threads (one per
  /// receiver), so they must not mutate adversary state.  Value fixing
  /// (byzantine_value) stays strictly serial on the driving thread.
  virtual double scheduling_delay(std::size_t sender, std::size_t receiver,
                                  std::size_t round) {
    (void)sender;
    (void)receiver;
    (void)round;
    return 0.0;
  }

  /// Number of Byzantine nodes among ids [0, n).
  std::size_t count_byzantine(std::size_t n) const;
};

/// No faults at all (f = 0 baseline).
class NoAdversary final : public Adversary {
 public:
  bool is_byzantine(std::size_t) const override { return false; }
  std::optional<Vector> byzantine_value(
      std::size_t, std::size_t,
      const std::vector<std::optional<Vector>>&) override {
    return std::nullopt;
  }
};

/// Crash faults: the listed nodes broadcast nothing from `crash_round` on
/// (before it they behave honestly by echoing `pre_crash_value`... they have
/// no honest state, so they send the supplied initial vector).
class CrashAdversary final : public Adversary {
 public:
  CrashAdversary(std::vector<std::size_t> byzantine_ids,
                 std::size_t crash_round, VectorList pre_crash_values);
  bool is_byzantine(std::size_t node) const override;
  std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) override;

 private:
  std::vector<std::size_t> ids_;
  std::size_t crash_round_;
  VectorList pre_crash_values_;
};

/// Each Byzantine node broadcasts a fixed vector every round.
class FixedVectorAdversary final : public Adversary {
 public:
  FixedVectorAdversary(std::vector<std::size_t> byzantine_ids, Vector value);
  bool is_byzantine(std::size_t node) const override;
  std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) override;

 private:
  std::vector<std::size_t> ids_;
  Vector value_;
};

/// Sign-flip in agreement space: every Byzantine node broadcasts
/// -scale * mean(honest values of the round), the gradient-inversion attack
/// of the evaluation section lifted to the agreement subroutine.
class SignFlipAdversary final : public Adversary {
 public:
  SignFlipAdversary(std::vector<std::size_t> byzantine_ids, double scale = 1.0);
  bool is_byzantine(std::size_t node) const override;
  std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) override;

 private:
  std::vector<std::size_t> ids_;
  double scale_;
};

/// Decorates another adversary with random honest-message delays drawn
/// from a seeded stream: each honest link is independently requested to be
/// delayed with probability `drop_probability` per round.  The network
/// still guarantees n - t deliveries per honest receiver, so this models
/// the "up to n messages" slack of the communication model.
class DelayingAdversary final : public Adversary {
 public:
  /// `inner` provides the Byzantine behaviour (may be NoAdversary).
  /// Does not take ownership; `inner` must outlive this object.
  DelayingAdversary(Adversary& inner, double drop_probability,
                    std::uint64_t seed);
  bool is_byzantine(std::size_t node) const override;
  std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) override;
  bool delivers(std::size_t sender, std::size_t receiver,
                std::size_t round) override;
  bool delays_honest(std::size_t sender, std::size_t receiver,
                     std::size_t round) override;

 private:
  Adversary& inner_;
  double drop_probability_;
  std::uint64_t seed_;
};

/// Each Byzantine node broadcasts its own fixed value every round; nullopt
/// entries stay silent (crashed).  This is how learning-round gradient
/// attacks are embedded into the agreement sub-rounds: the attacker fixes
/// its corrupted gradient once per learning round and repeats it.
class PerNodeFixedAdversary final : public Adversary {
 public:
  /// `values[i]` is the broadcast of node i when Byzantine; only entries at
  /// ids listed in `byzantine_ids` are used.
  PerNodeFixedAdversary(std::vector<std::size_t> byzantine_ids,
                        std::vector<std::optional<Vector>> values);
  bool is_byzantine(std::size_t node) const override;
  std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) override;

 private:
  std::vector<std::size_t> ids_;
  std::vector<std::optional<Vector>> values_;
};

/// The Lemma 4.2 construction.  Honest nodes are split into two camps
/// (U1 holding v1, U2 holding v2).  Byzantine nodes also split: the first
/// half broadcasts the camp-1 value and delivers it *only to U1*; the
/// second half broadcasts the camp-2 value only to U2.  Against MD-GEOM
/// with adversary-favourable tie-breaking this reproduces the initial
/// configuration forever.
class SplitWorldAdversary final : public Adversary {
 public:
  /// `camp1` / `camp2`: honest node ids of each camp.  `byz_camp1` /
  /// `byz_camp2`: Byzantine ids supporting each camp.
  SplitWorldAdversary(std::vector<std::size_t> camp1,
                      std::vector<std::size_t> camp2,
                      std::vector<std::size_t> byz_camp1,
                      std::vector<std::size_t> byz_camp2);
  bool is_byzantine(std::size_t node) const override;
  std::optional<Vector> byzantine_value(
      std::size_t node, std::size_t round,
      const std::vector<std::optional<Vector>>& honest_values) override;
  bool delivers(std::size_t sender, std::size_t receiver,
                std::size_t round) override;

 private:
  bool in(const std::vector<std::size_t>& ids, std::size_t node) const;
  std::vector<std::size_t> camp1_, camp2_, byz1_, byz2_;
};

}  // namespace bcl
