#include "network/delay_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {
namespace {

// Shared grammar formatting policy (util/parse).
std::string format_g(double value) { return format_double_g(value); }

double get_double(const std::map<std::string, std::string>& params,
                  const std::string& key, double fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return parse_strict_double(it->second, "NetConfig: key '" + key + "'");
}

std::size_t get_size(const std::map<std::string, std::string>& params,
                     const std::string& key, std::size_t fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return static_cast<std::size_t>(
      parse_strict_u64(it->second, "NetConfig: key '" + key + "'"));
}

}  // namespace

const std::vector<std::string>& delay_family_names() {
  static const std::vector<std::string> families = {
      "zero", "const", "uniform", "exp", "mmpp", "partition"};
  return families;
}

const std::vector<std::string>& net_config_keys() {
  static const std::vector<std::string> keys = {
      "delay", "mean", "min",     "max",   "mean2",    "p01", "p10",
      "drop",  "bw",   "timeout", "adv", "penalty", "until", "boundary"};
  return keys;
}

Rng message_stream(std::uint64_t seed, std::size_t sender,
                   std::size_t receiver, std::size_t round) {
  std::uint64_t state = splitmix64(seed ^ 0xD6E8FEB86659FD93ull);
  state = splitmix64(state ^ static_cast<std::uint64_t>(sender));
  state = splitmix64(state ^ static_cast<std::uint64_t>(receiver));
  state = splitmix64(state ^ static_cast<std::uint64_t>(round));
  return Rng(state);
}

NetConfig NetConfig::parse(const std::string& text) {
  NetConfig config;
  const std::size_t colon = text.find(':');
  const std::string mode = text.substr(0, colon);
  if (mode == "sync") {
    if (colon != std::string::npos) {
      throw std::invalid_argument(
          "NetConfig: mode 'sync' takes no parameters, got '" + text + "'");
    }
    return config;
  }
  if (mode != "async") {
    throw std::invalid_argument("NetConfig: unknown mode '" + mode +
                                "' (valid: sync, async)");
  }
  config.async = true;
  std::map<std::string, std::string> params;
  if (colon != std::string::npos) {
    std::stringstream rest(text.substr(colon + 1));
    std::string token;
    while (std::getline(rest, token, ',')) {
      if (token.empty()) continue;
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        throw std::invalid_argument("NetConfig: malformed parameter '" +
                                    token + "' in '" + text +
                                    "' (expected key=value)");
      }
      params[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  for (const auto& [key, value] : params) {
    (void)value;
    bool known = false;
    for (const auto& k : net_config_keys()) known = known || k == key;
    if (!known) {
      throw std::invalid_argument("NetConfig: unknown key '" + key +
                                  "' (valid: " + join_names(net_config_keys()) +
                                  ")");
    }
  }
  const auto it = params.find("delay");
  if (it != params.end()) config.delay = it->second;
  bool family_known = false;
  for (const auto& f : delay_family_names()) {
    family_known = family_known || f == config.delay;
  }
  if (!family_known) {
    throw std::invalid_argument("NetConfig: unknown delay family '" +
                                config.delay +
                                "' (valid: " + join_names(delay_family_names()) +
                                ")");
  }
  config.mean = get_double(params, "mean", config.mean);
  config.min = get_double(params, "min", config.min);
  config.max = get_double(params, "max", config.max);
  config.mean2 = get_double(params, "mean2", config.mean2);
  config.p01 = get_double(params, "p01", config.p01);
  config.p10 = get_double(params, "p10", config.p10);
  config.drop = get_double(params, "drop", config.drop);
  config.bw = get_double(params, "bw", config.bw);
  config.timeout = get_double(params, "timeout", config.timeout);
  config.adv = get_double(params, "adv", config.adv);
  config.penalty = get_double(params, "penalty", config.penalty);
  config.until = get_size(params, "until", config.until);
  config.boundary = get_size(params, "boundary", config.boundary);

  check_probability(config.drop, "drop", "NetConfig");
  check_probability(config.p01, "p01", "NetConfig");
  check_probability(config.p10, "p10", "NetConfig");
  if (config.mean < 0.0 || config.min < 0.0 || config.max < 0.0 ||
      config.mean2 < 0.0 || config.bw < 0.0 || config.timeout < 0.0 ||
      config.adv < 0.0) {
    throw std::invalid_argument(
        "NetConfig: delay parameters must be non-negative in '" + text + "'");
  }
  if (config.min > config.max) {
    throw std::invalid_argument("NetConfig: min must not exceed max, got [" +
                                format_g(config.min) + ", " +
                                format_g(config.max) + "]");
  }
  return config;
}

std::string NetConfig::to_string() const {
  if (!async) return "sync";
  // Every field that differs from the defaults is emitted (in
  // net_config_keys() order), whether or not the delay family consumes it:
  // parse() accepts any known key for any family, so this keeps the
  // parse(to_string()) == *this contract for every accepted config.
  std::string out = "async";
  std::string params;
  const auto add = [&params](const char* key, const std::string& value) {
    params += params.empty() ? ":" : ",";
    params += key;
    params += '=';
    params += value;
  };
  const NetConfig defaults;
  if (delay != defaults.delay) add("delay", delay);
  if (mean != defaults.mean) add("mean", format_g(mean));
  if (min != defaults.min) add("min", format_g(min));
  if (max != defaults.max) add("max", format_g(max));
  if (mean2 != defaults.mean2) add("mean2", format_g(mean2));
  if (p01 != defaults.p01) add("p01", format_g(p01));
  if (p10 != defaults.p10) add("p10", format_g(p10));
  if (drop != defaults.drop) add("drop", format_g(drop));
  if (bw != defaults.bw) add("bw", format_g(bw));
  if (timeout != defaults.timeout) add("timeout", format_g(timeout));
  if (adv != defaults.adv) add("adv", format_g(adv));
  if (penalty != defaults.penalty) add("penalty", format_g(penalty));
  if (until != defaults.until) add("until", std::to_string(until));
  if (boundary != defaults.boundary) {
    add("boundary", std::to_string(boundary));
  }
  return out + params;
}

// --- models ----------------------------------------------------------------

ConstantDelayModel::ConstantDelayModel(double value) : value_(value) {
  if (value < 0.0) {
    throw std::invalid_argument("ConstantDelayModel: value must be >= 0");
  }
}

UniformDelayModel::UniformDelayModel(double min, double max)
    : min_(min), max_(max) {
  if (min < 0.0 || min > max) {
    throw std::invalid_argument(
        "UniformDelayModel: need 0 <= min <= max");
  }
}

double UniformDelayModel::sample(std::size_t, std::size_t, std::size_t,
                                 Rng& rng) {
  return rng.uniform(min_, max_);
}

ExponentialDelayModel::ExponentialDelayModel(double mean) : mean_(mean) {
  if (mean < 0.0) {
    throw std::invalid_argument("ExponentialDelayModel: mean must be >= 0");
  }
}

double ExponentialDelayModel::sample(std::size_t, std::size_t, std::size_t,
                                     Rng& rng) {
  // Inverse CDF over uniform() in [0, 1): log argument stays in (0, 1].
  return -mean_ * std::log(1.0 - rng.uniform());
}

MmppDelayModel::MmppDelayModel(double calm_mean, double burst_mean, double p01,
                               double p10, std::uint64_t seed)
    : calm_mean_(calm_mean),
      burst_mean_(burst_mean),
      p01_(p01),
      p10_(p10),
      seed_(seed) {
  if (calm_mean < 0.0 || burst_mean < 0.0) {
    throw std::invalid_argument("MmppDelayModel: means must be >= 0");
  }
}

void MmppDelayModel::prepare(std::size_t sender, std::size_t round) {
  congested(sender, round);  // advance the chain; the result is discarded
}

bool MmppDelayModel::congested(std::size_t sender, std::size_t round) {
  if (sender >= chains_.size()) chains_.resize(sender + 1);
  Chain& chain = chains_[sender];
  if (round < chain.round) chain = Chain{};  // replay from the start
  while (chain.round < round) {
    ++chain.round;
    // One transition draw per (seed, sender, round): the chain is a pure
    // function of its key, so cache state is an optimization, not truth.
    Rng step(splitmix64(splitmix64(seed_ ^ 0xA24BAED4963EE407ull ^
                                   static_cast<std::uint64_t>(sender)) ^
                        static_cast<std::uint64_t>(chain.round)));
    const double u = step.uniform();
    chain.congested = chain.congested ? u >= p10_ : u < p01_;
  }
  return chain.congested;
}

double MmppDelayModel::sample(std::size_t sender, std::size_t /*receiver*/,
                              std::size_t round, Rng& rng) {
  const double mean = congested(sender, round) ? burst_mean_ : calm_mean_;
  return -mean * std::log(1.0 - rng.uniform());
}

PartitionDelayModel::PartitionDelayModel(double base_mean, double penalty,
                                         std::size_t until,
                                         std::size_t boundary)
    : base_mean_(base_mean),
      penalty_(penalty),
      until_(until),
      boundary_(boundary) {
  if (base_mean < 0.0) {
    throw std::invalid_argument("PartitionDelayModel: base mean must be >= 0");
  }
}

double PartitionDelayModel::sample(std::size_t sender, std::size_t receiver,
                                   std::size_t round, Rng& rng) {
  const double base = -base_mean_ * std::log(1.0 - rng.uniform());
  const bool cross = (sender < boundary_) != (receiver < boundary_);
  if (!cross || round >= until_) return base;
  if (penalty_ < 0.0) return -1.0;  // hard partition: the link eats it
  return base + penalty_;
}

std::unique_ptr<DelayModel> make_delay_model(const NetConfig& config,
                                             std::size_t n) {
  if (config.delay == "zero") return std::make_unique<ZeroDelayModel>();
  if (config.delay == "const") {
    return std::make_unique<ConstantDelayModel>(config.mean);
  }
  if (config.delay == "uniform") {
    return std::make_unique<UniformDelayModel>(config.min, config.max);
  }
  if (config.delay == "exp") {
    return std::make_unique<ExponentialDelayModel>(config.mean);
  }
  if (config.delay == "mmpp") {
    return std::make_unique<MmppDelayModel>(config.mean, config.mean2,
                                            config.p01, config.p10,
                                            config.seed);
  }
  if (config.delay == "partition") {
    const std::size_t boundary =
        config.boundary > 0 ? config.boundary : n / 2;
    return std::make_unique<PartitionDelayModel>(config.mean, config.penalty,
                                                 config.until, boundary);
  }
  throw std::invalid_argument("make_delay_model: unknown delay family '" +
                              config.delay + "'");
}

double star_round_latency(DelayModel& model, const NetConfig& config,
                          std::size_t n, std::size_t f, std::size_t quorum,
                          std::size_t round, const StarWire& wire,
                          StarDelivery* delivery) {
  const std::size_t honest = n - f;
  if (delivery != nullptr) {
    // Byzantine uploads rush and are never dropped by the model.
    delivery->uplink.assign(n, true);
    delivery->downlink.assign(honest, true);
  }
  // Transmission time of client i's upload (0 when no bandwidth or no wire
  // sizes are configured — the pre-wire-cost semantics).
  const auto uplink_transmission = [&](std::size_t i) {
    if (config.bw <= 0.0 || i >= wire.uplink_bytes.size()) return 0.0;
    return static_cast<double>(wire.uplink_bytes[i]) / config.bw;
  };
  // Uplink: honest clients sample their link to the (virtual) server id n;
  // Byzantine uploads rush (zero propagation) but still pay their
  // transmission time.  The drop draw precedes the latency draw on every
  // stream, matching the event engine's per-message order.
  std::vector<double> arrivals;
  arrivals.reserve(n);
  for (std::size_t i = honest; i < n; ++i) {
    arrivals.push_back(uplink_transmission(i));
  }
  for (std::size_t i = 0; i < honest; ++i) {
    Rng rng = message_stream(config.seed, i, n, round);
    if (config.drop > 0.0 && rng.uniform() < config.drop) {
      if (delivery != nullptr) delivery->uplink[i] = false;
      continue;
    }
    const double d = model.sample(i, n, round, rng);
    if (d < 0.0) {
      if (delivery != nullptr) delivery->uplink[i] = false;
      continue;
    }
    arrivals.push_back(d + uplink_transmission(i));
  }
  std::sort(arrivals.begin(), arrivals.end());
  const std::size_t need = std::min<std::size_t>(std::max<std::size_t>(
                                                     quorum, 1),
                                                 n);
  double up = 0.0;
  if (arrivals.size() >= need) {
    up = arrivals[need - 1];
    if (config.timeout > 0.0) up = std::min(up, config.timeout);
  } else if (config.timeout > 0.0) {
    up = config.timeout;  // stalled below quorum: wait out the full Delta
  } else if (!arrivals.empty()) {
    up = arrivals.back();  // no timeout: the last arrival opens the round
  }

  // Downlink: the round ends when the slowest honest client holds the new
  // model; dropped downlinks wait for the timeout (or are ignored without
  // one — the client re-syncs next round).
  const double down_transmission =
      config.bw > 0.0 && wire.downlink_bytes > 0
          ? static_cast<double>(wire.downlink_bytes) / config.bw
          : 0.0;
  double down = 0.0;
  for (std::size_t i = 0; i < honest; ++i) {
    Rng rng = message_stream(config.seed, n, i, round);
    if (config.drop > 0.0 && rng.uniform() < config.drop) {
      if (delivery != nullptr) delivery->downlink[i] = false;
      if (config.timeout > 0.0) down = std::max(down, config.timeout);
      continue;
    }
    const double d = model.sample(n, i, round, rng);
    if (d < 0.0) {
      if (delivery != nullptr) delivery->downlink[i] = false;
      if (config.timeout > 0.0) down = std::max(down, config.timeout);
      continue;
    }
    down = std::max(down, d + down_transmission);
  }
  if (config.timeout > 0.0) down = std::min(down, config.timeout);
  return up + down;
}

}  // namespace bcl
