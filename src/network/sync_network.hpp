#pragma once
// Synchronous round engine — now a thin adapter over the discrete-event
// core (network/event_network.hpp) with a zero-delay model and timeout 0:
// every delivery and timeout of a round lands on one simulated instant, the
// event engine drains simultaneous events before advancing anyone, and the
// lockstep semantics of Section 2.3 fall out bitwise — in every round each
// node reliably broadcasts one vector, the adversary fixes the Byzantine
// values (after seeing the honest ones) and its selective-delivery
// choices, and every honest node receives its inbox sorted by sender id.
// Honest receive callbacks run in parallel on a thread pool — they only
// touch their own node's state, mirroring the distributed-memory model of
// the MPI discipline.
//
// HonestProcess and NetworkStats live in event_network.hpp and are
// re-exported here for the existing call sites.

#include <cstddef>
#include <vector>

#include "network/adversary.hpp"
#include "network/event_network.hpp"
#include "network/message.hpp"

namespace bcl {

class ThreadPool;

/// The synchronous engine.  Node ids are [0, n); honest ids own a
/// HonestProcess, Byzantine ids are driven by the adversary.
class SyncNetwork {
 public:
  /// `processes[i]` must be non-null exactly for honest ids i.  The network
  /// does not take ownership of the adversary or pool.
  ///
  /// `min_inbox` is the delivery floor per honest receiver per round
  /// (normally n - t).  When it is attainable, the network honors the
  /// adversary's delays_honest() requests only while the receiver's inbox
  /// stays at or above the floor ("receive up to n messages").  The default
  /// (SIZE_MAX) never honors honest delays, i.e. full synchrony.
  SyncNetwork(std::vector<HonestProcess*> processes, Adversary& adversary,
              ThreadPool* pool = nullptr,
              std::size_t min_inbox = static_cast<std::size_t>(-1));

  std::size_t num_nodes() const { return engine_.num_nodes(); }

  /// Runs one synchronous round.
  void run_round() { engine_.run_round(); }

  /// Runs `rounds` consecutive rounds.
  void run(std::size_t rounds) { engine_.run(rounds); }

  std::size_t current_round() const { return engine_.current_round(); }
  const NetworkStats& stats() const { return engine_.stats(); }

 private:
  static EventNetworkConfig sync_config(ThreadPool* pool,
                                        std::size_t min_inbox);
  EventNetwork engine_;
};

}  // namespace bcl
