#pragma once
// Synchronous round engine.
//
// Executes the communication pattern of Section 2.3: in every round each
// node reliably broadcasts one vector, the adversary fixes the Byzantine
// values (after seeing the honest ones) and its selective-delivery choices,
// and every honest node then receives its inbox sorted by sender id.
// Honest receive callbacks run in parallel on a thread pool — they only
// touch their own node's state, mirroring the distributed-memory model of
// the MPI discipline.

#include <cstddef>
#include <vector>

#include "network/adversary.hpp"
#include "network/message.hpp"

namespace bcl {

class ThreadPool;

/// Behaviour of one honest protocol participant.
class HonestProcess {
 public:
  virtual ~HonestProcess() = default;

  /// The vector this node reliably broadcasts in `round`.
  virtual Vector outgoing(std::size_t round) const = 0;

  /// Delivers the round's inbox (sorted by sender id).  The process updates
  /// its own state only.
  virtual void receive(std::size_t round, const std::vector<Message>& inbox) = 0;
};

/// Per-run delivery statistics.
struct NetworkStats {
  std::size_t rounds = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_omitted = 0;  // Byzantine selective omissions
  std::size_t broadcasts_skipped = 0;  // crashed/silent Byzantine rounds
  std::size_t messages_delayed = 0;  // honored honest-message delays
};

/// The engine.  Node ids are [0, n); honest ids own a HonestProcess,
/// Byzantine ids are driven by the adversary.
class SyncNetwork {
 public:
  /// `processes[i]` must be non-null exactly for honest ids i.  The network
  /// does not take ownership of the adversary or pool.
  ///
  /// `min_inbox` is the delivery floor per honest receiver per round
  /// (normally n - t).  When it is attainable, the network honors the
  /// adversary's delays_honest() requests only while the receiver's inbox
  /// stays at or above the floor ("receive up to n messages").  The default
  /// (SIZE_MAX) never honors honest delays, i.e. full synchrony.
  SyncNetwork(std::vector<HonestProcess*> processes, Adversary& adversary,
              ThreadPool* pool = nullptr,
              std::size_t min_inbox = static_cast<std::size_t>(-1));

  std::size_t num_nodes() const { return processes_.size(); }

  /// Runs one synchronous round.
  void run_round();

  /// Runs `rounds` consecutive rounds.
  void run(std::size_t rounds);

  std::size_t current_round() const { return round_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  std::vector<HonestProcess*> processes_;
  Adversary& adversary_;
  ThreadPool* pool_;
  std::size_t min_inbox_;
  std::size_t round_ = 0;
  NetworkStats stats_;
};

}  // namespace bcl
