#include "network/sync_network.hpp"

namespace bcl {

EventNetworkConfig SyncNetwork::sync_config(ThreadPool* pool,
                                            std::size_t min_inbox) {
  EventNetworkConfig config;
  // Zero delays (no model), timeout 0: a round resolves at the instant it
  // starts, with the full inbox — lockstep synchrony.  The quorum is only
  // the honored-delay floor here, never an early-advance trigger, because
  // nothing arrives later than the round's own instant.
  config.quorum = min_inbox;
  config.timeout = 0.0;
  config.pool = pool;
  return config;
}

SyncNetwork::SyncNetwork(std::vector<HonestProcess*> processes,
                         Adversary& adversary, ThreadPool* pool,
                         std::size_t min_inbox)
    : engine_(std::move(processes), adversary, sync_config(pool, min_inbox)) {}

}  // namespace bcl
