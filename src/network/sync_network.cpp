#include "network/sync_network.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace bcl {

SyncNetwork::SyncNetwork(std::vector<HonestProcess*> processes,
                         Adversary& adversary, ThreadPool* pool,
                         std::size_t min_inbox)
    : processes_(std::move(processes)),
      adversary_(adversary),
      pool_(pool),
      min_inbox_(min_inbox) {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const bool byz = adversary_.is_byzantine(i);
    if (byz && processes_[i] != nullptr) {
      throw std::invalid_argument(
          "SyncNetwork: Byzantine id must not own an honest process");
    }
    if (!byz && processes_[i] == nullptr) {
      throw std::invalid_argument(
          "SyncNetwork: honest id requires a process");
    }
  }
}

void SyncNetwork::run_round() {
  const std::size_t n = processes_.size();

  // Phase 1: honest nodes fix their broadcast values.
  std::vector<std::optional<Vector>> outgoing(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (processes_[i] != nullptr) outgoing[i] = processes_[i]->outgoing(round_);
  }

  // Phase 2: the (omniscient) adversary fixes one value per Byzantine node.
  // Reliable broadcast is enforced structurally: this is the only value id
  // `i` can show anyone this round.
  std::vector<std::optional<Vector>> byzantine(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (processes_[i] == nullptr) {
      byzantine[i] = adversary_.byzantine_value(i, round_, outgoing);
      if (!byzantine[i]) ++stats_.broadcasts_skipped;
    }
  }

  // Phase 3: build every honest inbox.  Honest-to-honest links are
  // reliable, but the adversary may request delays of honest messages
  // ("receive up to n messages"); requests are honored only while the
  // receiver's inbox stays at or above min_inbox_.  Byzantine senders may
  // selectively omit without any floor.
  std::vector<std::vector<Message>> inboxes(n);
  for (std::size_t receiver = 0; receiver < n; ++receiver) {
    if (processes_[receiver] == nullptr) continue;
    // Number of messages that would arrive with no honest delays.
    std::size_t candidates = 0;
    for (std::size_t sender = 0; sender < n; ++sender) {
      if (processes_[sender] != nullptr) {
        ++candidates;
      } else if (byzantine[sender] &&
                 adversary_.delivers(sender, receiver, round_)) {
        ++candidates;
      }
    }
    std::size_t droppable =
        (min_inbox_ != static_cast<std::size_t>(-1) &&
         candidates > min_inbox_)
            ? candidates - min_inbox_
            : 0;
    auto& inbox = inboxes[receiver];
    inbox.reserve(candidates);
    for (std::size_t sender = 0; sender < n; ++sender) {
      if (processes_[sender] != nullptr) {
        if (droppable > 0 &&
            adversary_.delays_honest(sender, receiver, round_)) {
          --droppable;
          ++stats_.messages_delayed;
          continue;
        }
        inbox.push_back(Message{sender, *outgoing[sender]});
        ++stats_.messages_delivered;
      } else if (byzantine[sender]) {
        if (adversary_.delivers(sender, receiver, round_)) {
          inbox.push_back(Message{sender, *byzantine[sender]});
          ++stats_.messages_delivered;
        } else {
          ++stats_.messages_omitted;
        }
      }
    }
  }

  // Phase 4: parallel delivery; each process mutates only its own state.
  auto deliver = [&](std::size_t i) {
    if (processes_[i] != nullptr) {
      processes_[i]->receive(round_, inboxes[i]);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, n, deliver);
  } else {
    for (std::size_t i = 0; i < n; ++i) deliver(i);
  }

  ++round_;
  ++stats_.rounds;
}

void SyncNetwork::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

}  // namespace bcl
