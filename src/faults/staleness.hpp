#pragma once
// Bounded-staleness round policy for the centralized trainer.
//
// stale= grammar: "none" (the default lockstep barrier) or
// "<tau>[,key=val,...]" — the server advances on a quorum of gradients no
// older than tau model versions.  A gradient computed against version v and
// arriving at version v' has staleness s = v' - v; s == 0 is fresh,
// 0 < s <= tau is accepted (down-weighted by decay^s), s > tau is rejected
// and accounted.  Keys:
//   decay   per-version weight multiplier in (0, 1]; 1 (default) keeps
//           stale gradients at full weight
//   quorum  fraction of *live* clients whose gradients must be accepted
//           before the server steps, in (0, 1]; 0 (default) uses the
//           Byzantine-safe n - t count clamped to the live membership
//
// Parsed eagerly by the scenario grammar; parse(to_string()) round-trips.

#include <cstddef>
#include <string>
#include <vector>

namespace bcl {

struct StaleConfig {
  std::size_t tau = 0;   ///< 0 = disabled (global round barrier).
  double decay = 1.0;    ///< weight multiplier per version of staleness.
  double quorum = 0.0;   ///< live-fraction quorum; 0 = use n - t.

  bool enabled() const { return tau > 0; }

  /// Parses "none" or "<tau>[,key=val,...]".  tau must be >= 1 (use "none"
  /// to disable); out-of-range decay/quorum and unknown keys are rejected
  /// with the valid keys listed.
  static StaleConfig parse(const std::string& text);

  /// Canonical form: "none", or "<tau>" with only non-default keys
  /// appended; parse(to_string()) round-trips exactly.
  std::string to_string() const;

  bool operator==(const StaleConfig& other) const = default;
};

/// Valid stale= parameter keys, for menus and rejection lists.
const std::vector<std::string>& stale_config_keys();

}  // namespace bcl
