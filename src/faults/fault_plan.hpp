#pragma once
// Deterministic fault injection: who is up, who is slow, in which round.
//
// A FaultConfig is parsed from the registries' "family:key=val,..." grammar
// (faults= in a ScenarioSpec, --faults on bcl_run) and expanded once into a
// FaultPlan: a precomputed per-(node, round) liveness/slowdown table.  The
// expansion draws every node's trajectory from its own fault_stream — a
// splitmix64-derived stream keyed only by (seed, node, round), never by
// thread schedule — and runs serially at construction, so the same config,
// seed, and horizon replay bitwise under any --jobs count.  Consumers
// (EventNetwork, the trainers) only issue const reads afterwards.
//
// Families:
//   none                                 no faults (the default; plans are
//                                        empty and every node is always up)
//   crash:at=R,frac=F                    a frac-F cohort crashes permanently
//                                        at round R (fail-stop)
//   crash-recover:mttf=M,mttr=R,frac=F,cap=C
//                                        a frac-F cohort alternates up/down
//                                        renewal phases with geometric
//                                        durations (means M and R rounds)
//   straggler:factor=K,frac=F            a frac-F cohort stays up but sends
//                                        K-times slower (delivery latency
//                                        multiplier)
//   churn:leave=P,join=Q,burst=B,p01=,p10=,cap=C
//                                        MMPP-modulated join/leave: a hidden
//                                        calm/bursty chain per node (switch
//                                        probabilities p01/p10, the delay
//                                        model's modulation) multiplies the
//                                        per-round leave probability P by B
//                                        in the bursty state; down nodes
//                                        rejoin with probability Q per round
//
// cap bounds the fraction of nodes simultaneously down (transitions that
// would exceed it are suppressed, in node-id order, during expansion) so
// "at most 30% down at once" is a plan invariant, not a hope.  At least one
// node is always kept alive regardless of cap.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace bcl {

/// Parsed faults= specification.  Fields not used by the family keep their
/// defaults so the defaulted equality operator compares cleanly.
struct FaultConfig {
  std::string family = "none";

  std::size_t at = 1;    ///< crash: the round the cohort goes down.
  double frac = 1.0;     ///< cohort fraction (family-specific default).
  double mttf = 10.0;    ///< crash-recover: mean rounds up before failing.
  double mttr = 3.0;     ///< crash-recover: mean rounds down before recovery.
  double factor = 4.0;   ///< straggler: latency multiplier (>= 1).
  double leave = 0.05;   ///< churn: per-round leave probability (calm state).
  double join = 0.3;     ///< churn: per-round rejoin probability when down.
  double burst = 4.0;    ///< churn: leave multiplier in the bursty state.
  double p01 = 0.1;      ///< churn: calm -> bursty switch probability.
  double p10 = 0.5;      ///< churn: bursty -> calm switch probability.
  double cap = 0.5;      ///< max fraction simultaneously down.

  /// True when the config injects any fault at all.
  bool any() const { return family != "none"; }

  /// Parses "family:key=val,..." with eager validation: unknown families
  /// and parameters fail with the registry-style "valid: ..." menus, and
  /// rates/fractions are range-checked (zero and negative rates rejected).
  static FaultConfig parse(const std::string& text);

  /// Canonical spec string; parse(to_string()) round-trips exactly.  Emits
  /// every parameter of the family so the canonical form is self-contained.
  std::string to_string() const;

  bool operator==(const FaultConfig& other) const = default;
};

/// Family -> parameter-name rows, in menu order; drives both validation
/// and `bcl_run --list` (mirrors attack_parameter_table()).
const std::vector<std::pair<std::string, std::vector<std::string>>>&
fault_parameter_table();

/// All valid family names, for rejection menus.
std::vector<std::string> all_fault_names();

/// The per-(node, round) fault decision stream.  Chained through splitmix64
/// with a constant distinct from message_stream's and codec_stream's, so
/// fault schedules, delivery delays, and codec draws keyed from the same
/// root seed never collide (tested in tests/faults_test.cpp).
Rng fault_stream(std::uint64_t seed, std::size_t node, std::size_t round);

/// The expanded schedule: liveness, slowdown, and membership-change counts
/// per round, immutable after construction.
class FaultPlan {
 public:
  /// Per-round membership transition counters, split by direction:
  /// crashes are down-transitions; up-transitions count as recoveries
  /// under crash-recover and as joins under churn.
  struct RoundTransitions {
    std::size_t crashes = 0;
    std::size_t recoveries = 0;
    std::size_t joins = 0;
  };

  /// Empty plan: no faults, zero nodes.  alive() is true for everything.
  FaultPlan() = default;

  /// Expands `config` for `n` nodes over `horizon` rounds.
  FaultPlan(const FaultConfig& config, std::size_t n, std::size_t horizon,
            std::uint64_t seed);

  bool any() const { return config_.any(); }
  const FaultConfig& config() const { return config_; }
  std::size_t nodes() const { return n_; }
  std::size_t horizon() const { return horizon_; }

  /// Is `node` up during `round`?  Rounds beyond the horizon freeze at the
  /// final planned round (membership stops changing after the plan ends).
  bool alive(std::size_t node, std::size_t round) const {
    if (!any() || horizon_ == 0) return true;
    return alive_[node * horizon_ + clamp_round(round)] != 0;
  }

  /// Latency multiplier for messages sent by `node` (1.0 unless the node
  /// is a straggler).
  double slowdown(std::size_t node) const {
    return slowdown_.empty() ? 1.0 : slowdown_[node];
  }

  /// Number of live nodes in `round` (n when the plan is empty).
  std::size_t live_count(std::size_t round) const {
    if (!any() || horizon_ == 0) return n_;
    return live_count_[clamp_round(round)];
  }

  /// Membership transitions that took effect entering `round`.
  const RoundTransitions& transitions(std::size_t round) const {
    static const RoundTransitions kNone;
    if (!any() || horizon_ == 0) return kNone;
    return transitions_[clamp_round(round)];
  }

  /// Largest number of simultaneously-down nodes over the horizon (the
  /// cap invariant: max_down() <= max(1, floor(cap * n)) and < n).
  std::size_t max_down() const { return max_down_; }

  /// Number of membership epochs: maximal spans of rounds with identical
  /// live sets.  1 for a fault-free plan.
  std::size_t epochs() const { return epochs_; }

 private:
  std::size_t clamp_round(std::size_t round) const {
    return round < horizon_ ? round : horizon_ - 1;
  }

  FaultConfig config_;
  std::size_t n_ = 0;
  std::size_t horizon_ = 0;
  std::vector<std::uint8_t> alive_;       // n x horizon, row-major by node.
  std::vector<double> slowdown_;          // per node; empty = all 1.0.
  std::vector<std::size_t> live_count_;   // per round.
  std::vector<RoundTransitions> transitions_;
  std::size_t max_down_ = 0;
  std::size_t epochs_ = 1;
};

}  // namespace bcl
