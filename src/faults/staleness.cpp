#include "faults/staleness.hpp"

#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {
namespace {
const char* kContext = "StaleConfig::parse";
}

const std::vector<std::string>& stale_config_keys() {
  static const std::vector<std::string> keys = {"decay", "quorum"};
  return keys;
}

StaleConfig StaleConfig::parse(const std::string& text) {
  StaleConfig out;
  if (text == "none") return out;

  // Leading token is the staleness bound itself; the optional tail is a
  // comma-separated key=val list sharing the registries' strict parsing.
  const std::size_t comma = text.find(',');
  const std::string head = text.substr(0, comma);
  out.tau = parse_strict_u64(head, std::string(kContext) + ": tau");
  if (out.tau == 0) {
    throw std::invalid_argument(std::string(kContext) +
                                ": tau must be >= 1 (use 'none' to disable)");
  }
  if (comma != std::string::npos) {
    const SpecParams params =
        split_param_list(text.substr(comma + 1), kContext);
    reject_unknown_spec_params("stale", params, stale_config_keys(), kContext);
    out.decay = spec_param_double(params, "decay", out.decay, kContext);
    out.quorum = spec_param_double(params, "quorum", out.quorum, kContext);
    check_positive_fraction(out.decay, "decay", kContext);
    if (out.quorum != 0.0) {
      check_positive_fraction(out.quorum, "quorum", kContext);
    }
  }
  return out;
}

std::string StaleConfig::to_string() const {
  if (!enabled()) return "none";
  std::string out = std::to_string(tau);
  if (decay != 1.0) out += ",decay=" + format_double_g(decay);
  if (quorum != 0.0) out += ",quorum=" + format_double_g(quorum);
  return out;
}

}  // namespace bcl
