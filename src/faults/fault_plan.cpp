#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {
namespace {

// Distinct from message_stream's 0xD6E8FEB86659FD93 and codec_stream's
// 0xC0DEC0DEC0DEC0DE salts: the three stream families derived from one
// root seed must never alias (see RngStreamIsolation in faults_test).
constexpr std::uint64_t kFaultStreamSalt = 0xFA177AB1E5EED001ull;

const char* kContext = "FaultConfig::parse";

double require_at_least_one(double value, const std::string& key) {
  if (!(value >= 1.0)) {
    throw std::invalid_argument(std::string(kContext) + ": '" + key +
                                "' must be >= 1, got " +
                                format_double_g(value));
  }
  return value;
}

}  // namespace

const std::vector<std::pair<std::string, std::vector<std::string>>>&
fault_parameter_table() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      table = {
          {"none", {}},
          {"crash", {"at", "frac"}},
          {"crash-recover", {"mttf", "mttr", "frac", "cap"}},
          {"straggler", {"factor", "frac"}},
          {"churn", {"leave", "join", "burst", "p01", "p10", "cap"}},
      };
  return table;
}

std::vector<std::string> all_fault_names() {
  std::vector<std::string> names;
  for (const auto& [family, params] : fault_parameter_table()) {
    (void)params;
    names.push_back(family);
  }
  return names;
}

Rng fault_stream(std::uint64_t seed, std::size_t node, std::size_t round) {
  std::uint64_t state = splitmix64(seed ^ kFaultStreamSalt);
  state = splitmix64(state ^ static_cast<std::uint64_t>(node));
  state = splitmix64(state ^ static_cast<std::uint64_t>(round));
  return Rng(state);
}

FaultConfig FaultConfig::parse(const std::string& text) {
  std::string family;
  SpecParams params;
  split_spec_grammar(text, kContext, family, params);

  FaultConfig out;
  out.family = family;

  const auto& table = fault_parameter_table();
  const auto row = std::find_if(
      table.begin(), table.end(),
      [&](const auto& entry) { return entry.first == family; });
  if (row == table.end()) {
    throw std::invalid_argument(std::string(kContext) +
                                ": unknown fault family '" + family +
                                "' (valid: " + join_names(all_fault_names()) +
                                ")");
  }
  reject_unknown_spec_params(family, params, row->second, kContext);

  if (family == "none") return out;

  if (family == "crash") {
    out.frac = 0.3;
    out.at = spec_param_u64(params, "at", out.at, kContext);
    out.frac = spec_param_double(params, "frac", out.frac, kContext);
    check_positive_fraction(out.frac, "frac", kContext);
  } else if (family == "crash-recover") {
    out.mttf = spec_param_double(params, "mttf", out.mttf, kContext);
    out.mttr = spec_param_double(params, "mttr", out.mttr, kContext);
    out.frac = spec_param_double(params, "frac", out.frac, kContext);
    out.cap = spec_param_double(params, "cap", out.cap, kContext);
    check_positive(out.mttf, "mttf", kContext);
    check_positive(out.mttr, "mttr", kContext);
    check_positive_fraction(out.frac, "frac", kContext);
    check_positive_fraction(out.cap, "cap", kContext);
  } else if (family == "straggler") {
    out.frac = 0.2;
    out.factor = spec_param_double(params, "factor", out.factor, kContext);
    out.frac = spec_param_double(params, "frac", out.frac, kContext);
    require_at_least_one(out.factor, "factor");
    check_positive_fraction(out.frac, "frac", kContext);
  } else if (family == "churn") {
    out.leave = spec_param_double(params, "leave", out.leave, kContext);
    out.join = spec_param_double(params, "join", out.join, kContext);
    out.burst = spec_param_double(params, "burst", out.burst, kContext);
    out.p01 = spec_param_double(params, "p01", out.p01, kContext);
    out.p10 = spec_param_double(params, "p10", out.p10, kContext);
    out.cap = spec_param_double(params, "cap", out.cap, kContext);
    check_positive_fraction(out.leave, "leave", kContext);
    check_positive_fraction(out.join, "join", kContext);
    require_at_least_one(out.burst, "burst");
    check_probability(out.p01, "p01", kContext);
    check_probability(out.p10, "p10", kContext);
    check_positive_fraction(out.cap, "cap", kContext);
  }
  return out;
}

std::string FaultConfig::to_string() const {
  if (family == "none") return "none";
  if (family == "crash") {
    return "crash:at=" + std::to_string(at) +
           ",frac=" + format_double_g(frac);
  }
  if (family == "crash-recover") {
    return "crash-recover:mttf=" + format_double_g(mttf) +
           ",mttr=" + format_double_g(mttr) + ",frac=" + format_double_g(frac) +
           ",cap=" + format_double_g(cap);
  }
  if (family == "straggler") {
    return "straggler:factor=" + format_double_g(factor) +
           ",frac=" + format_double_g(frac);
  }
  return "churn:leave=" + format_double_g(leave) +
         ",join=" + format_double_g(join) + ",burst=" + format_double_g(burst) +
         ",p01=" + format_double_g(p01) + ",p10=" + format_double_g(p10) +
         ",cap=" + format_double_g(cap);
}

FaultPlan::FaultPlan(const FaultConfig& config, std::size_t n,
                     std::size_t horizon, std::uint64_t seed)
    : config_(config), n_(n), horizon_(horizon) {
  if (!config.any() || n == 0 || horizon == 0) {
    horizon_ = 0;  // Degenerate plans answer alive()==true via the guard.
    return;
  }

  alive_.assign(n * horizon, 1);
  slowdown_.assign(n, 1.0);
  live_count_.assign(horizon, n);
  transitions_.assign(horizon, RoundTransitions{});

  // Cohort: the first ceil(frac*n) entries of one seeded permutation, so
  // the victim set is exact-size and independent of the per-round draws.
  Rng cohort_rng(splitmix64(seed ^ kFaultStreamSalt));
  const std::vector<std::size_t> order = cohort_rng.permutation(n);
  const auto cohort_size = [&](double frac, std::size_t limit) {
    auto k = static_cast<std::size_t>(std::ceil(frac * static_cast<double>(n)));
    return std::min(std::max<std::size_t>(k, 1), limit);
  };

  // Simultaneous-down budget for the dynamic families; one node always
  // survives regardless of cap.
  std::size_t down_budget =
      static_cast<std::size_t>(config.cap * static_cast<double>(n));
  down_budget = std::min(down_budget, n - 1);

  if (config.family == "crash") {
    const std::size_t k = cohort_size(config.frac, n - 1);
    for (std::size_t v = 0; v < k; ++v) {
      const std::size_t node = order[v];
      for (std::size_t r = config.at; r < horizon; ++r) {
        alive_[node * horizon + r] = 0;
      }
    }
    if (config.at < horizon) transitions_[config.at].crashes = k;
  } else if (config.family == "straggler") {
    const std::size_t k = cohort_size(config.frac, n);
    for (std::size_t v = 0; v < k; ++v) slowdown_[order[v]] = config.factor;
  } else if (config.family == "crash-recover" || config.family == "churn") {
    const bool churn = config.family == "churn";
    std::vector<std::uint8_t> in_cohort(n, churn ? 1 : 0);
    if (!churn) {
      const std::size_t k = cohort_size(config.frac, n);
      for (std::size_t v = 0; v < k; ++v) in_cohort[order[v]] = 1;
    }
    std::vector<std::uint8_t> congested(n, 0);  // churn's hidden MMPP state.
    std::vector<std::uint8_t> up(n, 1);         // everyone starts round 0 up.
    const double fail = churn ? 0.0 : 1.0 / config.mttf;
    const double recover = churn ? config.join : 1.0 / config.mttr;
    std::size_t down_count = 0;

    for (std::size_t r = 1; r < horizon; ++r) {
      // Pure per-(node, round) draws: one chain draw (churn only), then one
      // transition draw — identical regardless of what other nodes did.
      std::vector<std::uint8_t> wants_down(n, 0), wants_up(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (!in_cohort[i]) continue;
        Rng draw = fault_stream(seed, i, r);
        double leave_prob = fail;
        if (churn) {
          const double flip = draw.uniform();
          if (congested[i] ? flip < config.p10 : flip < config.p01) {
            congested[i] = static_cast<std::uint8_t>(!congested[i]);
          }
          leave_prob =
              std::min(1.0, config.leave * (congested[i] ? config.burst : 1.0));
        }
        const double u = draw.uniform();
        if (up[i]) {
          wants_down[i] = u < leave_prob;
        } else {
          wants_up[i] = u < recover;
        }
      }
      // Recoveries/joins first (they free budget), then crashes in node-id
      // order until the simultaneous-down cap is reached; suppressed
      // crashes simply stay up this round.
      for (std::size_t i = 0; i < n; ++i) {
        if (!wants_up[i]) continue;
        up[i] = 1;
        --down_count;
        if (churn) {
          ++transitions_[r].joins;
        } else {
          ++transitions_[r].recoveries;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!wants_down[i] || down_count >= down_budget) continue;
        up[i] = 0;
        ++down_count;
        ++transitions_[r].crashes;
      }
      for (std::size_t i = 0; i < n; ++i) {
        alive_[i * horizon + r] = up[i];
      }
    }
  }

  // Derived per-round aggregates: live counts, the cap audit, epoch count.
  for (std::size_t r = 0; r < horizon; ++r) {
    std::size_t live = 0;
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      live += alive_[i * horizon + r];
      changed = changed ||
                (r > 0 && alive_[i * horizon + r] != alive_[i * horizon + r - 1]);
    }
    live_count_[r] = live;
    max_down_ = std::max(max_down_, n - live);
    if (changed) ++epochs_;
  }
}

}  // namespace bcl
