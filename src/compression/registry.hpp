#pragma once
// Name-based factory for gradient codecs, mirroring the aggregation-rule
// and attack registries: scenario specs (`comp=`), bcl_run sweeps
// (`--comps`) and the bench harnesses select codecs with the same string
// grammar that make_rule / make_attack use.
//
// Name grammar:
//
//   <family>[:<key>=<value>[,<key>=<value>]...]
//
// Families and their accepted parameters:
//
//   identity             dense passthrough (the default; wire = 8d bytes)
//   topk[:frac=F]        keep the ceil(F * d) largest-|v| coords (default
//                        F=0.01)
//   randk[:frac=F]       keep ceil(F * d) uniformly sampled coords,
//                        deterministic per (sender, round) (default 0.01)
//   qsgd[:levels=L]      stochastic quantization to L levels (default 8)
//
// Unknown families and unknown parameter keys both throw
// std::invalid_argument whose message lists the valid alternatives, so a
// typo in a sweep spec fails loudly with the menu attached.

#include <string>
#include <utility>
#include <vector>

#include "compression/codec.hpp"

namespace bcl {

/// Creates a codec from a grammar string (see file comment).  The returned
/// object is immutable and safe to share across all clients of a run.
/// Throws std::invalid_argument on unknown family names (message lists all
/// families) or unknown parameter keys (message lists the family's
/// parameters).
CodecPtr make_codec(const std::string& name);

/// All family names accepted by make_codec, in registry order.  Every
/// entry constructs without parameters: make_codec(n) succeeds for each n
/// returned.
std::vector<std::string> all_codec_names();

/// family -> accepted parameter keys, in registry order (empty vector =
/// takes no parameters).  This is the same table make_codec validates
/// against, so menus rendered from it (bcl_run --list) cannot go stale.
const std::vector<std::pair<std::string, std::vector<std::string>>>&
codec_parameter_table();

}  // namespace bcl
