#pragma once
// Gradient compression codecs with wire-cost accounting.
//
// Every message in the simulator used to carry a full dense Vector with no
// notion of wire size, so communication cost — the axis that dominates real
// collaborative-learning deployments — was invisible.  A Codec maps a dense
// gradient to a CompressedGradient that knows its wire_bytes(); the network
// layers price delivery as propagation + wire_bytes / bandwidth (NetConfig
// `bw=`), and NetworkStats totals bytes sent/delivered, so compression now
// measurably changes simulated time, not just payload values.
//
// Codecs are stateless and shareable: the stochastic families (rand-k
// index selection, QSGD's stochastic rounding) draw from a stream keyed by
// (seed, sender, round) — the same splittable-PRNG discipline as the
// network's message_stream — so a given message compresses identically no
// matter which thread or in which order the encode happens.
//
// Families (the `comp=` scenario dimension; grammar in registry.hpp):
//
//   identity         dense passthrough (wire = d * sizeof(double))
//   topk:frac=F      keep the ceil(F * d) largest-|v| coordinates
//   randk:frac=F     keep ceil(F * d) uniformly sampled coordinates
//   qsgd:levels=L    stochastic uniform quantization to L levels per sign
//                    (norm + ceil(d * bits(L)) / 8 wire bytes; payload
//                    carries the dequantized values)
//
// Sparsification alone stalls training (the dropped mass never reaches the
// server); ErrorFeedback keeps a per-client residual of everything a codec
// discarded and folds it into the next round's gradient, the standard
// EF-SGD construction under which top-k/rand-k training still converges.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/sparse_rows.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace bcl {

/// Dense wire size of a d-dimensional gradient: the baseline every
/// compression ratio is quoted against.
inline std::size_t dense_wire_bytes(std::size_t dim) {
  return dim * sizeof(double);
}

/// One encoded gradient.  Two layouts share the struct:
///  - dense: `indices` empty, `values` holds all `dim` coordinates;
///  - sparse: `indices`/`values` hold the kept coordinates (indices
///    strictly increasing), everything else decodes to zero.
/// `wire_override` models codecs whose on-the-wire form is smaller than
/// the payload this struct materializes (QSGD ships quantization levels,
/// not doubles): non-zero, it replaces the layout-derived wire size.
struct CompressedGradient {
  std::size_t dim = 0;
  std::vector<std::uint32_t> indices;
  std::vector<double> values;
  std::size_t wire_override = 0;

  bool sparse() const { return values.size() != dim; }
  std::size_t nnz() const { return values.size(); }

  /// Modeled size on the wire: the override when set, else
  /// values + 4-byte indices for sparse layouts and plain doubles for
  /// dense ones (payload only; framing headers are not modeled).
  std::size_t wire_bytes() const {
    if (wire_override > 0) return wire_override;
    if (!sparse()) return dense_wire_bytes(dim);
    return nnz() * (sizeof(double) + sizeof(std::uint32_t));
  }

  /// Writes the decoded gradient into out[0..dim); sparse layouts zero the
  /// untouched coordinates first.
  void decode_into(double* out) const;

  /// Decoded gradient as a standalone Vector.
  Vector decode() const;

  /// Appends this gradient to a CSR batch: the sparse layout verbatim, or
  /// a nonzero gather of a dense one.  Dimension-checked by the batch.
  void append_row_to(SparseRows& rows) const;
};

/// Deterministic per-message stream for the stochastic codecs, keyed like
/// the network's message_stream so encode order never matters.
Rng codec_stream(std::uint64_t seed, std::size_t sender, std::size_t round);

/// One compression scheme (see file comment).  Instances are immutable and
/// safe to share across clients, rounds and threads.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Canonical spec string ("topk:frac=0.01"); parseable by make_codec.
  virtual std::string name() const = 0;

  /// True for the dense passthrough: callers may skip the encode/decode
  /// arithmetic entirely (the trainers use this to keep uncompressed runs
  /// bitwise identical to the pre-codec code path).
  virtual bool identity() const { return false; }

  /// Encodes v[0..dim).  `seed`/`sender`/`round` key the stochastic
  /// families' randomness; deterministic codecs ignore them.
  virtual CompressedGradient encode(const double* v, std::size_t dim,
                                    std::uint64_t seed, std::size_t sender,
                                    std::size_t round) const = 0;

  /// Convenience overload.
  CompressedGradient encode(const Vector& v, std::uint64_t seed,
                            std::size_t sender, std::size_t round) const {
    return encode(v.data(), v.size(), seed, sender, round);
  }
};

using CodecPtr = std::shared_ptr<const Codec>;

/// Dense passthrough; decode(encode(v)) is bitwise v.
class IdentityCodec final : public Codec {
 public:
  using Codec::encode;
  std::string name() const override { return "identity"; }
  bool identity() const override { return true; }
  CompressedGradient encode(const double* v, std::size_t dim, std::uint64_t,
                            std::size_t, std::size_t) const override;
};

/// Keeps the k = max(1, ceil(frac * d)) coordinates of largest magnitude
/// (ties broken toward the lower index, so selection is deterministic).
/// Kept coordinates decode bitwise, so with error feedback the residual is
/// exactly the dropped mass.
class TopKCodec final : public Codec {
 public:
  using Codec::encode;
  explicit TopKCodec(double frac);
  std::string name() const override;
  CompressedGradient encode(const double* v, std::size_t dim, std::uint64_t,
                            std::size_t, std::size_t) const override;
  std::size_t k_for(std::size_t dim) const;

 private:
  double frac_;
};

/// Keeps k = max(1, ceil(frac * d)) uniformly sampled coordinates; the
/// sample is a pure function of (seed, sender, round) via codec_stream, so
/// a message's support never depends on encode order.  Unscaled (biased on
/// its own); pair with error feedback, which restores the dropped mass.
class RandKCodec final : public Codec {
 public:
  using Codec::encode;
  explicit RandKCodec(double frac);
  std::string name() const override;
  CompressedGradient encode(const double* v, std::size_t dim,
                            std::uint64_t seed, std::size_t sender,
                            std::size_t round) const override;
  std::size_t k_for(std::size_t dim) const;

 private:
  double frac_;
};

/// QSGD stochastic uniform quantization (Alistarh et al.): each coordinate
/// is rounded to one of `levels` buckets of |v_i| / ||v||_2 with
/// probability preserving the mean, then shipped as (norm, sign, level).
/// The payload materializes the dequantized doubles; wire_bytes models the
/// packed form: 8 bytes of norm + ceil(d * bits) / 8 where
/// bits = ceil(log2(2 * levels + 1)) covers sign and level.
class QsgdCodec final : public Codec {
 public:
  using Codec::encode;
  explicit QsgdCodec(std::size_t levels);
  std::string name() const override;
  CompressedGradient encode(const double* v, std::size_t dim,
                            std::uint64_t seed, std::size_t sender,
                            std::size_t round) const override;
  std::size_t bits_per_coordinate() const;

 private:
  std::size_t levels_;
};

/// Per-client error-feedback residuals (EF-SGD): compress() folds the
/// client's accumulated residual into the incoming gradient, encodes the
/// sum, and keeps what the codec dropped for the next round.  With the
/// identity codec the residual arithmetic is skipped entirely, so the
/// encode is a bitwise passthrough.  Residual buffers are lazily sized on
/// first use; one instance serves all rounds of one trainer run (not
/// thread-safe across clients — the trainers drive it from the round loop).
class ErrorFeedback {
 public:
  explicit ErrorFeedback(std::size_t clients);

  /// EF-compresses grad[0..dim) for `client` at `round`.
  CompressedGradient compress(const Codec& codec, std::uint64_t seed,
                              std::size_t client, std::size_t round,
                              const double* grad, std::size_t dim);

  /// The client's current residual (empty before its first compress).
  const Vector& residual(std::size_t client) const {
    return residuals_[client];
  }

 private:
  std::vector<Vector> residuals_;
  Vector buffer_;  // grad + residual staging, reused across calls
};

}  // namespace bcl
