#include "compression/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {

namespace {

std::size_t k_from_frac(double frac, std::size_t dim) {
  if (dim == 0) return 0;
  const std::size_t k =
      static_cast<std::size_t>(std::ceil(frac * static_cast<double>(dim)));
  return std::min(dim, std::max<std::size_t>(1, k));
}

void check_frac(double frac, const char* family) {
  if (!(frac > 0.0) || frac > 1.0) {
    throw std::invalid_argument(std::string(family) +
                                ": frac must be in (0, 1], got " +
                                format_double_g(frac));
  }
}

}  // namespace

// --- CompressedGradient ----------------------------------------------------

void CompressedGradient::decode_into(double* out) const {
  if (!sparse()) {
    std::memcpy(out, values.data(), dim * sizeof(double));
    return;
  }
  std::fill(out, out + dim, 0.0);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[indices[i]] = values[i];
  }
}

Vector CompressedGradient::decode() const {
  Vector out(dim, 0.0);
  decode_into(out.data());
  return out;
}

void CompressedGradient::append_row_to(SparseRows& rows) const {
  if (!sparse()) {
    rows.push_dense_row(values.data(), dim);
    return;
  }
  rows.push_row(indices.data(), values.data(), nnz());
}

Rng codec_stream(std::uint64_t seed, std::size_t sender, std::size_t round) {
  std::uint64_t state = splitmix64(seed ^ 0xC0DEC0DEC0DEC0DEull);
  state = splitmix64(state ^ static_cast<std::uint64_t>(sender));
  state = splitmix64(state ^ static_cast<std::uint64_t>(round));
  return Rng(state);
}

// --- identity --------------------------------------------------------------

CompressedGradient IdentityCodec::encode(const double* v, std::size_t dim,
                                         std::uint64_t, std::size_t,
                                         std::size_t) const {
  CompressedGradient out;
  out.dim = dim;
  out.values.assign(v, v + dim);
  return out;
}

// --- top-k -----------------------------------------------------------------

TopKCodec::TopKCodec(double frac) : frac_(frac) {
  check_frac(frac, "TopKCodec");
}

std::string TopKCodec::name() const {
  return "topk:frac=" + format_double_g(frac_);
}

std::size_t TopKCodec::k_for(std::size_t dim) const {
  return k_from_frac(frac_, dim);
}

CompressedGradient TopKCodec::encode(const double* v, std::size_t dim,
                                     std::uint64_t, std::size_t,
                                     std::size_t) const {
  if (dim == 0) {
    CompressedGradient empty;
    return empty;
  }
  const std::size_t k = k_for(dim);
  std::vector<std::uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0u);
  // Largest |v_i| first, ties toward the lower index: the selection is a
  // pure function of the values, independent of any partial-sort internals.
  const auto larger = [v](std::uint32_t a, std::uint32_t b) {
    const double fa = std::fabs(v[a]);
    const double fb = std::fabs(v[b]);
    if (fa != fb) return fa > fb;
    return a < b;
  };
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   larger);
  order.resize(k);
  std::sort(order.begin(), order.end());

  CompressedGradient out;
  out.dim = dim;
  out.indices = std::move(order);
  out.values.reserve(k);
  for (const std::uint32_t i : out.indices) out.values.push_back(v[i]);
  return out;
}

// --- rand-k ----------------------------------------------------------------

RandKCodec::RandKCodec(double frac) : frac_(frac) {
  check_frac(frac, "RandKCodec");
}

std::string RandKCodec::name() const {
  return "randk:frac=" + format_double_g(frac_);
}

std::size_t RandKCodec::k_for(std::size_t dim) const {
  return k_from_frac(frac_, dim);
}

CompressedGradient RandKCodec::encode(const double* v, std::size_t dim,
                                      std::uint64_t seed, std::size_t sender,
                                      std::size_t round) const {
  const std::size_t k = k_for(dim);
  // Partial Fisher-Yates over the full index range: the first k entries
  // are a uniform sample without replacement, deterministic per
  // (seed, sender, round).
  Rng rng = codec_stream(seed, sender, round);
  std::vector<std::uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_u64(dim - i));
    std::swap(order[i], order[j]);
  }
  order.resize(k);
  std::sort(order.begin(), order.end());

  CompressedGradient out;
  out.dim = dim;
  out.indices = std::move(order);
  out.values.reserve(k);
  for (const std::uint32_t i : out.indices) out.values.push_back(v[i]);
  return out;
}

// --- QSGD ------------------------------------------------------------------

QsgdCodec::QsgdCodec(std::size_t levels) : levels_(levels) {
  if (levels == 0) {
    throw std::invalid_argument("QsgdCodec: levels must be >= 1");
  }
}

std::string QsgdCodec::name() const {
  return "qsgd:levels=" + std::to_string(levels_);
}

std::size_t QsgdCodec::bits_per_coordinate() const {
  // Sign and level in one symbol: 2 * levels + 1 possible values.
  std::size_t symbols = 2 * levels_ + 1;
  std::size_t bits = 0;
  while ((1ull << bits) < symbols) ++bits;
  return bits;
}

CompressedGradient QsgdCodec::encode(const double* v, std::size_t dim,
                                     std::uint64_t seed, std::size_t sender,
                                     std::size_t round) const {
  CompressedGradient out;
  out.dim = dim;
  out.values.resize(dim);
  out.wire_override =
      sizeof(double) + (dim * bits_per_coordinate() + 7) / 8;

  double norm2 = 0.0;
  for (std::size_t i = 0; i < dim; ++i) norm2 += v[i] * v[i];
  const double norm = std::sqrt(norm2);
  if (norm == 0.0) {
    std::fill(out.values.begin(), out.values.end(), 0.0);
    return out;
  }

  Rng rng = codec_stream(seed, sender, round);
  const double s = static_cast<double>(levels_);
  for (std::size_t i = 0; i < dim; ++i) {
    // Stochastic rounding of |v_i| / norm onto the level grid {0..s}/s:
    // E[level/s] = |v_i| / norm, so the quantizer is unbiased.
    const double scaled = std::fabs(v[i]) / norm * s;
    double level = std::floor(scaled);
    if (rng.uniform() < scaled - level) level += 1.0;
    const double q = norm * level / s;
    out.values[i] = v[i] < 0.0 ? -q : q;
  }
  return out;
}

// --- error feedback --------------------------------------------------------

ErrorFeedback::ErrorFeedback(std::size_t clients) : residuals_(clients) {}

CompressedGradient ErrorFeedback::compress(const Codec& codec,
                                           std::uint64_t seed,
                                           std::size_t client,
                                           std::size_t round,
                                           const double* grad,
                                           std::size_t dim) {
  if (client >= residuals_.size()) {
    throw std::invalid_argument("ErrorFeedback: client id out of range");
  }
  if (codec.identity()) {
    // Bitwise passthrough: no residual arithmetic, so uncompressed runs
    // match the pre-codec code path exactly.
    return codec.encode(grad, dim, seed, client, round);
  }
  Vector& residual = residuals_[client];
  if (residual.empty()) residual.assign(dim, 0.0);
  if (residual.size() != dim) {
    throw std::invalid_argument("ErrorFeedback: gradient dimension changed");
  }
  buffer_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) buffer_[i] = grad[i] + residual[i];

  CompressedGradient encoded =
      codec.encode(buffer_.data(), dim, seed, client, round);

  // residual = (grad + residual) - decode(encoded).  Sparse codecs keep
  // their selected coordinates bitwise, so the subtraction there is exactly
  // zero and the residual is exactly the dropped mass.
  residual = buffer_;
  if (encoded.sparse()) {
    for (std::size_t i = 0; i < encoded.indices.size(); ++i) {
      residual[encoded.indices[i]] -= encoded.values[i];
    }
  } else {
    for (std::size_t i = 0; i < dim; ++i) residual[i] -= encoded.values[i];
  }
  return encoded;
}

}  // namespace bcl
