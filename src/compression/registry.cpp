#include "compression/registry.hpp"

#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {

const std::vector<std::pair<std::string, std::vector<std::string>>>&
codec_parameter_table() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      table = {{"identity", {}},
               {"topk", {"frac"}},
               {"randk", {"frac"}},
               {"qsgd", {"levels"}}};
  return table;
}

CodecPtr make_codec(const std::string& name) {
  // The shared spec grammar (util/parse): "family:key=val,...", strict
  // parameter parsing, allowlist validation with the menu attached.
  static const std::string kContext = "make_codec";
  std::string family;
  SpecParams params;
  split_spec_grammar(name, kContext, family, params);

  // One lookup against the registry table covers both the unknown-family
  // error (with the full menu) and the family's parameter allowlist.
  const std::vector<std::string>* allowed = nullptr;
  for (const auto& [known, keys] : codec_parameter_table()) {
    if (known == family) {
      allowed = &keys;
      break;
    }
  }
  if (allowed == nullptr) {
    throw std::invalid_argument("make_codec: unknown codec '" + family +
                                "' (valid: " + join_names(all_codec_names()) +
                                ")");
  }
  reject_unknown_spec_params(family, params, *allowed, kContext);

  if (family == "identity") return std::make_shared<IdentityCodec>();
  if (family == "topk") {
    return std::make_shared<TopKCodec>(
        spec_param_double(params, "frac", 0.01, kContext));
  }
  if (family == "randk") {
    return std::make_shared<RandKCodec>(
        spec_param_double(params, "frac", 0.01, kContext));
  }
  if (family == "qsgd") {
    return std::make_shared<QsgdCodec>(static_cast<std::size_t>(
        spec_param_u64(params, "levels", 8, kContext)));
  }
  // A table row without a matching branch is a registry bug, not user
  // input: fail loudly instead of silently constructing the wrong codec.
  throw std::logic_error("make_codec: family '" + family +
                         "' is registered but has no constructor branch");
}

std::vector<std::string> all_codec_names() {
  std::vector<std::string> names;
  names.reserve(codec_parameter_table().size());
  for (const auto& [family, keys] : codec_parameter_table()) {
    (void)keys;
    names.push_back(family);
  }
  return names;
}

}  // namespace bcl
