#include "learning/decentralized.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "agreement/protocol.hpp"
#include "compression/codec.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"
#include "network/adversary.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

std::size_t agreement_subrounds(std::size_t iteration) {
  std::size_t rounds = 0;
  // ceil(log2(iteration + 2)): 1 sub-round at iteration 0, growing
  // logarithmically with the learning round as in El-Mhamdi et al.
  std::size_t value = iteration + 2;
  std::size_t power = 1;
  while (power < value) {
    power *= 2;
    ++rounds;
  }
  return std::max<std::size_t>(1, rounds);
}

DecentralizedTrainer::DecentralizedTrainer(TrainingConfig config,
                                           ModelFactory factory,
                                           const ml::Dataset* train,
                                           const ml::Dataset* test)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      train_(train),
      test_(test) {
  validate_config(config_);
  if (train_ == nullptr || test_ == nullptr) {
    throw std::invalid_argument("DecentralizedTrainer: null dataset");
  }
  if (config_.stale.enabled()) {
    throw std::invalid_argument(
        "DecentralizedTrainer: stale= bounded staleness applies to the "
        "centralized trainer only (there is no server version to be stale "
        "against); use topology=centralized or stale=none");
  }
}

TrainingResult DecentralizedTrainer::run() {
  const std::size_t n = config_.num_clients;
  const std::size_t f = config_.num_byzantine;
  const std::size_t honest_count = n - f;
  Rng root(config_.seed);

  Rng partition_rng = root.split(1);
  const auto shards =
      ml::partition_dataset(*train_, n, config_.heterogeneity, partition_rng);
  // Label-poisoning attacks corrupt the Byzantine shards at setup.
  ml::Dataset poisoned_train;
  const ml::Dataset* byz_train = poison_byzantine_shards(
      *config_.attack, *train_, shards, f, poisoned_train);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, i < honest_count ? train_ : byz_train, shards[i], factory_,
        config_.batch_size, root.split(100 + i)));
  }

  // Every client starts from the same initial model (created once at the
  // beginning, as in the paper); divergence comes from the data and faults.
  ml::Model init_model = factory_();
  Rng init_rng = root.split(2);
  init_model.initialize(init_rng);
  params_.assign(honest_count, init_model.parameters());

  AgreementConfig agreement;
  agreement.n = n;
  agreement.t = config_.resolved_t();
  agreement.round_function = std::make_shared<RuleRound>(config_.rule);
  agreement.pool = config_.pool;
  agreement.net = config_.net;
  agreement.metrics = config_.metrics;

  // Liveness schedule (faults= dimension).  Membership is frozen per
  // learning round: every agreement sub-round of round r runs against the
  // plan's round-r live set (AgreementConfig::fault_round), and the plan
  // advances between learning rounds.  An empty plan keeps agreement.faults
  // null and every path below bitwise-identical to the pre-fault trainer.
  const FaultPlan plan(config_.faults, n, config_.rounds, config_.seed);
  const bool faulty = config_.faults.any();
  if (faulty) agreement.faults = &plan;
  auto live = [&](std::size_t i, std::size_t round) {
    return !faulty || plan.alive(i, round);
  };

  std::vector<std::size_t> byzantine_ids;
  for (std::size_t i = n - f; i < n; ++i) byzantine_ids.push_back(i);

  Rng attack_rng = root.split(3);
  TrainingResult result;
  result.history.reserve(config_.rounds);

  // Gradient compression (the `comp=` dimension): honest gradients are
  // EF-compressed before they enter agreement, and every agreement
  // sub-round broadcast goes through the codec too (AgreementNode), so the
  // whole decentralized exchange is priced at compressed wire sizes.  A
  // null/identity codec keeps the pre-codec path bitwise.
  const Codec* codec =
      config_.codec != nullptr && !config_.codec->identity()
          ? config_.codec.get()
          : nullptr;
  ErrorFeedback error_feedback(honest_count);

  // One contiguous gradient batch per round (honest rows first); clients
  // write their rows in place, and the spread metric runs the Gram kernel
  // over the honest prefix without materializing per-client Vectors.
  const std::size_t dim = init_model.parameter_count();
  GradientBatch gradients(n, dim);
  std::vector<double> losses(n, 0.0);

  // The remaining per-round scratch, hoisted out of the loop: each buffer
  // is refilled in place every round, so the O(n * d) allocations behind
  // them happen once instead of config_.rounds times (assign/clear reuse
  // the capacity left by earlier rounds).  inputs' Byzantine tail is
  // written only here — the agreement engine substitutes the adversary's
  // values without reading it — so the zeros survive across rounds.
  std::vector<std::size_t> input_wire;
  VectorList honest_gradients(honest_count);
  VectorList live_view;
  std::vector<std::optional<Vector>> byz_values(n);
  VectorList inputs(n, zeros(dim));
  std::vector<double> accuracies(honest_count, 0.0);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    Stopwatch round_watch;
    BCL_TRACE_SPAN("round");
    if (faulty) agreement.fault_round = round;
    // Phase 1: local stochastic gradients at each honest client's own
    // parameters (parallel; disjoint rows and model replicas).  Down
    // clients compute nothing this round: their row is zeroed (the engine
    // suppresses their broadcast anyway) and their loss excluded below.
    auto compute = [&](std::size_t i) {
      if (!live(i, round)) {
        losses[i] = 0.0;
        std::fill(gradients.row(i), gradients.row(i) + dim, 0.0);
        return;
      }
      const Vector& at = i < honest_count ? params_[i] : params_[0];
      losses[i] = clients[i]->stochastic_gradient_into(at, gradients.row(i));
    };
    {
      BCL_TRACE_SPAN("grad.compute");
      if (config_.pool != nullptr) {
        config_.pool->parallel_for(0, n, compute);
      } else {
        for (std::size_t i = 0; i < n; ++i) compute(i);
      }
    }

    double honest_loss = 0.0;
    std::size_t live_honest = 0;
    for (std::size_t i = 0; i < honest_count; ++i) {
      if (!live(i, round)) continue;
      honest_loss += losses[i];
      ++live_honest;
    }
    honest_loss = live_honest > 0
                      ? honest_loss / static_cast<double>(live_honest)
                      : 0.0;
    // Pairwise spread of the honest gradients entering agreement: the
    // Gram-trick build over the batch's honest prefix (pool-parallel).
    // Under faults the zeroed down rows would fake spread, so the live
    // honest gradients are compacted first (faults=none keeps the
    // in-place prefix path, bitwise).
    double gradient_diameter = 0.0;
    if (!faulty) {
      gradient_diameter =
          DistanceMatrix(gradients.row(0), honest_count, dim, config_.pool)
              .diameter();
    } else if (live_honest > 0) {
      VectorList live_rows;
      live_rows.reserve(live_honest);
      for (std::size_t i = 0; i < honest_count; ++i) {
        if (live(i, round)) live_rows.push_back(gradients.row_copy(i));
      }
      gradient_diameter =
          DistanceMatrix(GradientBatch::from(live_rows), config_.pool)
              .diameter();
    }

    // EF-compress the honest gradients in place: agreement (and the
    // attack, which observes wire traffic) runs on the lossy decodes.
    // The residuals carry the dropped mass into the next learning round,
    // and the recorded wire sizes price the sub-round-0 broadcasts —
    // agreement ships these inputs untransformed (a re-encode under a
    // fresh stochastic stream would re-sparsify onto a different support,
    // outside error feedback's view) and only re-encodes the mixed
    // vectors of later sub-rounds.
    input_wire.clear();
    if (codec != nullptr) {
      BCL_TRACE_SPAN("codec.encode");
      input_wire.assign(n, HonestProcess::kDenseWire);
      for (std::size_t i = 0; i < honest_count; ++i) {
        // A down client keeps its EF residual untouched: it carries the
        // dropped mass forward to the round it recovers in.
        if (!live(i, round)) continue;
        const CompressedGradient encoded = error_feedback.compress(
            *codec, config_.seed, i, round, gradients.row(i), dim);
        encoded.decode_into(gradients.row(i));
        input_wire[i] = encoded.wire_bytes();
      }
    }

    // The attack interface and the agreement protocol speak VectorList, so
    // the honest rows are materialized once per round for both.
    for (std::size_t i = 0; i < honest_count; ++i) {
      honest_gradients[i].assign(gradients.row(i), gradients.row(i) + dim);
    }
    // The omniscient attacker only sees gradients that will actually be
    // broadcast: down clients' zeroed rows are filtered from its view.
    live_view.clear();
    if (faulty) {
      live_view.reserve(live_honest);
      for (std::size_t i = 0; i < honest_count; ++i) {
        if (live(i, round)) live_view.push_back(honest_gradients[i]);
      }
    }
    const VectorList& attack_view = faulty ? live_view : honest_gradients;

    // Phase 2: Byzantine clients fix their corrupted gradients for the
    // whole agreement phase of this learning round (down attackers are
    // silenced by the engine; skip the craft).
    for (auto& value : byz_values) value.reset();
    {
      BCL_TRACE_SPAN("attack.corrupt");
      for (std::size_t i = honest_count; i < n; ++i) {
        if (!live(i, round)) continue;
        byz_values[i] = config_.attack->corrupt(gradients.row_copy(i),
                                                attack_view, round,
                                                attack_rng);
      }
    }
    PerNodeFixedAdversary fixed_adversary(byzantine_ids, byz_values);
    DelayingAdversary delaying_adversary(fixed_adversary,
                                         config_.honest_delay_probability,
                                         config_.seed ^ (round * 0x9E37u));
    Adversary& adversary = config_.honest_delay_probability > 0.0
                               ? static_cast<Adversary&>(delaying_adversary)
                               : static_cast<Adversary&>(fixed_adversary);

    // Phase 3: approximate agreement on the gradients for the logarithmic
    // sub-round schedule.
    for (std::size_t i = 0; i < honest_count; ++i) {
      inputs[i] = honest_gradients[i];
    }
    const std::size_t subrounds = config_.fixed_subrounds > 0
                                      ? config_.fixed_subrounds
                                      : agreement_subrounds(round);
    // Each learning round runs a fresh agreement instance whose sub-rounds
    // restart at 0, so the network seed is mixed per learning round to
    // decorrelate the sampled latencies across rounds.
    agreement.net.seed =
        config_.net.seed ^ ((round + 1) * 0x9E3779B97F4A7C15ull);
    agreement.codec = codec;
    agreement.codec_seed =
        config_.seed ^ ((round + 1) * 0xC2B2AE3D27D4EB4Full);
    agreement.input_wire_bytes = input_wire;
    const AgreementResult agreed = [&] {
      BCL_TRACE_SPAN("agreement");
      return run_fixed_rounds_agreement(inputs, adversary, subrounds,
                                        agreement);
    }();

    // Phase 4: every live honest client applies its own agreed vector; a
    // down client's parameters freeze until it rejoins (it then resumes
    // from its frozen model, one epoch behind its peers).
    const double lr = config_.schedule.rate(round);
    {
      BCL_TRACE_SPAN("sgd.apply");
      for (std::size_t i = 0; i < honest_count; ++i) {
        if (!live(i, round)) continue;
        ml::sgd_step(params_[i], agreed.outputs[i], lr);
      }
    }

    // Phase 5: evaluate every live honest local model.
    accuracies.assign(honest_count, 0.0);
    auto evaluate = [&](std::size_t i) {
      if (!live(i, round)) return;
      accuracies[i] = clients[i]->evaluate(params_[i], *test_,
                                           config_.eval_max_examples);
    };
    {
      BCL_TRACE_SPAN("evaluate");
      if (config_.pool != nullptr) {
        config_.pool->parallel_for(0, honest_count, evaluate);
      } else {
        for (std::size_t i = 0; i < honest_count; ++i) evaluate(i);
      }
    }

    RoundMetrics metrics;
    metrics.round = round;
    metrics.learning_rate = lr;
    metrics.mean_honest_loss = honest_loss;
    double sum = 0.0;
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < honest_count; ++i) {
      if (!live(i, round)) continue;
      const double a = accuracies[i];
      sum += a;
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    metrics.accuracy =
        live_honest > 0 ? sum / static_cast<double>(live_honest) : 0.0;
    metrics.accuracy_min = live_honest > 0 ? lo : 0.0;
    metrics.accuracy_max = live_honest > 0 ? hi : 0.0;
    metrics.disagreement = agreed.trace.honest_diameter.back();
    metrics.gradient_diameter = gradient_diameter;
    metrics.seconds = round_watch.seconds();
    metrics.sim_seconds = agreed.simulated_seconds;
    metrics.bytes_delivered =
        static_cast<double>(agreed.network.bytes_delivered);
    metrics.bytes_dense =
        static_cast<double>(agreed.network.bytes_dense_delivered);
    metrics.live_clients = faulty
                               ? static_cast<double>(plan.live_count(round))
                               : static_cast<double>(n);
    metrics.degraded = agreed.network.rounds_degraded > 0 ? 1.0 : 0.0;
    if (config_.metrics != nullptr) {
      // Absorb the per-instance counter structs (dropped on AgreementResult
      // until now) under the unified registry names.
      publish_network_stats(agreed.network, *config_.metrics);
      config_.metrics->counter("agreement.gram_builds")
          .add(agreed.sharing.gram_builds);
      config_.metrics->counter("agreement.shared_hits")
          .add(agreed.sharing.shared_hits);
      config_.metrics->counter("agreement.subrounds").add(agreed.rounds);
      config_.metrics->histogram("round.wall_seconds").record(metrics.seconds);
      config_.metrics->histogram("round.sim_seconds")
          .record(metrics.sim_seconds);
      config_.metrics->histogram("round.bytes").record(metrics.bytes_delivered);
    }
    result.history.push_back(metrics);
    if (config_.on_round) config_.on_round(result.history.back());
  }
  result.final_accuracy =
      result.history.empty() ? 0.0 : result.history.back().accuracy;
  return result;
}

}  // namespace bcl
