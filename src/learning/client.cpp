#include "learning/client.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bcl {

Client::Client(std::size_t id, const ml::Dataset* data,
               std::vector<std::size_t> shard, const ModelFactory& factory,
               std::size_t batch_size, Rng rng)
    : id_(id),
      data_(data),
      shard_(std::move(shard)),
      model_(factory()),
      batch_size_(batch_size),
      rng_(rng) {
  if (data_ == nullptr) throw std::invalid_argument("Client: null dataset");
  if (shard_.empty()) throw std::invalid_argument("Client: empty shard");
  if (batch_size_ == 0) throw std::invalid_argument("Client: zero batch size");
}

GradientEstimate Client::stochastic_gradient(const Vector& parameters) {
  GradientEstimate estimate;
  estimate.gradient.resize(model_.parameter_count());
  estimate.loss = stochastic_gradient_into(parameters,
                                           estimate.gradient.data());
  return estimate;
}

double Client::stochastic_gradient_into(const Vector& parameters,
                                        double* out_gradient) {
  return stochastic_gradient_with(model_, *data_, shard_, batch_size_, rng_,
                                  parameters, out_gradient);
}

double Client::evaluate(const Vector& parameters, const ml::Dataset& eval_set,
                        std::size_t max_examples) {
  return evaluate_with(model_, parameters, eval_set, max_examples);
}

double stochastic_gradient_with(ml::Model& scratch, const ml::Dataset& data,
                                const std::vector<std::size_t>& shard,
                                std::size_t batch_size, Rng& rng,
                                const Vector& parameters,
                                double* out_gradient) {
  scratch.set_parameters(parameters);
  const std::size_t batch = std::min(batch_size, shard.size());
  std::vector<std::size_t> indices(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    indices[i] = shard[rng.uniform_u64(shard.size())];
  }
  const double loss = scratch.compute_loss_and_gradient(
      data.batch(indices), data.batch_labels(indices));
  scratch.read_gradients(out_gradient);
  return loss;
}

double evaluate_with(ml::Model& scratch, const Vector& parameters,
                     const ml::Dataset& eval_set, std::size_t max_examples) {
  scratch.set_parameters(parameters);
  std::size_t count = eval_set.size();
  if (max_examples > 0) count = std::min(count, max_examples);
  std::vector<std::size_t> indices(count);
  std::iota(indices.begin(), indices.end(), 0);
  return scratch.accuracy(eval_set.batch(indices),
                          eval_set.batch_labels(indices));
}

}  // namespace bcl
