#pragma once
// A collaborative-learning client: owns its local data shard, its model
// replica and its private RNG stream, and produces stochastic gradient
// estimates (Equation 2 of the paper) at requested parameter points.

#include <cstddef>
#include <functional>

#include "linalg/vector_ops.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace bcl {

/// Builds a fresh (uninitialized) model replica; every client gets its own
/// instance so gradient computation parallelizes without shared state.
using ModelFactory = std::function<ml::Model()>;

struct GradientEstimate {
  Vector gradient;
  double loss = 0.0;
};

/// The arithmetic of Client::stochastic_gradient_into as a free function
/// over a caller-provided scratch model: sets `parameters` on `scratch`,
/// samples one mini-batch of `shard` from `rng` (with replacement) and
/// writes the gradient into out_gradient[0..parameter_count).  Returns the
/// mini-batch loss.  The scratch model's state is fully overwritten, so
/// which replica computes a given (parameters, shard, rng) triple never
/// affects the result — the streaming cohort trainer runs one replica per
/// worker lane over many clients and stays bitwise identical to the
/// replica-per-client path (test-enforced).
double stochastic_gradient_with(ml::Model& scratch, const ml::Dataset& data,
                                const std::vector<std::size_t>& shard,
                                std::size_t batch_size, Rng& rng,
                                const Vector& parameters, double* out_gradient);

/// Client::evaluate as a free function over a scratch model (stateless
/// given `parameters`; same sharing rationale as stochastic_gradient_with).
double evaluate_with(ml::Model& scratch, const Vector& parameters,
                     const ml::Dataset& eval_set, std::size_t max_examples = 0);

class Client {
 public:
  /// `shard` indexes into `data` (not owned; must outlive the client).
  Client(std::size_t id, const ml::Dataset* data,
         std::vector<std::size_t> shard, const ModelFactory& factory,
         std::size_t batch_size, Rng rng);

  std::size_t id() const { return id_; }
  std::size_t shard_size() const { return shard_.size(); }

  /// Stochastic gradient of the local loss at `parameters`, from one random
  /// mini-batch of the shard (sampling with replacement).
  GradientEstimate stochastic_gradient(const Vector& parameters);

  /// Same computation, but the gradient is written directly into
  /// out_gradient[0..parameter_count) — typically a GradientBatch row — so
  /// the per-round gradient never passes through an intermediate Vector.
  /// Returns the mini-batch loss.  Consumes the same RNG stream as
  /// stochastic_gradient, so the two are interchangeable round for round.
  double stochastic_gradient_into(const Vector& parameters,
                                  double* out_gradient);

  /// Accuracy of the model at `parameters` on an arbitrary evaluation set.
  double evaluate(const Vector& parameters, const ml::Dataset& eval_set,
                  std::size_t max_examples = 0);

 private:
  std::size_t id_;
  const ml::Dataset* data_;
  std::vector<std::size_t> shard_;
  ml::Model model_;
  std::size_t batch_size_;
  Rng rng_;
};

}  // namespace bcl
