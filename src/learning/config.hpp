#pragma once
// Shared configuration and metrics of the collaborative-learning trainers.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "aggregation/rule.hpp"
#include "attacks/attack.hpp"
#include "compression/codec.hpp"
#include "faults/fault_plan.hpp"
#include "faults/staleness.hpp"
#include "learning/cohort.hpp"
#include "ml/optimizer.hpp"
#include "ml/partition.hpp"
#include "network/delay_model.hpp"

namespace bcl {

class ThreadPool;
struct RoundMetrics;

struct TrainingConfig {
  /// Total clients n (the paper uses 10) and true Byzantine count f.
  /// Byzantine ids are the last f ids, {n-f, ..., n-1}.
  std::size_t num_clients = 10;
  std::size_t num_byzantine = 1;
  /// Designed tolerance t (>= num_byzantine); defaults to num_byzantine.
  std::size_t tolerance = 0;

  std::size_t rounds = 50;
  std::size_t batch_size = 32;

  AggregationRulePtr rule;
  GradientAttackPtr attack;

  /// eta = 0.01 with global-round decay by default (set in code when the
  /// zero-initialized schedule is detected).
  ml::LearningRateSchedule schedule{0.01, 0.0};

  ml::Heterogeneity heterogeneity = ml::Heterogeneity::Mild;

  /// Decentralized model only: probability that an honest gradient message
  /// is delayed past an agreement sub-round (the "receive up to n
  /// messages" slack; delivery never drops below n - t).  0 = full
  /// synchrony, in which case honest inboxes coincide and agreement is
  /// immediate.
  double honest_delay_probability = 0.0;

  /// Timing model of the communication rounds (the scenario `net=`
  /// dimension).  sync (default) = zero-delay lockstep; an async config
  /// runs the decentralized agreement sub-rounds on the discrete-event
  /// engine (delay model + loss + timeout Delta + bounded adversarial
  /// scheduling) and prices the centralized server round through the same
  /// delay model's star topology.  net.seed is mixed per learning round by
  /// the trainers.
  NetConfig net;

  /// Gradient codec of the communication rounds (the scenario `comp=`
  /// dimension).  null or identity = dense traffic and a code path bitwise
  /// identical to the pre-compression trainers.  Otherwise the centralized
  /// trainer EF-compresses every client upload and the server's broadcast,
  /// and the decentralized trainer EF-compresses the gradients entering
  /// agreement and routes every agreement sub-round broadcast through the
  /// codec.  Wire sizes flow into the byte metrics and, with `net.bw` set,
  /// into sim_seconds.
  CodecPtr codec;

  /// Liveness schedule (the scenario `faults=` dimension).  The default
  /// "none" keeps every client up for the whole run and the trainers on a
  /// code path bitwise identical to the pre-fault one.  Otherwise a
  /// FaultPlan expanded over the run's rounds drives crashes, recoveries,
  /// MMPP churn and stragglers: the centralized trainer runs its elastic
  /// membership loop, the decentralized trainer freezes the plan's
  /// membership across each learning round's agreement sub-rounds.
  FaultConfig faults;

  /// Bounded-staleness round policy (the scenario `stale=` dimension),
  /// centralized only: tau > 0 replaces the global round barrier with
  /// server advancement on a quorum of gradients at most tau versions
  /// old (see faults/staleness.hpp).  "none" keeps the lockstep barrier.
  StaleConfig stale;

  /// Cohort subsampling + sharded aggregation (the scenario `cohort=`
  /// dimension), centralized only: a fraction > 0 makes each round sample
  /// its uploaders from cohort_stream and keeps round memory at
  /// O(cohort * d) via the streaming gradient path; `shards` > 1 splits
  /// the robust aggregation hierarchically (see aggregation/sharded.hpp).
  /// Disabled (fraction 0) keeps the lockstep path; fraction 1.0 with one
  /// shard runs the streaming path with bitwise-identical results
  /// (test-enforced).  Mutually exclusive with faults/stale.
  CohortConfig cohort;

  /// Sketched shard aggregation (the scenario `sketch=` dimension),
  /// cohort path only.  "auto" (default) swaps the cohort round's shard
  /// and root rules for their SKETCH-* counterparts (see
  /// aggregation/sketched.hpp) once the round inbox reaches
  /// kSketchAutoThreshold rows — the regime where the O(m^2 d) distance
  /// build dominates and the JL sketch's O(m^2 k) screen wins; smaller
  /// inboxes keep the exact rules, bitwise the pre-sketch path.  "on"
  /// forces sketched rules at every size, "off" never sketches (the
  /// escape hatch).  Rules without a sketched counterpart (anything
  /// outside KRUM / MULTIKRUM-q / MD-MEAN) ignore the knob.
  std::string sketch = "auto";

  std::uint64_t seed = 7;
  ThreadPool* pool = nullptr;

  /// Optional per-scenario metrics registry (src/obs/metrics.hpp).  When
  /// set, the trainers publish round histograms (round.wall_seconds /
  /// round.sim_seconds / round.bytes), absorb the per-run counter structs
  /// (NetworkStats, SharingStats, sketch certification) under unified
  /// dotted names, and the event engine records a per-message delay
  /// histogram.  nullptr (default) publishes nothing and keeps every hot
  /// path branch-free.
  obs::MetricsRegistry* metrics = nullptr;

  /// Inbox size at which sketch="auto" switches the cohort shard rules to
  /// their sketched counterparts.
  static constexpr std::size_t kSketchAutoThreshold = 10000;

  /// Cap on test examples per evaluation (0 = all).
  std::size_t eval_max_examples = 0;

  /// Decentralized model only: fixed agreement sub-round budget per
  /// learning round.  0 (default) = the paper's ceil(log2(t + 2)) schedule
  /// (agreement_subrounds); k > 0 runs exactly k sub-rounds every round
  /// (the sub-round ablation scenarios).
  std::size_t fixed_subrounds = 0;

  /// Invoked by both trainers right after each round's metrics are
  /// recorded (streaming consumers: scenario emitters, live progress).
  /// The reference is only valid during the call.  May be empty.
  std::function<void(const RoundMetrics&)> on_round;

  /// Resolved tolerance: max(tolerance, num_byzantine).
  std::size_t resolved_t() const {
    return tolerance > num_byzantine ? tolerance : num_byzantine;
  }
};

/// Per-round record shared by both trainers.  In the decentralized model
/// `accuracy` is the mean over honest clients and `accuracy_min`/`_max` the
/// spread; in the centralized model all three coincide (global model).
struct RoundMetrics {
  std::size_t round = 0;
  double accuracy = 0.0;
  double accuracy_min = 0.0;
  double accuracy_max = 0.0;
  double mean_honest_loss = 0.0;
  double learning_rate = 0.0;
  /// Diameter of honest gradient/output disagreement (0 for centralized).
  double disagreement = 0.0;
  /// Diameter of the honest gradient set before aggregation/agreement,
  /// read off the round's shared distance matrix (a direct measure of the
  /// heterogeneity the robust rules must absorb).
  double gradient_diameter = 0.0;
  /// Wall time of this round (gradients + attack + aggregation/agreement +
  /// evaluation), seconds.
  double seconds = 0.0;
  /// Simulated network time of this round under the configured NetConfig:
  /// total event-engine time of the agreement sub-rounds (decentralized)
  /// or the star-topology upload-quorum + broadcast latency (centralized).
  /// 0 under the sync model.
  double sim_seconds = 0.0;
  /// Bytes delivered over real links this round (uploads + broadcasts for
  /// the centralized star, event-engine deliveries for the decentralized
  /// sub-rounds), and what the same messages would have cost uncompressed.
  /// bytes_dense / bytes_delivered is the round's compression ratio (1
  /// under the identity codec).
  double bytes_delivered = 0.0;
  double bytes_dense = 0.0;
  /// Membership and staleness accounting (faults= / stale= dimensions;
  /// doubles for uniform emitter formatting).  live_clients is the round's
  /// live membership (n without faults); stale_accepted / stale_rejected
  /// count gradient arrivals within / beyond the tau staleness bound;
  /// degraded is 1 when the round ran below the configured quorum (thin
  /// membership) or the server could not advance at all.
  double live_clients = 0.0;
  double stale_accepted = 0.0;
  double stale_rejected = 0.0;
  double degraded = 0.0;
  /// Cohort accounting (cohort= dimension; doubles for uniform emitter
  /// formatting).  cohort is the number of clients that uploaded this
  /// round (n when subsampling is off), shards the shard-aggregator count
  /// applied to the round's inbox (1 = flat aggregation).
  double cohort = 0.0;
  double shards = 1.0;
};

struct TrainingResult {
  std::vector<RoundMetrics> history;
  double final_accuracy = 0.0;

  /// Highest accuracy reached over the run (figures quote this).
  double best_accuracy() const;

  /// Total simulated network time of the run (sum of the rounds'
  /// sim_seconds; 0 under the sync model).  The artifact emitters quote
  /// this as the scenario-level sim_seconds.
  double sim_seconds_total() const;

  /// Total bytes delivered over the run and their dense-equivalent cost
  /// (sums of the rounds' bytes_delivered / bytes_dense).
  double bytes_total() const;
  double bytes_dense_total() const;

  /// Run-level compression ratio: dense-equivalent bytes over delivered
  /// bytes (1 when nothing was delivered or nothing was compressed).
  double compression_ratio() const;

  /// Membership/staleness totals over the run (sums of the per-round
  /// fields; all zero without faults= / stale=).
  double rounds_degraded_total() const;
  double stale_accepted_total() const;
  double stale_rejected_total() const;
};

/// Validates a config and throws std::invalid_argument with a specific
/// message on any inconsistency (missing rule/attack, f >= n/3 etc.).
void validate_config(const TrainingConfig& config);

}  // namespace bcl
