#include "learning/config.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcl {

double TrainingResult::best_accuracy() const {
  double best = 0.0;
  for (const auto& metrics : history) best = std::max(best, metrics.accuracy);
  return best;
}

double TrainingResult::sim_seconds_total() const {
  double total = 0.0;
  for (const auto& metrics : history) total += metrics.sim_seconds;
  return total;
}

double TrainingResult::bytes_total() const {
  double total = 0.0;
  for (const auto& metrics : history) total += metrics.bytes_delivered;
  return total;
}

double TrainingResult::bytes_dense_total() const {
  double total = 0.0;
  for (const auto& metrics : history) total += metrics.bytes_dense;
  return total;
}

double TrainingResult::compression_ratio() const {
  const double actual = bytes_total();
  if (actual <= 0.0) return 1.0;
  return bytes_dense_total() / actual;
}

double TrainingResult::rounds_degraded_total() const {
  double total = 0.0;
  for (const auto& metrics : history) total += metrics.degraded;
  return total;
}

double TrainingResult::stale_accepted_total() const {
  double total = 0.0;
  for (const auto& metrics : history) total += metrics.stale_accepted;
  return total;
}

double TrainingResult::stale_rejected_total() const {
  double total = 0.0;
  for (const auto& metrics : history) total += metrics.stale_rejected;
  return total;
}

void validate_config(const TrainingConfig& config) {
  if (config.num_clients == 0) {
    throw std::invalid_argument("TrainingConfig: num_clients must be > 0");
  }
  if (config.num_byzantine >= config.num_clients) {
    throw std::invalid_argument(
        "TrainingConfig: num_byzantine must be < num_clients");
  }
  if (3 * config.resolved_t() >= config.num_clients) {
    throw std::invalid_argument(
        "TrainingConfig: Byzantine resilience requires t < n/3");
  }
  if (!config.rule) {
    throw std::invalid_argument("TrainingConfig: aggregation rule not set");
  }
  if (!config.attack) {
    throw std::invalid_argument("TrainingConfig: attack not set (use 'none')");
  }
  if (config.rounds == 0) {
    throw std::invalid_argument("TrainingConfig: rounds must be > 0");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("TrainingConfig: batch_size must be > 0");
  }
  if (config.cohort.enabled() &&
      (config.faults.any() || config.stale.enabled())) {
    // The streaming cohort loop replaces the lockstep barrier; composing
    // it with the elastic fault/staleness loop (which owns its own
    // membership sampling) is unspecified — reject instead of guessing.
    throw std::invalid_argument(
        "TrainingConfig: cohort= cannot be combined with faults= or stale=");
  }
  if (config.sketch != "auto" && config.sketch != "on" &&
      config.sketch != "off") {
    throw std::invalid_argument("TrainingConfig: unknown sketch '" +
                                config.sketch + "' (valid: auto, on, off)");
  }
}

}  // namespace bcl
