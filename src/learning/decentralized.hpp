#pragma once
// Decentralized collaborative learning (Section 2.1): no server.  Every
// client keeps its own model; in learning iteration T each honest client
// computes a stochastic gradient at its own parameters, the clients run the
// approximate-agreement subroutine on the gradients for ceil(log2(T + 2))
// synchronous sub-rounds (the El-Mhamdi et al. schedule the paper adopts),
// and each client applies its own agreed vector with SGD.  Byzantine
// clients submit attacked gradients and repeat them through the sub-rounds.
// Reproduces the Figure 3 experiments.

#include "agreement/round_function.hpp"
#include "learning/client.hpp"
#include "learning/config.hpp"

namespace bcl {

class DecentralizedTrainer {
 public:
  /// The aggregation rule of `config` is applied as the agreement round
  /// function by every honest node in every sub-round.
  DecentralizedTrainer(TrainingConfig config, ModelFactory factory,
                       const ml::Dataset* train, const ml::Dataset* test);

  TrainingResult run();

  /// Final parameters of each honest client (valid after run()).
  const VectorList& honest_parameters() const { return params_; }

 private:
  TrainingConfig config_;
  ModelFactory factory_;
  const ml::Dataset* train_;
  const ml::Dataset* test_;
  VectorList params_;
};

/// The paper's sub-round schedule: max(1, ceil(log2(iteration + 2))).
std::size_t agreement_subrounds(std::size_t iteration);

}  // namespace bcl
