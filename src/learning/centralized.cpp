#include "learning/centralized.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "aggregation/budget.hpp"
#include "aggregation/registry.hpp"
#include "aggregation/sharded.hpp"
#include "compression/codec.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"
#include "linalg/sparse_rows.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

namespace {

// Round distributions shared by the three centralized loops (lockstep /
// elastic / cohort); no-op without a registry.
void publish_round_histograms(obs::MetricsRegistry* registry,
                              const RoundMetrics& metrics) {
  if (registry == nullptr) return;
  registry->histogram("round.wall_seconds").record(metrics.seconds);
  registry->histogram("round.sim_seconds").record(metrics.sim_seconds);
  registry->histogram("round.bytes").record(metrics.bytes_delivered);
}

}  // namespace

CentralizedTrainer::CentralizedTrainer(TrainingConfig config,
                                       ModelFactory factory,
                                       const ml::Dataset* train,
                                       const ml::Dataset* test)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      train_(train),
      test_(test) {
  validate_config(config_);
  if (train_ == nullptr || test_ == nullptr) {
    throw std::invalid_argument("CentralizedTrainer: null dataset");
  }
}

TrainingResult CentralizedTrainer::run() {
  if (config_.cohort.enabled()) return run_cohort();
  if (config_.faults.any() || config_.stale.enabled()) return run_elastic();
  return run_lockstep();
}

TrainingResult CentralizedTrainer::run_lockstep() {
  const std::size_t n = config_.num_clients;
  const std::size_t f = config_.num_byzantine;
  Rng root(config_.seed);

  // Partition data and build clients (one model replica each).
  Rng partition_rng = root.split(1);
  const auto shards =
      ml::partition_dataset(*train_, n, config_.heterogeneity, partition_rng);
  // Data-poisoning attacks (label-flip) corrupt the Byzantine shards at
  // setup: those clients then train honestly on a poisoned copy of the
  // training set, so their "own gradient" is already attacked.
  ml::Dataset poisoned_train;
  const ml::Dataset* byz_train = poison_byzantine_shards(
      *config_.attack, *train_, shards, f, poisoned_train);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, i < n - f ? train_ : byz_train, shards[i], factory_,
        config_.batch_size, root.split(100 + i)));
  }

  // Global model initialization.
  ml::Model server_model = factory_();
  Rng init_rng = root.split(2);
  server_model.initialize(init_rng);
  global_params_ = server_model.parameters();

  AggregationContext ctx;
  ctx.n = n;
  ctx.t = config_.resolved_t();
  ctx.pool = config_.pool;
  ctx.metrics = config_.metrics;

  Rng attack_rng = root.split(3);
  TrainingResult result;
  result.history.reserve(config_.rounds);

  // Simulated network pricing of the server round (async NetConfig only):
  // clients upload over sampled links, the server waits for the quorum-th
  // arrival, then broadcasts back.  The virtual server is node id n.
  std::unique_ptr<DelayModel> delay_model;
  if (config_.net.async) delay_model = make_delay_model(config_.net, n);
  const std::size_t net_quorum = n - config_.resolved_t();

  // Gradient compression (the `comp=` dimension): honest uploads and the
  // server's broadcast go through the codec with error feedback, so the
  // dropped mass re-enters later rounds and sparsified training still
  // converges.  A null/identity codec takes the exact pre-codec code path
  // (bitwise-identical results); wire sizes are still accounted, dense.
  const Codec* codec =
      config_.codec != nullptr && !config_.codec->identity()
          ? config_.codec.get()
          : nullptr;
  ErrorFeedback error_feedback(n + 1);  // clients 0..n-1, server id n

  // All n gradients of a round live in one contiguous batch; clients write
  // their rows in place (parallel; disjoint rows), so gradients never pass
  // through intermediate per-client Vectors.  The honest rows occupy the
  // contiguous prefix [0, n - f).
  const std::size_t dim = server_model.parameter_count();
  GradientBatch gradients(n, dim);
  std::vector<double> losses(n, 0.0);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    Stopwatch round_watch;
    BCL_TRACE_SPAN("round");
    auto compute = [&](std::size_t i) {
      losses[i] = clients[i]->stochastic_gradient_into(global_params_,
                                                       gradients.row(i));
    };
    {
      BCL_TRACE_SPAN("grad.compute");
      if (config_.pool != nullptr) {
        config_.pool->parallel_for(0, n, compute);
      } else {
        for (std::size_t i = 0; i < n; ++i) compute(i);
      }
    }

    double honest_loss = 0.0;
    for (std::size_t i = 0; i < n - f; ++i) honest_loss += losses[i];
    honest_loss /= static_cast<double>(n - f);

    // EF-compress the honest uploads in place: the server (and the attack,
    // which observes wire traffic) sees the lossy decodes, and the encoded
    // forms keep the wire sizes and the sparse distance path below.
    std::vector<CompressedGradient> encoded_uploads;
    bool sparse_uploads = false;
    if (codec != nullptr) {
      BCL_TRACE_SPAN("codec.encode");
      encoded_uploads.reserve(n - f);
      sparse_uploads = true;
      for (std::size_t i = 0; i < n - f; ++i) {
        encoded_uploads.push_back(error_feedback.compress(
            *codec, config_.seed, i, round, gradients.row(i), dim));
        encoded_uploads.back().decode_into(gradients.row(i));
        sparse_uploads = sparse_uploads && encoded_uploads.back().sparse();
      }
    }

    // Byzantine submissions (the last f ids).  The attack interface speaks
    // VectorList, so the honest prefix is materialized only when there is a
    // Byzantine client to corrupt.  With a codec the adversary speaks the
    // wire format too: its corruption is serialized through the codec (no
    // error feedback — it is not trying to converge), because the server
    // rejects oversized dense uploads in a compressed protocol.
    VectorList corrupted_submissions;
    std::vector<CompressedGradient> encoded_byz;
    std::vector<std::size_t> upload_wire(n, dense_wire_bytes(dim));
    if (codec != nullptr) {
      for (std::size_t i = 0; i < n - f; ++i) {
        upload_wire[i] = encoded_uploads[i].wire_bytes();
      }
    }
    if (f > 0) {
      BCL_TRACE_SPAN("attack.corrupt");
      VectorList honest;
      honest.reserve(n - f);
      for (std::size_t i = 0; i < n - f; ++i) {
        honest.push_back(gradients.row_copy(i));
      }
      for (std::size_t i = n - f; i < n; ++i) {
        auto corrupted = config_.attack->corrupt(gradients.row_copy(i),
                                                 honest, round, attack_rng);
        if (!corrupted) {  // silent round: nothing on the wire
          upload_wire[i] = 0;
          continue;
        }
        if (codec != nullptr) {
          CompressedGradient encoded = codec->encode(
              corrupted->data(), dim, config_.seed, i, round);
          upload_wire[i] = encoded.wire_bytes();
          corrupted_submissions.push_back(encoded.decode());
          sparse_uploads = sparse_uploads && encoded.sparse();
          encoded_byz.push_back(std::move(encoded));
        } else {
          corrupted_submissions.push_back(std::move(*corrupted));
        }
      }
    }

    // The submitted inbox: with no Byzantine clients it is the gradient
    // batch itself; otherwise the honest prefix (one contiguous copy) plus
    // the corrupted rows.
    GradientBatch compacted;
    if (f > 0) {
      compacted = GradientBatch(n - f + corrupted_submissions.size(), dim);
      std::copy(gradients.row(0), gradients.row(0) + (n - f) * dim,
                compacted.row(0));
      for (std::size_t i = 0; i < corrupted_submissions.size(); ++i) {
        compacted.set_row(n - f + i, corrupted_submissions[i]);
      }
    }
    const GradientBatch& submitted = f > 0 ? compacted : gradients;

    // Server-side aggregation and SGD step.  The workspace is built once
    // per round over the submitted batch; the rule and the heterogeneity
    // metric below share its Gram-trick distance matrix.  When every
    // honest upload arrived top-k/rand-k sparse, the pairwise matrix is
    // built from the encoded forms through the sparse Gram kernels —
    // O(pairwise nnz) instead of O(m^2 * d) — and handed to the workspace
    // prebuilt (Byzantine rows ride along dense).
    std::optional<AggregationWorkspace> workspace;
    Vector aggregate = [&] {
      BCL_TRACE_SPAN("aggregate.rule");
      if (sparse_uploads) {
        SparseRows sparse(dim);
        for (const auto& encoded : encoded_uploads) {
          encoded.append_row_to(sparse);
        }
        for (const auto& encoded : encoded_byz) {
          encoded.append_row_to(sparse);
        }
        workspace.emplace(submitted, DistanceMatrix(sparse, ctx.pool),
                          ctx.pool);
      } else {
        workspace.emplace(submitted, ctx.pool);
      }
      return config_.rule->aggregate(submitted, *workspace, ctx);
    }();

    // The model update travels back over the same constrained links: the
    // server EF-compresses its broadcast (id n), and every client applies
    // the lossy decode — with the identity codec this is a bitwise no-op.
    std::size_t downlink_wire = dense_wire_bytes(dim);
    if (codec != nullptr) {
      BCL_TRACE_SPAN("codec.encode");
      const CompressedGradient encoded = error_feedback.compress(
          *codec, config_.seed, n, round, aggregate.data(), dim);
      encoded.decode_into(aggregate.data());
      downlink_wire = encoded.wire_bytes();
    }
    const double lr = config_.schedule.rate(round);
    {
      BCL_TRACE_SPAN("sgd.apply");
      ml::sgd_step(global_params_, aggregate, lr);
    }

    RoundMetrics metrics;
    metrics.round = round;
    metrics.learning_rate = lr;
    metrics.mean_honest_loss = honest_loss;
    metrics.accuracy = [&] {
      BCL_TRACE_SPAN("evaluate");
      return clients[0]->evaluate(global_params_, *test_,
                                  config_.eval_max_examples);
    }();
    metrics.accuracy_min = metrics.accuracy;
    metrics.accuracy_max = metrics.accuracy;
    metrics.disagreement = 0.0;
    // Honest submissions occupy the first n - f slots of `submitted`, so
    // when the rule already built the shared matrix the metric is a free
    // subset lookup; for distance-free rules run the Gram kernel over the
    // honest prefix only instead of forcing an O(m^2 * d) build over all
    // submissions.
    if (workspace->has_distances()) {
      std::vector<std::size_t> honest_ids(n - f);
      for (std::size_t i = 0; i < n - f; ++i) honest_ids[i] = i;
      metrics.gradient_diameter =
          workspace->distances().subset_diameter(honest_ids);
    } else {
      metrics.gradient_diameter =
          DistanceMatrix(gradients.row(0), n - f, dim, ctx.pool).diameter();
    }
    metrics.seconds = round_watch.seconds();

    // Price the star round and record which messages arrived.
    StarWire star_wire;
    star_wire.uplink_bytes = upload_wire;
    star_wire.downlink_bytes = downlink_wire;
    StarDelivery delivery;
    if (delay_model != nullptr) {
      metrics.sim_seconds = star_round_latency(*delay_model, config_.net, n,
                                               f, net_quorum, round,
                                               star_wire, &delivery);
    }

    // Delivered-byte accounting, consistent with the event engine's
    // NetworkStats: uploads/downlinks the star model dropped carry no
    // bytes (under sync nothing drops), and upload_wire[i] == 0 marks a
    // silent Byzantine round with nothing on the wire at all.
    const double dense = static_cast<double>(dense_wire_bytes(dim));
    double bytes = 0.0;
    double bytes_dense = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (upload_wire[i] == 0) continue;
      if (!delivery.uplink.empty() && !delivery.uplink[i]) continue;
      bytes += static_cast<double>(upload_wire[i]);
      bytes_dense += dense;
    }
    for (std::size_t i = 0; i < n - f; ++i) {
      if (!delivery.downlink.empty() && !delivery.downlink[i]) continue;
      bytes += static_cast<double>(downlink_wire);
      bytes_dense += dense;
    }
    metrics.bytes_delivered = bytes;
    metrics.bytes_dense = bytes_dense;
    metrics.live_clients = static_cast<double>(n);  // lockstep: all up
    metrics.cohort = static_cast<double>(n);        // everyone uploads
    publish_round_histograms(config_.metrics, metrics);
    result.history.push_back(metrics);
    if (config_.on_round) config_.on_round(result.history.back());
  }
  result.final_accuracy =
      result.history.empty() ? 0.0 : result.history.back().accuracy;
  return result;
}

TrainingResult CentralizedTrainer::run_elastic() {
  const std::size_t n = config_.num_clients;
  const std::size_t f = config_.num_byzantine;
  const std::size_t t = config_.resolved_t();
  Rng root(config_.seed);

  // Setup mirrors run_lockstep (same split indices, so the two paths see
  // identical partitions, initial parameters and attack streams).
  Rng partition_rng = root.split(1);
  const auto shards =
      ml::partition_dataset(*train_, n, config_.heterogeneity, partition_rng);
  ml::Dataset poisoned_train;
  const ml::Dataset* byz_train = poison_byzantine_shards(
      *config_.attack, *train_, shards, f, poisoned_train);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, i < n - f ? train_ : byz_train, shards[i], factory_,
        config_.batch_size, root.split(100 + i)));
  }
  ml::Model server_model = factory_();
  Rng init_rng = root.split(2);
  server_model.initialize(init_rng);
  global_params_ = server_model.parameters();
  Rng attack_rng = root.split(3);

  std::unique_ptr<DelayModel> delay_model;
  if (config_.net.async) delay_model = make_delay_model(config_.net, n);
  const Codec* codec =
      config_.codec != nullptr && !config_.codec->identity()
          ? config_.codec.get()
          : nullptr;
  ErrorFeedback error_feedback(n + 1);
  const std::size_t dim = server_model.parameter_count();

  // The liveness schedule, expanded once over the whole run; every
  // membership decision below is a const read of it, so serial and
  // --jobs runs replay the same elastic trajectory bitwise.
  const FaultPlan plan(config_.faults, n, config_.rounds, config_.seed);
  const std::size_t tau = config_.stale.tau;  // 0 = only fresh arrivals
  const double decay = config_.stale.decay;
  // The configured quorum: a live fraction, or the Byzantine-safe n - t.
  const auto quorum_of = [&](std::size_t members) {
    std::size_t need =
        config_.stale.quorum > 0.0
            ? static_cast<std::size_t>(std::ceil(
                  config_.stale.quorum * static_cast<double>(members)))
            : (members > t ? members - t : 1);
    return std::max<std::size_t>(need, 1);
  };
  const std::size_t configured_quorum = quorum_of(n);

  // One in-flight gradient per client: computed against the model version
  // current when the client last synced, arriving `ready - version` rounds
  // later (straggler slowdown for honest clients, the attack's chosen
  // staleness for Byzantine ones).
  struct Pending {
    bool active = false;
    std::size_t version = 0;  // model version the gradient was computed at
    std::size_t ready = 0;    // round the upload reaches the server
    double loss = 0.0;
    std::size_t wire = 0;
    Vector grad;
  };
  std::vector<Pending> pending(n);

  TrainingResult result;
  result.history.reserve(config_.rounds);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    Stopwatch round_watch;
    BCL_TRACE_SPAN("round");
    const std::size_t live = plan.live_count(round);

    // Start work: every live, idle client picks up the latest broadcast
    // model (this is where a recovering client resyncs — global_params_ is
    // whatever the server last published) and computes one gradient
    // against it.  Row writes are disjoint, so the pass parallelizes.
    std::vector<std::size_t> starters;
    for (std::size_t i = 0; i < n; ++i) {
      if (plan.alive(i, round) && !pending[i].active) starters.push_back(i);
    }
    auto compute = [&](std::size_t k) {
      const std::size_t i = starters[k];
      Pending& p = pending[i];
      p.grad.assign(dim, 0.0);
      p.loss = clients[i]->stochastic_gradient_into(global_params_,
                                                    p.grad.data());
      p.active = true;
      p.version = round;
    };
    {
      BCL_TRACE_SPAN("grad.compute");
      if (config_.pool != nullptr && starters.size() > 1) {
        config_.pool->parallel_for(0, starters.size(), compute);
      } else {
        for (std::size_t k = 0; k < starters.size(); ++k) compute(k);
      }
    }
    for (const std::size_t i : starters) {
      Pending& p = pending[i];
      if (i < n - f) {
        // Honest upload: EF-compressed at the client, arriving after the
        // straggler delay (a factor-K straggler lands K-1 versions stale).
        if (codec != nullptr) {
          const CompressedGradient encoded = error_feedback.compress(
              *codec, config_.seed, i, round, p.grad.data(), dim);
          encoded.decode_into(p.grad.data());
          p.wire = encoded.wire_bytes();
        } else {
          p.wire = dense_wire_bytes(dim);
        }
        const auto lag = static_cast<std::size_t>(
            std::ceil(plan.slowdown(i)) - 1.0);
        p.ready = round + lag;
      } else {
        // Byzantine upload: the attack picks its own arrival staleness
        // (clamped to the accepted bound — landing beyond tau would just
        // be rejected), corruption happens at arrival time against that
        // round's honest cohort.
        p.ready =
            round + std::min(config_.attack->submit_staleness(round, tau), tau);
      }
    }

    // Arrivals due this round.  An upload whose owner is down right now is
    // lost with the node; an accepted honest upload joins the cohort with
    // weight decay^staleness; anything older than tau is rejected.
    std::vector<std::size_t> honest_arrived;
    std::vector<std::size_t> byz_arrived;
    std::size_t stale_accepted = 0, stale_rejected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Pending& p = pending[i];
      if (!p.active || p.ready > round) continue;
      if (!plan.alive(i, round)) {
        p.active = false;  // crashed mid-upload: the gradient dies with it
        continue;
      }
      const std::size_t staleness = round - p.version;
      if (staleness > tau) {
        ++stale_rejected;
        p.active = false;
        continue;
      }
      if (staleness > 0) ++stale_accepted;
      (i < n - f ? honest_arrived : byz_arrived).push_back(i);
    }

    // Byzantine corruption over the arrived cohort (rushing within the
    // round: the attack sees every honest gradient accepted this round).
    VectorList honest_cohort;
    honest_cohort.reserve(honest_arrived.size());
    for (const std::size_t i : honest_arrived) {
      honest_cohort.push_back(pending[i].grad);
    }
    VectorList submissions;
    std::vector<double> weights;
    std::vector<double> cohort_losses;
    std::vector<std::size_t> upload_wire(n, 0);
    for (const std::size_t i : honest_arrived) {
      Pending& p = pending[i];
      submissions.push_back(std::move(p.grad));
      weights.push_back(std::pow(decay, static_cast<double>(round - p.version)));
      cohort_losses.push_back(p.loss);
      upload_wire[i] = p.wire;
      p.active = false;
    }
    const std::size_t honest_accepted = submissions.size();
    BCL_TRACE_SPAN("attack.corrupt");
    for (const std::size_t i : byz_arrived) {
      Pending& p = pending[i];
      auto corrupted = config_.attack->corrupt(std::move(p.grad),
                                               honest_cohort, round,
                                               attack_rng);
      p.active = false;
      if (!corrupted) continue;  // silent round: nothing on the wire
      std::size_t wire = dense_wire_bytes(dim);
      if (codec != nullptr) {
        CompressedGradient encoded = codec->encode(
            corrupted->data(), dim, config_.seed, i, round);
        wire = encoded.wire_bytes();
        *corrupted = encoded.decode();
      }
      submissions.push_back(std::move(*corrupted));
      weights.push_back(std::pow(
          decay, static_cast<double>(round - pending[i].version)));
      upload_wire[i] = wire;
    }

    // Quorum-or-skip over the current membership: enough fresh-enough
    // arrivals and the server steps; otherwise the round is degraded and
    // the model stands still — the loop is a fixed count, so thin
    // membership can never hang the run.
    const std::size_t need = std::min(configured_quorum, quorum_of(live));
    const bool advanced = submissions.size() >= need;
    const double lr = config_.schedule.rate(round);
    std::size_t downlink_wire = 0;
    double diameter = 0.0;
    if (advanced) {
      GradientBatch submitted(submissions.size(), dim);
      for (std::size_t k = 0; k < submissions.size(); ++k) {
        if (weights[k] != 1.0) {
          for (double& value : submissions[k]) value *= weights[k];
        }
        submitted.set_row(k, submissions[k]);
      }
      // Tolerance degrades with the cohort: the rules' trimming counts
      // must stay meaningful at thin membership.
      AggregationContext ctx;
      ctx.n = submitted.rows();
      ctx.t = clamp_byzantine_budget(t, submitted.rows());
      ctx.pool = config_.pool;
      ctx.metrics = config_.metrics;
      AggregationWorkspace workspace(submitted, ctx.pool);
      Vector aggregate = [&] {
        BCL_TRACE_SPAN("aggregate.rule");
        return config_.rule->aggregate(submitted, workspace, ctx);
      }();
      downlink_wire = dense_wire_bytes(dim);
      if (codec != nullptr) {
        BCL_TRACE_SPAN("codec.encode");
        const CompressedGradient encoded = error_feedback.compress(
            *codec, config_.seed, n, round, aggregate.data(), dim);
        encoded.decode_into(aggregate.data());
        downlink_wire = encoded.wire_bytes();
      }
      {
        BCL_TRACE_SPAN("sgd.apply");
        ml::sgd_step(global_params_, aggregate, lr);
      }
      if (workspace.has_distances() && honest_accepted >= 2) {
        std::vector<std::size_t> honest_ids(honest_accepted);
        for (std::size_t k = 0; k < honest_accepted; ++k) honest_ids[k] = k;
        diameter = workspace.distances().subset_diameter(honest_ids);
      } else if (honest_accepted >= 2) {
        diameter = DistanceMatrix(submitted.row(0), honest_accepted, dim,
                                  config_.pool)
                       .diameter();
      }
    }

    RoundMetrics metrics;
    metrics.round = round;
    metrics.learning_rate = lr;
    double loss = 0.0;
    for (const double value : cohort_losses) loss += value;
    metrics.mean_honest_loss =
        cohort_losses.empty()
            ? 0.0
            : loss / static_cast<double>(cohort_losses.size());
    metrics.accuracy = [&] {
      BCL_TRACE_SPAN("evaluate");
      return clients[0]->evaluate(global_params_, *test_,
                                  config_.eval_max_examples);
    }();
    metrics.accuracy_min = metrics.accuracy;
    metrics.accuracy_max = metrics.accuracy;
    metrics.gradient_diameter = diameter;
    metrics.live_clients = static_cast<double>(live);
    metrics.stale_accepted = static_cast<double>(stale_accepted);
    metrics.stale_rejected = static_cast<double>(stale_rejected);
    metrics.cohort = static_cast<double>(submissions.size());
    metrics.degraded = (need < configured_quorum || !advanced) ? 1.0 : 0.0;
    metrics.seconds = round_watch.seconds();

    // Star pricing + byte accounting over what actually hit the wire:
    // arrived uploads and, when the server stepped, its broadcast to the
    // live honest clients.
    StarWire star_wire;
    star_wire.uplink_bytes = upload_wire;
    star_wire.downlink_bytes = downlink_wire;
    StarDelivery delivery;
    if (delay_model != nullptr) {
      metrics.sim_seconds = star_round_latency(*delay_model, config_.net, n,
                                               f, need, round, star_wire,
                                               &delivery);
    }
    const double dense = static_cast<double>(dense_wire_bytes(dim));
    double bytes = 0.0;
    double bytes_dense = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (upload_wire[i] == 0) continue;
      if (!delivery.uplink.empty() && !delivery.uplink[i]) continue;
      bytes += static_cast<double>(upload_wire[i]);
      bytes_dense += dense;
    }
    if (advanced) {
      for (std::size_t i = 0; i < n - f; ++i) {
        if (!plan.alive(i, round)) continue;
        if (!delivery.downlink.empty() && !delivery.downlink[i]) continue;
        bytes += static_cast<double>(downlink_wire);
        bytes_dense += dense;
      }
    }
    metrics.bytes_delivered = bytes;
    metrics.bytes_dense = bytes_dense;
    publish_round_histograms(config_.metrics, metrics);
    result.history.push_back(metrics);
    if (config_.on_round) config_.on_round(result.history.back());
  }
  result.final_accuracy =
      result.history.empty() ? 0.0 : result.history.back().accuracy;
  return result;
}

namespace {

/// SKETCH-* counterpart of a rule, or nullptr when the registry has none
/// (the sketched screen only exists for the Krum family and MD-MEAN).
AggregationRulePtr sketched_counterpart(const AggregationRulePtr& rule) {
  if (rule == nullptr) return nullptr;
  const std::string name = rule->name();
  if (name == "KRUM" || name == "MD-MEAN" ||
      name.rfind("MULTIKRUM-", 0) == 0) {
    return make_rule("SKETCH-" + name);
  }
  return nullptr;
}

}  // namespace

TrainingResult CentralizedTrainer::run_cohort() {
  const std::size_t n = config_.num_clients;
  const std::size_t f = config_.num_byzantine;
  const std::size_t t = config_.resolved_t();
  Rng root(config_.seed);

  // Setup mirrors run_lockstep (same split indices, so cohort=1.0 sees the
  // identical partition, initial parameters and attack stream) — but no
  // per-client Client objects: a model replica per client is exactly the
  // O(m * model) footprint this path exists to avoid.  Per-client state is
  // the shard index list and an 8-byte RNG stream.
  Rng partition_rng = root.split(1);
  const auto shards =
      ml::partition_dataset(*train_, n, config_.heterogeneity, partition_rng);
  ml::Dataset poisoned_train;
  const ml::Dataset* byz_train = poison_byzantine_shards(
      *config_.attack, *train_, shards, f, poisoned_train);
  std::vector<Rng> client_rngs;
  client_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) client_rngs.push_back(root.split(100 + i));

  // Beyond the dataset size the partition leaves shards empty (Client would
  // refuse to construct); at hyper-scale those clients sample the whole
  // training set instead — the documented cohort-path semantics.
  std::vector<std::size_t> fallback_shard;
  for (std::size_t i = 0; i < n; ++i) {
    if (shards[i].empty()) {
      fallback_shard.resize(train_->size());
      for (std::size_t j = 0; j < fallback_shard.size(); ++j)
        fallback_shard[j] = j;
      break;
    }
  }
  const auto shard_of = [&](std::size_t i) -> const std::vector<std::size_t>& {
    return shards[i].empty() ? fallback_shard : shards[i];
  };

  // One scratch model per worker lane (plus the calling thread): the
  // gradient arithmetic fully overwrites model state, so lane identity
  // never affects the numbers (see stochastic_gradient_with).
  const std::size_t lanes =
      config_.pool != nullptr ? config_.pool->size() + 1 : 1;
  std::vector<ml::Model> lane_models;
  lane_models.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) lane_models.push_back(factory_());

  ml::Model server_model = factory_();
  Rng init_rng = root.split(2);
  server_model.initialize(init_rng);
  global_params_ = server_model.parameters();
  Rng attack_rng = root.split(3);

  std::unique_ptr<DelayModel> delay_model;
  if (config_.net.async) delay_model = make_delay_model(config_.net, n);
  const Codec* codec =
      config_.codec != nullptr && !config_.codec->identity()
          ? config_.codec.get()
          : nullptr;
  ErrorFeedback error_feedback(n + 1);
  const std::size_t dim = server_model.parameter_count();

  // Shard-rule / root-rule pair of the hierarchical aggregation; an empty
  // root means "same rule at both levels".
  const AggregationRulePtr root_rule = config_.cohort.root.empty()
                                           ? config_.rule
                                           : make_rule(config_.cohort.root);
  // Sketched counterparts (the scenario sketch= dimension), resolved once:
  // swapped in per round when sketch=on, or when sketch=auto and the round
  // inbox reaches the threshold where the JL screen's O(m^2 k) beats the
  // exact O(m^2 d) build.  Rules without a SKETCH-* registry entry keep
  // the exact pair at every size; sketch=off is the escape hatch.
  const AggregationRulePtr sketch_shard =
      config_.sketch != "off" ? sketched_counterpart(config_.rule) : nullptr;
  const AggregationRulePtr sketch_root =
      config_.sketch != "off" ? sketched_counterpart(root_rule) : nullptr;

  TrainingResult result;
  result.history.reserve(config_.rounds);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    Stopwatch round_watch;
    BCL_TRACE_SPAN("round");
    // This round's uploaders, ascending (honest cohort members form the
    // batch prefix because Byzantine ids are the last f).
    const std::vector<std::size_t> cohort =
        sample_cohort(config_.cohort, n, config_.seed, round);
    const std::size_t k = cohort.size();
    const std::size_t honest_k = static_cast<std::size_t>(
        std::lower_bound(cohort.begin(), cohort.end(), n - f) -
        cohort.begin());
    const std::size_t byz_k = k - honest_k;
    const std::size_t t_k = clamp_byzantine_budget(t, k);

    // Round memory is O(k * d): one batch row per cohort member, written
    // in cohort order by the lane that owns the member's contiguous chunk.
    GradientBatch gradients(k, dim);
    std::vector<double> losses(k, 0.0);
    const auto compute_member = [&](ml::Model& scratch, std::size_t c) {
      const std::size_t i = cohort[c];
      losses[c] = stochastic_gradient_with(
          scratch, i < n - f ? *train_ : *byz_train, shard_of(i),
          config_.batch_size, client_rngs[i], global_params_,
          gradients.row(c));
    };
    {
      BCL_TRACE_SPAN("grad.compute");
      if (config_.pool != nullptr && k > 1) {
        // Contiguous member chunks per lane, so a lane's scratch model is
        // touched by exactly one worker.
        const std::size_t chunk = (k + lanes - 1) / lanes;
        config_.pool->parallel_for(0, lanes, [&](std::size_t l) {
          const std::size_t begin = l * chunk;
          const std::size_t end = std::min(k, begin + chunk);
          for (std::size_t c = begin; c < end; ++c) {
            compute_member(lane_models[l], c);
          }
        });
      } else {
        for (std::size_t c = 0; c < k; ++c) {
          compute_member(lane_models[0], c);
        }
      }
    }

    double honest_loss = 0.0;
    for (std::size_t c = 0; c < honest_k; ++c) honest_loss += losses[c];
    if (honest_k > 0) honest_loss /= static_cast<double>(honest_k);

    // EF-compression, Byzantine corruption, compaction, aggregation and
    // broadcast mirror run_lockstep over the cohort rows; codec and attack
    // streams key off the member's global client id.
    std::vector<CompressedGradient> encoded_uploads;
    bool sparse_uploads = false;
    if (codec != nullptr) {
      BCL_TRACE_SPAN("codec.encode");
      encoded_uploads.reserve(honest_k);
      sparse_uploads = true;
      for (std::size_t c = 0; c < honest_k; ++c) {
        encoded_uploads.push_back(error_feedback.compress(
            *codec, config_.seed, cohort[c], round, gradients.row(c), dim));
        encoded_uploads.back().decode_into(gradients.row(c));
        sparse_uploads = sparse_uploads && encoded_uploads.back().sparse();
      }
    }

    VectorList corrupted_submissions;
    std::vector<CompressedGradient> encoded_byz;
    std::vector<std::size_t> upload_wire(k, dense_wire_bytes(dim));
    if (codec != nullptr) {
      for (std::size_t c = 0; c < honest_k; ++c) {
        upload_wire[c] = encoded_uploads[c].wire_bytes();
      }
    }
    if (byz_k > 0) {
      BCL_TRACE_SPAN("attack.corrupt");
      VectorList honest;
      honest.reserve(honest_k);
      for (std::size_t c = 0; c < honest_k; ++c) {
        honest.push_back(gradients.row_copy(c));
      }
      for (std::size_t c = honest_k; c < k; ++c) {
        auto corrupted = config_.attack->corrupt(gradients.row_copy(c),
                                                 honest, round, attack_rng);
        if (!corrupted) {  // silent round: nothing on the wire
          upload_wire[c] = 0;
          continue;
        }
        if (codec != nullptr) {
          CompressedGradient encoded = codec->encode(
              corrupted->data(), dim, config_.seed, cohort[c], round);
          upload_wire[c] = encoded.wire_bytes();
          corrupted_submissions.push_back(encoded.decode());
          sparse_uploads = sparse_uploads && encoded.sparse();
          encoded_byz.push_back(std::move(encoded));
        } else {
          corrupted_submissions.push_back(std::move(*corrupted));
        }
      }
    }

    GradientBatch compacted;
    if (byz_k > 0) {
      compacted = GradientBatch(honest_k + corrupted_submissions.size(), dim);
      std::copy(gradients.row(0), gradients.row(0) + honest_k * dim,
                compacted.row(0));
      for (std::size_t c = 0; c < corrupted_submissions.size(); ++c) {
        compacted.set_row(honest_k + c, corrupted_submissions[c]);
      }
    }
    const GradientBatch& submitted = byz_k > 0 ? compacted : gradients;

    // The round's nominal membership is the cohort, with the Byzantine
    // budget clamped by the thin-cohort rule shared with the elastic loop.
    AggregationContext ctx;
    ctx.n = k;
    ctx.t = t_k;
    ctx.pool = config_.pool;
    ctx.metrics = config_.metrics;

    const double lr = config_.schedule.rate(round);
    std::size_t downlink_wire = 0;
    double diameter = 0.0;
    std::size_t effective_shards = 1;
    // A cohort drawn almost entirely Byzantine-and-silent can leave fewer
    // rows than the rules trust to exist; the server skips (degraded),
    // like the elastic loop's below-quorum rounds.
    const bool advanced = submitted.rows() >= ctx.keep() && !submitted.empty();
    if (advanced) {
      std::optional<AggregationWorkspace> workspace;
      if (sparse_uploads) {
        SparseRows sparse(dim);
        for (const auto& encoded : encoded_uploads) {
          encoded.append_row_to(sparse);
        }
        for (const auto& encoded : encoded_byz) {
          encoded.append_row_to(sparse);
        }
        workspace.emplace(submitted, DistanceMatrix(sparse, ctx.pool),
                          ctx.pool);
      } else {
        workspace.emplace(submitted, ctx.pool);
      }
      effective_shards =
          std::min(std::max<std::size_t>(config_.cohort.shards, 1),
                   submitted.rows());
      const bool use_sketch =
          sketch_shard != nullptr &&
          (config_.sketch == "on" ||
           submitted.rows() >= TrainingConfig::kSketchAutoThreshold);
      const AggregationRule& shard_rule =
          use_sketch ? *sketch_shard : *config_.rule;
      const AggregationRule& round_root =
          use_sketch && sketch_root != nullptr ? *sketch_root : *root_rule;
      Vector aggregate = [&] {
        BCL_TRACE_SPAN("aggregate.rule");
        return aggregate_sharded(submitted, *workspace, shard_rule,
                                 round_root, config_.cohort.shards, ctx);
      }();
      downlink_wire = dense_wire_bytes(dim);
      if (codec != nullptr) {
        BCL_TRACE_SPAN("codec.encode");
        const CompressedGradient encoded = error_feedback.compress(
            *codec, config_.seed, n, round, aggregate.data(), dim);
        encoded.decode_into(aggregate.data());
        downlink_wire = encoded.wire_bytes();
      }
      {
        BCL_TRACE_SPAN("sgd.apply");
        ml::sgd_step(global_params_, aggregate, lr);
      }
      if (workspace->has_distances() && honest_k >= 2) {
        std::vector<std::size_t> honest_ids(honest_k);
        for (std::size_t c = 0; c < honest_k; ++c) honest_ids[c] = c;
        diameter = workspace->distances().subset_diameter(honest_ids);
      } else if (honest_k >= 2) {
        diameter = DistanceMatrix(gradients.row(0), honest_k, dim, ctx.pool)
                       .diameter();
      }
    }

    RoundMetrics metrics;
    metrics.round = round;
    metrics.learning_rate = lr;
    metrics.mean_honest_loss = honest_loss;
    metrics.accuracy = [&] {
      BCL_TRACE_SPAN("evaluate");
      return evaluate_with(lane_models[0], global_params_, *test_,
                           config_.eval_max_examples);
    }();
    metrics.accuracy_min = metrics.accuracy;
    metrics.accuracy_max = metrics.accuracy;
    metrics.gradient_diameter = diameter;
    metrics.seconds = round_watch.seconds();

    // Star pricing over the cohort (member c is star id c, the virtual
    // server is id k): with a full cohort this is exactly the lockstep
    // pricing; at frac < 1 only the members' messages exist.
    StarWire star_wire;
    star_wire.uplink_bytes = upload_wire;
    star_wire.downlink_bytes = downlink_wire;
    StarDelivery delivery;
    if (delay_model != nullptr) {
      metrics.sim_seconds =
          star_round_latency(*delay_model, config_.net, k, byz_k, k - t_k,
                             round, star_wire, &delivery);
    }
    const double dense = static_cast<double>(dense_wire_bytes(dim));
    double bytes = 0.0;
    double bytes_dense = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (upload_wire[c] == 0) continue;
      if (!delivery.uplink.empty() && !delivery.uplink[c]) continue;
      bytes += static_cast<double>(upload_wire[c]);
      bytes_dense += dense;
    }
    if (advanced) {
      for (std::size_t c = 0; c < honest_k; ++c) {
        if (!delivery.downlink.empty() && !delivery.downlink[c]) continue;
        bytes += static_cast<double>(downlink_wire);
        bytes_dense += dense;
      }
    }
    metrics.bytes_delivered = bytes;
    metrics.bytes_dense = bytes_dense;
    metrics.live_clients = static_cast<double>(n);
    metrics.cohort = static_cast<double>(k);
    metrics.shards = static_cast<double>(effective_shards);
    metrics.degraded = advanced ? 0.0 : 1.0;
    publish_round_histograms(config_.metrics, metrics);
    result.history.push_back(metrics);
    if (config_.on_round) config_.on_round(result.history.back());
  }
  result.final_accuracy =
      result.history.empty() ? 0.0 : result.history.back().accuracy;
  return result;
}

}  // namespace bcl
