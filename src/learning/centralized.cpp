#include "learning/centralized.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "compression/codec.hpp"
#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"
#include "linalg/sparse_rows.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

CentralizedTrainer::CentralizedTrainer(TrainingConfig config,
                                       ModelFactory factory,
                                       const ml::Dataset* train,
                                       const ml::Dataset* test)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      train_(train),
      test_(test) {
  validate_config(config_);
  if (train_ == nullptr || test_ == nullptr) {
    throw std::invalid_argument("CentralizedTrainer: null dataset");
  }
}

TrainingResult CentralizedTrainer::run() {
  const std::size_t n = config_.num_clients;
  const std::size_t f = config_.num_byzantine;
  Rng root(config_.seed);

  // Partition data and build clients (one model replica each).
  Rng partition_rng = root.split(1);
  const auto shards =
      ml::partition_dataset(*train_, n, config_.heterogeneity, partition_rng);
  // Data-poisoning attacks (label-flip) corrupt the Byzantine shards at
  // setup: those clients then train honestly on a poisoned copy of the
  // training set, so their "own gradient" is already attacked.
  ml::Dataset poisoned_train;
  const ml::Dataset* byz_train = poison_byzantine_shards(
      *config_.attack, *train_, shards, f, poisoned_train);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, i < n - f ? train_ : byz_train, shards[i], factory_,
        config_.batch_size, root.split(100 + i)));
  }

  // Global model initialization.
  ml::Model server_model = factory_();
  Rng init_rng = root.split(2);
  server_model.initialize(init_rng);
  global_params_ = server_model.parameters();

  AggregationContext ctx;
  ctx.n = n;
  ctx.t = config_.resolved_t();
  ctx.pool = config_.pool;

  Rng attack_rng = root.split(3);
  TrainingResult result;
  result.history.reserve(config_.rounds);

  // Simulated network pricing of the server round (async NetConfig only):
  // clients upload over sampled links, the server waits for the quorum-th
  // arrival, then broadcasts back.  The virtual server is node id n.
  std::unique_ptr<DelayModel> delay_model;
  if (config_.net.async) delay_model = make_delay_model(config_.net, n);
  const std::size_t net_quorum = n - config_.resolved_t();

  // Gradient compression (the `comp=` dimension): honest uploads and the
  // server's broadcast go through the codec with error feedback, so the
  // dropped mass re-enters later rounds and sparsified training still
  // converges.  A null/identity codec takes the exact pre-codec code path
  // (bitwise-identical results); wire sizes are still accounted, dense.
  const Codec* codec =
      config_.codec != nullptr && !config_.codec->identity()
          ? config_.codec.get()
          : nullptr;
  ErrorFeedback error_feedback(n + 1);  // clients 0..n-1, server id n

  // All n gradients of a round live in one contiguous batch; clients write
  // their rows in place (parallel; disjoint rows), so gradients never pass
  // through intermediate per-client Vectors.  The honest rows occupy the
  // contiguous prefix [0, n - f).
  const std::size_t dim = server_model.parameter_count();
  GradientBatch gradients(n, dim);
  std::vector<double> losses(n, 0.0);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    Stopwatch round_watch;
    auto compute = [&](std::size_t i) {
      losses[i] = clients[i]->stochastic_gradient_into(global_params_,
                                                       gradients.row(i));
    };
    if (config_.pool != nullptr) {
      config_.pool->parallel_for(0, n, compute);
    } else {
      for (std::size_t i = 0; i < n; ++i) compute(i);
    }

    double honest_loss = 0.0;
    for (std::size_t i = 0; i < n - f; ++i) honest_loss += losses[i];
    honest_loss /= static_cast<double>(n - f);

    // EF-compress the honest uploads in place: the server (and the attack,
    // which observes wire traffic) sees the lossy decodes, and the encoded
    // forms keep the wire sizes and the sparse distance path below.
    std::vector<CompressedGradient> encoded_uploads;
    bool sparse_uploads = false;
    if (codec != nullptr) {
      encoded_uploads.reserve(n - f);
      sparse_uploads = true;
      for (std::size_t i = 0; i < n - f; ++i) {
        encoded_uploads.push_back(error_feedback.compress(
            *codec, config_.seed, i, round, gradients.row(i), dim));
        encoded_uploads.back().decode_into(gradients.row(i));
        sparse_uploads = sparse_uploads && encoded_uploads.back().sparse();
      }
    }

    // Byzantine submissions (the last f ids).  The attack interface speaks
    // VectorList, so the honest prefix is materialized only when there is a
    // Byzantine client to corrupt.  With a codec the adversary speaks the
    // wire format too: its corruption is serialized through the codec (no
    // error feedback — it is not trying to converge), because the server
    // rejects oversized dense uploads in a compressed protocol.
    VectorList corrupted_submissions;
    std::vector<CompressedGradient> encoded_byz;
    std::vector<std::size_t> upload_wire(n, dense_wire_bytes(dim));
    if (codec != nullptr) {
      for (std::size_t i = 0; i < n - f; ++i) {
        upload_wire[i] = encoded_uploads[i].wire_bytes();
      }
    }
    if (f > 0) {
      VectorList honest;
      honest.reserve(n - f);
      for (std::size_t i = 0; i < n - f; ++i) {
        honest.push_back(gradients.row_copy(i));
      }
      for (std::size_t i = n - f; i < n; ++i) {
        auto corrupted = config_.attack->corrupt(gradients.row_copy(i),
                                                 honest, round, attack_rng);
        if (!corrupted) {  // silent round: nothing on the wire
          upload_wire[i] = 0;
          continue;
        }
        if (codec != nullptr) {
          CompressedGradient encoded = codec->encode(
              corrupted->data(), dim, config_.seed, i, round);
          upload_wire[i] = encoded.wire_bytes();
          corrupted_submissions.push_back(encoded.decode());
          sparse_uploads = sparse_uploads && encoded.sparse();
          encoded_byz.push_back(std::move(encoded));
        } else {
          corrupted_submissions.push_back(std::move(*corrupted));
        }
      }
    }

    // The submitted inbox: with no Byzantine clients it is the gradient
    // batch itself; otherwise the honest prefix (one contiguous copy) plus
    // the corrupted rows.
    GradientBatch compacted;
    if (f > 0) {
      compacted = GradientBatch(n - f + corrupted_submissions.size(), dim);
      std::copy(gradients.row(0), gradients.row(0) + (n - f) * dim,
                compacted.row(0));
      for (std::size_t i = 0; i < corrupted_submissions.size(); ++i) {
        compacted.set_row(n - f + i, corrupted_submissions[i]);
      }
    }
    const GradientBatch& submitted = f > 0 ? compacted : gradients;

    // Server-side aggregation and SGD step.  The workspace is built once
    // per round over the submitted batch; the rule and the heterogeneity
    // metric below share its Gram-trick distance matrix.  When every
    // honest upload arrived top-k/rand-k sparse, the pairwise matrix is
    // built from the encoded forms through the sparse Gram kernels —
    // O(pairwise nnz) instead of O(m^2 * d) — and handed to the workspace
    // prebuilt (Byzantine rows ride along dense).
    std::optional<AggregationWorkspace> workspace;
    if (sparse_uploads) {
      SparseRows sparse(dim);
      for (const auto& encoded : encoded_uploads) {
        encoded.append_row_to(sparse);
      }
      for (const auto& encoded : encoded_byz) {
        encoded.append_row_to(sparse);
      }
      workspace.emplace(submitted, DistanceMatrix(sparse, ctx.pool),
                        ctx.pool);
    } else {
      workspace.emplace(submitted, ctx.pool);
    }
    Vector aggregate = config_.rule->aggregate(submitted, *workspace, ctx);

    // The model update travels back over the same constrained links: the
    // server EF-compresses its broadcast (id n), and every client applies
    // the lossy decode — with the identity codec this is a bitwise no-op.
    std::size_t downlink_wire = dense_wire_bytes(dim);
    if (codec != nullptr) {
      const CompressedGradient encoded = error_feedback.compress(
          *codec, config_.seed, n, round, aggregate.data(), dim);
      encoded.decode_into(aggregate.data());
      downlink_wire = encoded.wire_bytes();
    }
    const double lr = config_.schedule.rate(round);
    ml::sgd_step(global_params_, aggregate, lr);

    RoundMetrics metrics;
    metrics.round = round;
    metrics.learning_rate = lr;
    metrics.mean_honest_loss = honest_loss;
    metrics.accuracy = clients[0]->evaluate(global_params_, *test_,
                                            config_.eval_max_examples);
    metrics.accuracy_min = metrics.accuracy;
    metrics.accuracy_max = metrics.accuracy;
    metrics.disagreement = 0.0;
    // Honest submissions occupy the first n - f slots of `submitted`, so
    // when the rule already built the shared matrix the metric is a free
    // subset lookup; for distance-free rules run the Gram kernel over the
    // honest prefix only instead of forcing an O(m^2 * d) build over all
    // submissions.
    if (workspace->has_distances()) {
      std::vector<std::size_t> honest_ids(n - f);
      for (std::size_t i = 0; i < n - f; ++i) honest_ids[i] = i;
      metrics.gradient_diameter =
          workspace->distances().subset_diameter(honest_ids);
    } else {
      metrics.gradient_diameter =
          DistanceMatrix(gradients.row(0), n - f, dim, ctx.pool).diameter();
    }
    metrics.seconds = round_watch.seconds();

    // Price the star round and record which messages arrived.
    StarWire star_wire;
    star_wire.uplink_bytes = upload_wire;
    star_wire.downlink_bytes = downlink_wire;
    StarDelivery delivery;
    if (delay_model != nullptr) {
      metrics.sim_seconds = star_round_latency(*delay_model, config_.net, n,
                                               f, net_quorum, round,
                                               star_wire, &delivery);
    }

    // Delivered-byte accounting, consistent with the event engine's
    // NetworkStats: uploads/downlinks the star model dropped carry no
    // bytes (under sync nothing drops), and upload_wire[i] == 0 marks a
    // silent Byzantine round with nothing on the wire at all.
    const double dense = static_cast<double>(dense_wire_bytes(dim));
    double bytes = 0.0;
    double bytes_dense = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (upload_wire[i] == 0) continue;
      if (!delivery.uplink.empty() && !delivery.uplink[i]) continue;
      bytes += static_cast<double>(upload_wire[i]);
      bytes_dense += dense;
    }
    for (std::size_t i = 0; i < n - f; ++i) {
      if (!delivery.downlink.empty() && !delivery.downlink[i]) continue;
      bytes += static_cast<double>(downlink_wire);
      bytes_dense += dense;
    }
    metrics.bytes_delivered = bytes;
    metrics.bytes_dense = bytes_dense;
    result.history.push_back(metrics);
    if (config_.on_round) config_.on_round(result.history.back());
  }
  result.final_accuracy =
      result.history.empty() ? 0.0 : result.history.back().accuracy;
  return result;
}

}  // namespace bcl
