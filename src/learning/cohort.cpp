#include "learning/cohort.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "aggregation/registry.hpp"
#include "util/parse.hpp"

namespace bcl {
namespace {
const char* kContext = "CohortConfig::parse";

// Distinct from message_stream's 0xD6E8FEB86659FD93, codec_stream's
// 0xC0DEC0DEC0DEC0DE and the fault stream's salt: the cohort sample must
// not correlate with (or be perturbed by) any other subsystem's draws.
constexpr std::uint64_t kCohortStreamSalt = 0xA3C59AC1B2E01763ull;
}  // namespace

const std::vector<std::string>& cohort_config_keys() {
  static const std::vector<std::string> keys = {"shards", "root"};
  return keys;
}

CohortConfig CohortConfig::parse(const std::string& text) {
  CohortConfig out;
  if (text == "none") return out;

  // Leading token is the cohort fraction itself; the optional tail is a
  // comma-separated key=val list sharing the registries' strict parsing.
  const std::size_t comma = text.find(',');
  const std::string head = text.substr(0, comma);
  out.fraction = parse_strict_double(head, std::string(kContext) + ": frac");
  check_positive_fraction(out.fraction, "frac", kContext);
  if (comma != std::string::npos) {
    const SpecParams params =
        split_param_list(text.substr(comma + 1), kContext);
    reject_unknown_spec_params("cohort", params, cohort_config_keys(),
                               kContext);
    out.shards = spec_param_u64(params, "shards", out.shards, kContext);
    if (out.shards == 0) {
      throw std::invalid_argument(std::string(kContext) +
                                  ": shards must be >= 1");
    }
    if (const auto it = params.find("root"); it != params.end()) {
      out.root = it->second;
      // Eager validation with the registry's own menu-listing error.
      (void)make_rule(out.root);
    }
  }
  return out;
}

std::string CohortConfig::to_string() const {
  if (!enabled()) return "none";
  std::string out = format_double_g(fraction);
  if (shards != 1) out += ",shards=" + std::to_string(shards);
  if (!root.empty()) out += ",root=" + root;
  return out;
}

std::size_t CohortConfig::cohort_size(std::size_t n) const {
  if (!enabled() || n == 0) return n;
  const auto k = static_cast<std::size_t>(std::llround(
      fraction * static_cast<double>(n)));
  return std::min(n, std::max<std::size_t>(1, k));
}

Rng cohort_stream(std::uint64_t seed, std::size_t round) {
  std::uint64_t state = splitmix64(seed ^ kCohortStreamSalt);
  state = splitmix64(state ^ static_cast<std::uint64_t>(round));
  return Rng(state);
}

std::vector<std::size_t> sample_cohort(const CohortConfig& config,
                                       std::size_t n, std::uint64_t seed,
                                       std::size_t round) {
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t k = config.cohort_size(n);
  if (k < n) {
    // Partial Fisher-Yates: after i swaps the prefix ids[0..i) is a
    // uniform i-subset, so only k draws are consumed regardless of n.
    Rng rng = cohort_stream(seed, round);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + rng.uniform_u64(n - i);
      std::swap(ids[i], ids[j]);
    }
    ids.resize(k);
    std::sort(ids.begin(), ids.end());
  }
  return ids;
}

}  // namespace bcl
