#pragma once
// Centralized collaborative learning (Section 2.1): a trusted server holds
// the global model; every round each client computes a stochastic gradient
// at the global parameters, Byzantine clients corrupt theirs, the server
// aggregates all submissions with the configured rule and applies one SGD
// step.  Reproduces the Figure 1 / Figure 2 experiments.

#include "learning/client.hpp"
#include "learning/config.hpp"

namespace bcl {

class CentralizedTrainer {
 public:
  /// `train` and `test` must outlive the trainer.  Clients are created from
  /// the partition scheme in the config; the last f client ids are
  /// Byzantine.
  CentralizedTrainer(TrainingConfig config, ModelFactory factory,
                     const ml::Dataset* train, const ml::Dataset* test);

  /// Runs the full training loop; returns the per-round accuracy history of
  /// the global model.  Dispatches on the config: the default lockstep
  /// barrier loop, or the elastic bounded-staleness loop when faults= or
  /// stale= is set (run_elastic below).
  TrainingResult run();

  /// The global parameter vector (valid after run()).
  const Vector& parameters() const { return global_params_; }

 private:
  /// The pre-fault global-barrier loop, preserved verbatim: every client
  /// uploads every round, the server waits for all of them.  faults=none
  /// stale=none takes exactly this path (bitwise-equality is test-enforced).
  TrainingResult run_lockstep();

  /// Elastic membership + bounded staleness: a FaultPlan drives per-round
  /// liveness, clients own in-flight gradients that arrive after their
  /// straggler delay (or the attack's chosen staleness), the server steps
  /// on a quorum of arrivals at most tau versions old and skips (degraded)
  /// rounds below it — fixed round loop, so it can never hang.
  TrainingResult run_elastic();

  TrainingConfig config_;
  ModelFactory factory_;
  const ml::Dataset* train_;
  const ml::Dataset* test_;
  Vector global_params_;
};

}  // namespace bcl
