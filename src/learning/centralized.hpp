#pragma once
// Centralized collaborative learning (Section 2.1): a trusted server holds
// the global model; every round each client computes a stochastic gradient
// at the global parameters, Byzantine clients corrupt theirs, the server
// aggregates all submissions with the configured rule and applies one SGD
// step.  Reproduces the Figure 1 / Figure 2 experiments.

#include "learning/client.hpp"
#include "learning/config.hpp"

namespace bcl {

class CentralizedTrainer {
 public:
  /// `train` and `test` must outlive the trainer.  Clients are created from
  /// the partition scheme in the config; the last f client ids are
  /// Byzantine.
  CentralizedTrainer(TrainingConfig config, ModelFactory factory,
                     const ml::Dataset* train, const ml::Dataset* test);

  /// Runs the full training loop; returns the per-round accuracy history of
  /// the global model.
  TrainingResult run();

  /// The global parameter vector (valid after run()).
  const Vector& parameters() const { return global_params_; }

 private:
  TrainingConfig config_;
  ModelFactory factory_;
  const ml::Dataset* train_;
  const ml::Dataset* test_;
  Vector global_params_;
};

}  // namespace bcl
