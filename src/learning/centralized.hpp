#pragma once
// Centralized collaborative learning (Section 2.1): a trusted server holds
// the global model; every round each client computes a stochastic gradient
// at the global parameters, Byzantine clients corrupt theirs, the server
// aggregates all submissions with the configured rule and applies one SGD
// step.  Reproduces the Figure 1 / Figure 2 experiments.

#include "learning/client.hpp"
#include "learning/config.hpp"

namespace bcl {

class CentralizedTrainer {
 public:
  /// `train` and `test` must outlive the trainer.  Clients are created from
  /// the partition scheme in the config; the last f client ids are
  /// Byzantine.
  CentralizedTrainer(TrainingConfig config, ModelFactory factory,
                     const ml::Dataset* train, const ml::Dataset* test);

  /// Runs the full training loop; returns the per-round accuracy history of
  /// the global model.  Dispatches on the config: the default lockstep
  /// barrier loop, the elastic bounded-staleness loop when faults= or
  /// stale= is set (run_elastic below), or the streaming cohort loop when
  /// cohort= is set (run_cohort below).
  TrainingResult run();

  /// The global parameter vector (valid after run()).
  const Vector& parameters() const { return global_params_; }

 private:
  /// The pre-fault global-barrier loop, preserved verbatim: every client
  /// uploads every round, the server waits for all of them.  faults=none
  /// stale=none takes exactly this path (bitwise-equality is test-enforced).
  TrainingResult run_lockstep();

  /// Elastic membership + bounded staleness: a FaultPlan drives per-round
  /// liveness, clients own in-flight gradients that arrive after their
  /// straggler delay (or the attack's chosen staleness), the server steps
  /// on a quorum of arrivals at most tau versions old and skips (degraded)
  /// rounds below it — fixed round loop, so it can never hang.
  TrainingResult run_elastic();

  /// Streaming cohort loop (the cohort= dimension, built for the 10^4-10^6
  /// client axis): per-client state is O(1) each (a private RNG stream and
  /// the shard index list — no per-client model replica), each round draws
  /// its uploaders from cohort_stream, gradients stream through one
  /// O(cohort * d) batch computed by per-lane scratch models, and
  /// aggregation runs through the sharded hierarchy.  Mirrors
  /// run_lockstep's RNG-split and operation order exactly, so
  /// cohort=1.0,shards=1 replays it bitwise (test-enforced).
  TrainingResult run_cohort();

  TrainingConfig config_;
  ModelFactory factory_;
  const ml::Dataset* train_;
  const ml::Dataset* test_;
  Vector global_params_;
};

}  // namespace bcl
