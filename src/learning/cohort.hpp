#pragma once
// Cohort subsampling policy for the centralized trainer (the client-axis
// scale path: only a sampled subset of the m clients uploads per round,
// so round memory is O(cohort * d) instead of O(m * d)).
//
// cohort= grammar: "none" (every client uploads, the pre-cohort lockstep
// path) or "<frac>[,key=val,...]" — each round a deterministic sample of
// ceil-ish frac * n clients computes and uploads a gradient.  Keys:
//   shards  number of shard aggregators the cohort is split across
//           (>= 1, default 1 = flat aggregation).  Each shard runs the
//           scenario rule over its contiguous cohort slice; a root rule
//           aggregates the shard outputs (see aggregation/sharded.hpp).
//   root    aggregation rule applied over the shard outputs (default:
//           the scenario's own rule).  Validated eagerly against the
//           extended rule registry.
//
// The per-round sample is drawn from cohort_stream(seed, round) — its own
// salted stream, independent of the message/codec/fault streams — so a
// scenario replays bitwise serially and under --jobs regardless of how
// many other random draws a round makes.
//
// Parsed eagerly by the scenario grammar; parse(to_string()) round-trips.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace bcl {

struct CohortConfig {
  double fraction = 0.0;     ///< 0 = disabled (all clients upload).
  std::size_t shards = 1;    ///< shard aggregators over the cohort slice.
  std::string root;          ///< root rule name; empty = the scenario rule.

  /// True when a cohort fraction was configured.  Note fraction = 1.0 is
  /// *enabled*: the full membership uploads, but through the streaming
  /// cohort path (test-enforced bitwise identical to the lockstep path).
  bool enabled() const { return fraction > 0.0; }

  /// Parses "none" or "<frac>[,key=val,...]".  frac must be in (0, 1];
  /// shards must be >= 1; root must name a registered rule.  Unknown keys
  /// are rejected with the valid keys listed.
  static CohortConfig parse(const std::string& text);

  /// Canonical form: "none", or "<frac>" with only non-default keys
  /// appended; parse(to_string()) round-trips exactly.
  std::string to_string() const;

  /// Cohort size for an n-client round: max(1, round(fraction * n)),
  /// clamped to n.
  std::size_t cohort_size(std::size_t n) const;

  bool operator==(const CohortConfig& other) const = default;
};

/// Valid cohort= parameter keys, for menus and rejection lists.
const std::vector<std::string>& cohort_config_keys();

/// The cohort sampler's random stream for one round.  Salted with a
/// constant distinct from message_stream's, codec_stream's and
/// fault_stream's, so the sample is a pure function of (seed, round) — it
/// cannot drift when other subsystems consume more or fewer draws, which
/// is what makes serial and --jobs replays bitwise identical.
Rng cohort_stream(std::uint64_t seed, std::size_t round);

/// The round's cohort: k = config.cohort_size(n) distinct client ids
/// drawn via partial Fisher-Yates from cohort_stream(seed, round),
/// returned sorted ascending.  Ascending order keeps the honest members
/// in the batch prefix (Byzantine ids are the last f), which the
/// trainer's attack/metric paths rely on.
std::vector<std::size_t> sample_cohort(const CohortConfig& config,
                                       std::size_t n, std::uint64_t seed,
                                       std::size_t round);

}  // namespace bcl
