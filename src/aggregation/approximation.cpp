#include "aggregation/approximation.hpp"

#include <limits>
#include <stdexcept>

#include "geometry/subsets.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

namespace {

VectorList subset_points(const VectorList& inputs, std::size_t t,
                         ThreadPool* pool,
                         const std::function<Vector(const VectorList&)>& agg) {
  const std::size_t n = inputs.size();
  if (t >= n) {
    throw std::invalid_argument("subset_points: t must be < n");
  }
  const auto combos = all_combinations(n, n - t);
  VectorList points(combos.size());
  auto compute = [&](std::size_t c) {
    points[c] = agg(gather(inputs, combos[c]));
  };
  if (pool != nullptr && combos.size() > 1) {
    pool->parallel_for(0, combos.size(), compute);
  } else {
    for (std::size_t c = 0; c < combos.size(); ++c) compute(c);
  }
  return points;
}

ApproximationReport measure(const VectorList& candidate_set,
                            Vector true_aggregate, const Vector& output) {
  ApproximationReport report;
  report.true_aggregate = std::move(true_aggregate);
  report.covering_ball = minimum_enclosing_ball(candidate_set);
  report.distance_to_true = distance(output, report.true_aggregate);
  if (report.covering_ball.radius > 0.0) {
    report.ratio = report.distance_to_true / report.covering_ball.radius;
  } else {
    report.ratio = report.distance_to_true == 0.0
                       ? 0.0
                       : std::numeric_limits<double>::infinity();
  }
  return report;
}

}  // namespace

VectorList compute_sgeo(const VectorList& inputs, std::size_t t,
                        ThreadPool* pool, const WeiszfeldOptions& options) {
  return subset_points(inputs, t, pool, [options](const VectorList& subset) {
    return geometric_median_point(subset, options);
  });
}

VectorList compute_smean(const VectorList& inputs, std::size_t t,
                         ThreadPool* pool) {
  return subset_points(inputs, t, pool,
                       [](const VectorList& subset) { return mean(subset); });
}

ApproximationReport measure_geo_approximation(
    const VectorList& all_inputs, const VectorList& honest_inputs,
    std::size_t t, const Vector& output, ThreadPool* pool) {
  if (honest_inputs.empty()) {
    throw std::invalid_argument("measure_geo_approximation: no honest inputs");
  }
  return measure(compute_sgeo(all_inputs, t, pool),
                 geometric_median_point(honest_inputs), output);
}

ApproximationReport measure_mean_approximation(
    const VectorList& all_inputs, const VectorList& honest_inputs,
    std::size_t t, const Vector& output, ThreadPool* pool) {
  if (honest_inputs.empty()) {
    throw std::invalid_argument("measure_mean_approximation: no honest inputs");
  }
  return measure(compute_smean(all_inputs, t, pool), mean(honest_inputs),
                 output);
}

}  // namespace bcl
