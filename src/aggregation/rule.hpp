#pragma once
// Gradient aggregation rule interface.
//
// An aggregation rule maps the multiset of vectors a node (or the central
// server) received in one round to a single output vector.  In the
// centralized model the server applies a rule once per learning round; in
// the decentralized model every node applies a rule once per agreement
// sub-round (Section 2.1 of the paper).
//
// Rules have three entry points.  The legacy single-inbox form
// aggregate(received, ctx) stands alone; the workspace form
// aggregate(received, workspace, ctx) additionally receives the per-inbox
// AggregationWorkspace so distance-based rules share one pairwise
// DistanceMatrix instead of each recomputing it; the batch form
// aggregate(batch, workspace, ctx) consumes the contiguous GradientBatch
// layout, which is what the trainers and the agreement protocol feed the
// hot path (Gram-trick distances, blocked column reductions).  A rule
// overrides whichever forms are natural (at least one of the first two):
// the base class adapts each form to the others — the legacy default
// builds a fresh lazy workspace and dispatches to the workspace form; the
// workspace default ignores the workspace and dispatches to the legacy
// form; the batch default materializes the workspace's VectorList view
// (cached, at most once per inbox) and dispatches to the workspace form —
// so all entry points work on every rule and produce identical outputs.
// Overriding one form hides the base overload set on the concrete class,
// so rule classes re-expose it with `using AggregationRule::aggregate;`.

#include <cstddef>
#include <memory>
#include <string>

#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"

namespace bcl {

class ThreadPool;

namespace obs {
class MetricsRegistry;
}

/// Static system parameters every rule needs: the nominal number of clients
/// n and the Byzantine tolerance t (maximum faults designed for; the actual
/// fault count f <= t is unknown to the rule).
struct AggregationContext {
  std::size_t n = 0;
  std::size_t t = 0;
  /// Optional worker pool for subset-parallel rules; nullptr runs serially.
  ThreadPool* pool = nullptr;
  /// Optional per-scenario metrics registry; rules with data-dependent
  /// control flow (sketched screens) publish counters here (for example
  /// "sketch.certified" / "sketch.fallbacks").  nullptr publishes nothing.
  obs::MetricsRegistry* metrics = nullptr;

  /// Number of vectors every rule trusts to exist: n - t.
  std::size_t keep() const { return n - t; }
};

/// Interface for one-shot aggregation.  Implementations are stateless and
/// thread-compatible: a single instance may be used concurrently from many
/// nodes (each node passes its own workspace).
class AggregationRule {
 public:
  virtual ~AggregationRule() = default;

  /// Stable identifier used in tables and experiment configs (for example
  /// "BOX-GEOM").
  virtual std::string name() const = 0;

  /// Aggregates the received vectors.  `received.size()` must be at least
  /// ctx.keep(); rules throw std::invalid_argument otherwise.  The default
  /// builds a fresh lazy workspace (with ctx.pool attached) and dispatches
  /// to the workspace form.
  virtual Vector aggregate(const VectorList& received,
                           const AggregationContext& ctx) const;

  /// Workspace-aware aggregation: `workspace` must have been constructed
  /// over `received`.  The default adapter ignores the workspace and calls
  /// the legacy form, so rules that never consume pairwise distances need
  /// not override it.  A rule overriding neither this nor the legacy form
  /// gets a std::logic_error instead of unbounded mutual recursion.
  virtual Vector aggregate(const VectorList& received,
                           AggregationWorkspace& workspace,
                           const AggregationContext& ctx) const;

  /// Batch-native aggregation over the contiguous layout: `workspace` must
  /// have been constructed over `batch`.  The default adapter dispatches to
  /// the workspace form through the workspace's cached VectorList view, so
  /// every rule accepts a batch; the hot rules (mean, Krum family, medoid,
  /// MD rules, coordinate-wise reductions) override it to run entirely on
  /// flat buffers.
  virtual Vector aggregate(const GradientBatch& batch,
                           AggregationWorkspace& workspace,
                           const AggregationContext& ctx) const;
  // (No two-argument batch convenience: overloading aggregate(received,
  // ctx) on a second one-argument-constructible type would make braced
  // inbox literals ambiguous.  Batch callers hold a workspace anyway.)

 protected:
  /// Shared argument validation: non-empty, same dimension, enough vectors.
  static std::size_t validate(const VectorList& received,
                              const AggregationContext& ctx);

  /// Batch-form validation: same bounds and finiteness checks over the
  /// contiguous layout.
  static std::size_t validate(const GradientBatch& batch,
                              const AggregationContext& ctx);

  /// Enforces the batch-form precondition that `workspace` was built over
  /// `batch` (throws std::invalid_argument otherwise).  Every batch
  /// override calls this, so a workspace carrying another inbox's distance
  /// matrix fails loudly instead of silently skewing the aggregate.
  static void check_batch_workspace(const GradientBatch& batch,
                                    const AggregationWorkspace& workspace);
};

using AggregationRulePtr = std::shared_ptr<const AggregationRule>;

}  // namespace bcl
