#pragma once
// Gradient aggregation rule interface.
//
// An aggregation rule maps the multiset of vectors a node (or the central
// server) received in one round to a single output vector.  In the
// centralized model the server applies a rule once per learning round; in
// the decentralized model every node applies a rule once per agreement
// sub-round (Section 2.1 of the paper).
//
// Rules have two entry points.  The legacy single-inbox form
// aggregate(received, ctx) stands alone; the workspace form
// aggregate(received, workspace, ctx) additionally receives the per-inbox
// AggregationWorkspace so distance-based rules share one pairwise
// DistanceMatrix instead of each recomputing it.  A rule overrides
// whichever form is natural (at least one): the base class adapts each
// form to the other — the legacy default builds a fresh lazy workspace and
// dispatches to the workspace form; the workspace default ignores the
// workspace and dispatches to the legacy form — so both entry points work
// on every rule and produce identical outputs.  Overriding one form hides
// the base overload set on the concrete class, so rule classes re-expose
// it with `using AggregationRule::aggregate;`.

#include <cstddef>
#include <memory>
#include <string>

#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"

namespace bcl {

class ThreadPool;

/// Static system parameters every rule needs: the nominal number of clients
/// n and the Byzantine tolerance t (maximum faults designed for; the actual
/// fault count f <= t is unknown to the rule).
struct AggregationContext {
  std::size_t n = 0;
  std::size_t t = 0;
  /// Optional worker pool for subset-parallel rules; nullptr runs serially.
  ThreadPool* pool = nullptr;

  /// Number of vectors every rule trusts to exist: n - t.
  std::size_t keep() const { return n - t; }
};

/// Interface for one-shot aggregation.  Implementations are stateless and
/// thread-compatible: a single instance may be used concurrently from many
/// nodes (each node passes its own workspace).
class AggregationRule {
 public:
  virtual ~AggregationRule() = default;

  /// Stable identifier used in tables and experiment configs (for example
  /// "BOX-GEOM").
  virtual std::string name() const = 0;

  /// Aggregates the received vectors.  `received.size()` must be at least
  /// ctx.keep(); rules throw std::invalid_argument otherwise.  The default
  /// builds a fresh lazy workspace (with ctx.pool attached) and dispatches
  /// to the workspace form.
  virtual Vector aggregate(const VectorList& received,
                           const AggregationContext& ctx) const;

  /// Workspace-aware aggregation: `workspace` must have been constructed
  /// over `received`.  The default adapter ignores the workspace and calls
  /// the legacy form, so rules that never consume pairwise distances need
  /// not override it.  A rule overriding neither form gets a
  /// std::logic_error instead of unbounded mutual recursion.
  virtual Vector aggregate(const VectorList& received,
                           AggregationWorkspace& workspace,
                           const AggregationContext& ctx) const;

 protected:
  /// Shared argument validation: non-empty, same dimension, enough vectors.
  static std::size_t validate(const VectorList& received,
                              const AggregationContext& ctx);
};

using AggregationRulePtr = std::shared_ptr<const AggregationRule>;

}  // namespace bcl
