#pragma once
// Gradient aggregation rule interface.
//
// An aggregation rule maps the multiset of vectors a node (or the central
// server) received in one round to a single output vector.  In the
// centralized model the server applies a rule once per learning round; in
// the decentralized model every node applies a rule once per agreement
// sub-round (Section 2.1 of the paper).

#include <cstddef>
#include <memory>
#include <string>

#include "linalg/vector_ops.hpp"

namespace bcl {

class ThreadPool;

/// Static system parameters every rule needs: the nominal number of clients
/// n and the Byzantine tolerance t (maximum faults designed for; the actual
/// fault count f <= t is unknown to the rule).
struct AggregationContext {
  std::size_t n = 0;
  std::size_t t = 0;
  /// Optional worker pool for subset-parallel rules; nullptr runs serially.
  ThreadPool* pool = nullptr;

  /// Number of vectors every rule trusts to exist: n - t.
  std::size_t keep() const { return n - t; }
};

/// Interface for one-shot aggregation.  Implementations are stateless and
/// thread-compatible: a single instance may be used concurrently from many
/// nodes.
class AggregationRule {
 public:
  virtual ~AggregationRule() = default;

  /// Stable identifier used in tables and experiment configs (for example
  /// "BOX-GEOM").
  virtual std::string name() const = 0;

  /// Aggregates the received vectors.  `received.size()` must be at least
  /// ctx.keep(); rules throw std::invalid_argument otherwise.
  virtual Vector aggregate(const VectorList& received,
                           const AggregationContext& ctx) const = 0;

 protected:
  /// Shared argument validation: non-empty, same dimension, enough vectors.
  static std::size_t validate(const VectorList& received,
                              const AggregationContext& ctx);
};

using AggregationRulePtr = std::shared_ptr<const AggregationRule>;

}  // namespace bcl
