#include "aggregation/registry.hpp"

#include <stdexcept>

#include "util/parse.hpp"

#include "aggregation/hyperbox_rules.hpp"
#include "aggregation/krum.hpp"
#include "aggregation/minimum_diameter_rules.hpp"
#include "aggregation/robust_baselines.hpp"
#include "aggregation/simple_rules.hpp"
#include "aggregation/sketched.hpp"

namespace bcl {

namespace {

// Strict suffix parse for the MULTIKRUM-<q> families: the whole suffix
// must be a positive integer ("MULTIKRUM-3x" and "MULTIKRUM-1.9" are not
// silently truncated, "MULTIKRUM-0" has no selection).  A malformed
// suffix falls through to the unknown-name error so the caller always
// sees the full menu.
bool parse_rule_q(const std::string& q_str, std::size_t& q) {
  try {
    q = static_cast<std::size_t>(parse_strict_u64(q_str, "make_rule"));
  } catch (const std::invalid_argument&) {
    return false;
  }
  return q > 0;
}

}  // namespace

AggregationRulePtr make_rule(const std::string& name) {
  if (name == "MEAN") return std::make_shared<MeanRule>();
  if (name == "GEOMED") return std::make_shared<GeometricMedianRule>();
  if (name == "MEDOID") return std::make_shared<MedoidRule>();
  if (name == "CW-MEDIAN") return std::make_shared<CoordinatewiseMedianRule>();
  if (name == "TRIM-MEAN") return std::make_shared<TrimmedMeanRule>();
  if (name == "KRUM") return std::make_shared<KrumRule>();
  if (name == "MD-MEAN") return std::make_shared<MinimumDiameterMeanRule>();
  if (name == "MD-GEOM") return std::make_shared<MinimumDiameterGeoMedianRule>();
  if (name == "BOX-MEAN") return std::make_shared<BoxMeanRule>();
  if (name == "BOX-GEOM") return std::make_shared<BoxGeoMedianRule>();
  if (name == "RFA") return std::make_shared<RfaRule>();
  if (name == "CCLIP") return std::make_shared<CenteredClippingRule>();
  if (name == "NORM-CLIP") return std::make_shared<NormClippingRule>();
  if (name == "SKETCH-KRUM") return std::make_shared<SketchedKrumRule>();
  if (name == "SKETCH-MD-MEAN") return std::make_shared<SketchedMdMeanRule>();
  constexpr const char* kSketchMkPrefix = "SKETCH-MULTIKRUM-";
  if (name.rfind(kSketchMkPrefix, 0) == 0) {
    std::size_t q = 0;
    if (parse_rule_q(name.substr(std::string(kSketchMkPrefix).size()), q)) {
      return std::make_shared<SketchedMultiKrumRule>(q);
    }
  }
  constexpr const char* kPrefix = "MULTIKRUM-";
  if (name.rfind(kPrefix, 0) == 0) {
    std::size_t q = 0;
    if (parse_rule_q(name.substr(std::string(kPrefix).size()), q)) {
      return std::make_shared<MultiKrumRule>(q);
    }
  }
  std::vector<std::string> valid = all_rule_names();
  const auto extended = extended_rule_names();
  valid.insert(valid.end(), extended.begin(), extended.end());
  valid.push_back("MULTIKRUM-<q>");
  valid.push_back("SKETCH-MULTIKRUM-<q>");
  throw std::invalid_argument("make_rule: unknown rule '" + name +
                              "' (valid: " + join_names(valid) + ")");
}

std::vector<std::string> all_rule_names() {
  return {"MEAN",      "GEOMED",  "MEDOID",  "CW-MEDIAN",  "TRIM-MEAN",
          "KRUM",      "MULTIKRUM-3", "MD-MEAN", "MD-GEOM", "BOX-MEAN",
          "BOX-GEOM"};
}

std::vector<std::string> extended_rule_names() {
  return {"RFA",         "CCLIP",              "NORM-CLIP",
          "SKETCH-KRUM", "SKETCH-MULTIKRUM-3", "SKETCH-MD-MEAN"};
}

}  // namespace bcl
