#include "aggregation/registry.hpp"

#include <stdexcept>

#include "util/parse.hpp"

#include "aggregation/hyperbox_rules.hpp"
#include "aggregation/krum.hpp"
#include "aggregation/minimum_diameter_rules.hpp"
#include "aggregation/robust_baselines.hpp"
#include "aggregation/simple_rules.hpp"

namespace bcl {

AggregationRulePtr make_rule(const std::string& name) {
  if (name == "MEAN") return std::make_shared<MeanRule>();
  if (name == "GEOMED") return std::make_shared<GeometricMedianRule>();
  if (name == "MEDOID") return std::make_shared<MedoidRule>();
  if (name == "CW-MEDIAN") return std::make_shared<CoordinatewiseMedianRule>();
  if (name == "TRIM-MEAN") return std::make_shared<TrimmedMeanRule>();
  if (name == "KRUM") return std::make_shared<KrumRule>();
  if (name == "MD-MEAN") return std::make_shared<MinimumDiameterMeanRule>();
  if (name == "MD-GEOM") return std::make_shared<MinimumDiameterGeoMedianRule>();
  if (name == "BOX-MEAN") return std::make_shared<BoxMeanRule>();
  if (name == "BOX-GEOM") return std::make_shared<BoxGeoMedianRule>();
  if (name == "RFA") return std::make_shared<RfaRule>();
  if (name == "CCLIP") return std::make_shared<CenteredClippingRule>();
  if (name == "NORM-CLIP") return std::make_shared<NormClippingRule>();
  constexpr const char* kPrefix = "MULTIKRUM-";
  if (name.rfind(kPrefix, 0) == 0) {
    const std::string q_str = name.substr(std::string(kPrefix).size());
    const std::size_t q = static_cast<std::size_t>(std::stoul(q_str));
    return std::make_shared<MultiKrumRule>(q);
  }
  std::vector<std::string> valid = all_rule_names();
  const auto extended = extended_rule_names();
  valid.insert(valid.end(), extended.begin(), extended.end());
  valid.push_back("MULTIKRUM-<q>");
  throw std::invalid_argument("make_rule: unknown rule '" + name +
                              "' (valid: " + join_names(valid) + ")");
}

std::vector<std::string> all_rule_names() {
  return {"MEAN",      "GEOMED",  "MEDOID",  "CW-MEDIAN",  "TRIM-MEAN",
          "KRUM",      "MULTIKRUM-3", "MD-MEAN", "MD-GEOM", "BOX-MEAN",
          "BOX-GEOM"};
}

std::vector<std::string> extended_rule_names() {
  return {"RFA", "CCLIP", "NORM-CLIP"};
}

}  // namespace bcl
