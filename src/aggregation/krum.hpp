#pragma once
// Krum and Multi-Krum (Blanchard et al. 2017), as defined in Section 2.2 of
// the paper (Equations 3 and 4).
//
// Krum selects the received vector whose summed distance to its n - t - 1
// closest neighbours is smallest; Multi-Krum averages the q best-scoring
// vectors.  Theorem 4.3 shows both have unbounded approximation ratio with
// respect to the geometric median; they are implemented here as the
// comparison baselines of the centralized evaluation (Figures 1 and 2).

#include "aggregation/rule.hpp"

namespace bcl {

/// Distance flavour for the Krum score.  The paper's Equation 3 sums plain
/// Euclidean distances; Blanchard et al.'s original formulation sums
/// squared distances.  Both are provided; the ranking can differ.
enum class KrumScore { Euclidean, Squared };

/// Krum scores: score[i] = sum of (squared) distances from received[i] to
/// its `closest` nearest other vectors.
std::vector<double> krum_scores(const VectorList& received,
                                std::size_t closest, KrumScore flavour);

/// Krum scores from a precomputed pairwise distance matrix; identical to
/// the VectorList form, without the O(m^2 * d) distance recomputation.
std::vector<double> krum_scores(const DistanceMatrix& dist,
                                std::size_t closest, KrumScore flavour);

class KrumRule final : public AggregationRule {
 public:
  explicit KrumRule(KrumScore flavour = KrumScore::Euclidean)
      : flavour_(flavour) {}
  std::string name() const override { return "KRUM"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  KrumScore flavour_;
};

class MultiKrumRule final : public AggregationRule {
 public:
  /// `q` is the number of best-scoring vectors averaged (the paper's
  /// evaluation uses q = 3).
  explicit MultiKrumRule(std::size_t q,
                         KrumScore flavour = KrumScore::Euclidean)
      : q_(q), flavour_(flavour) {}
  std::string name() const override {
    return "MULTIKRUM-" + std::to_string(q_);
  }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  std::size_t q_;
  KrumScore flavour_;
};

}  // namespace bcl
