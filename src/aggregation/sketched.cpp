#include "aggregation/sketched.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "aggregation/krum.hpp"
#include "geometry/min_diameter.hpp"
#include "linalg/sketch.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace bcl {
namespace {

// C_i of Equation 3: the n - t - 1 closest neighbours, clamped to m - 1.
std::size_t closest_count(std::size_t m, const AggregationContext& ctx) {
  return std::min(m - 1, ctx.keep() > 0 ? ctx.keep() - 1 : 0);
}

// Whether the sketch path applies at all: a k-dimensional projection of a
// <= k dimensional input saves nothing, and degenerate inboxes (m < 3)
// have no selection to approximate.
bool sketchable(const GradientBatch& batch, const SketchOptions& options) {
  return !options.force_fallback && batch.dim() > options.k &&
         batch.rows() >= 3;
}

// Indices 0..m-1 sorted ascending by score (stable, like multikrum_order).
std::vector<std::size_t> score_order(const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(
      order.begin(), order.end(),
      [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  return order;
}

// The sketch certifies the cut `below < above` when it holds for every
// pair of exact scores consistent with the sketched values.  Each sketched
// score lies within (1 +- eps) of its exact counterpart, so the worst
// case pits below/(1 - eps) against above/(1 + eps); rearranged, the cut
// is certified iff
//     above - below > eps * (above + below).
// (The previous form, gap > factor * eps * max(below, above), could never
// hold for non-negative scores once factor * eps >= 1 — i.e. for every
// m >= 8 at the default k — so the screen silently fell back on every
// input and the sketch only ever added cost.)  margin_factor scales eps
// for extra conservatism; an effective eps >= 1 still can never certify,
// which is the correct degenerate behaviour when k is too small for m.
bool margin_resolved(double below, double above, double eps, double factor) {
  if (!std::isfinite(below) || !std::isfinite(above)) return false;
  const double err = factor * eps;
  return (above - below) > err * (above + below);
}

// Publishes one screen outcome to the scenario registry ("sketch.certified"
// / "sketch.fallbacks") and, on fallback, the reason at Debug level so tests
// and post-mortems can assert why the exact path ran.
void publish_certified(const AggregationContext& ctx) {
  if (ctx.metrics != nullptr) ctx.metrics->counter("sketch.certified").add();
}

void publish_fallback(const AggregationContext& ctx, const char* rule,
                      const char* reason) {
  if (ctx.metrics != nullptr) ctx.metrics->counter("sketch.fallbacks").add();
  log_debug() << rule << ": sketch fallback (" << reason << ")";
}

}  // namespace

// The list forms repack into the contiguous layout and reuse the batch
// implementation: sketch application wants flat rows, and on fallback a
// fresh exact workspace over the packed batch costs the same O(m^2 * d)
// the borrowed one would.
Vector SketchedKrumRule::aggregate(const VectorList& received,
                                   AggregationWorkspace& workspace,
                                   const AggregationContext& ctx) const {
  (void)workspace;
  const GradientBatch batch = GradientBatch::from(received);
  AggregationWorkspace batch_ws(batch, ctx.pool);
  return aggregate(batch, batch_ws, ctx);
}

Vector SketchedMultiKrumRule::aggregate(const VectorList& received,
                                        AggregationWorkspace& workspace,
                                        const AggregationContext& ctx) const {
  (void)workspace;
  const GradientBatch batch = GradientBatch::from(received);
  AggregationWorkspace batch_ws(batch, ctx.pool);
  return aggregate(batch, batch_ws, ctx);
}

Vector SketchedMdMeanRule::aggregate(const VectorList& received,
                                     AggregationWorkspace& workspace,
                                     const AggregationContext& ctx) const {
  (void)workspace;
  const GradientBatch batch = GradientBatch::from(received);
  AggregationWorkspace batch_ws(batch, ctx.pool);
  return aggregate(batch, batch_ws, ctx);
}

Vector SketchedKrumRule::aggregate(const GradientBatch& batch,
                                   AggregationWorkspace& workspace,
                                   const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  const std::size_t m = batch.rows();
  const std::size_t closest = closest_count(m, ctx);
  if (closest == 0) return batch.row_copy(0);

  const auto exact = [&]() {
    const auto scores =
        krum_scores(workspace.distances(), closest, KrumScore::Euclidean);
    return batch.row_copy(static_cast<std::size_t>(
        std::min_element(scores.begin(), scores.end()) - scores.begin()));
  };
  if (!sketchable(batch, options_)) {
    publish_fallback(ctx, "SKETCH-KRUM", "not sketchable");
    return exact();
  }

  const RademacherSketch sketch(batch.dim(), options_.k, options_.seed);
  const DistanceMatrix approx = sketched_distances(batch, sketch, ctx.pool);
  const auto scores = krum_scores(approx, closest, KrumScore::Euclidean);
  const auto order = score_order(scores);
  if (!margin_resolved(scores[order[0]], scores[order[1]],
                       sketch.relative_error(m), options_.margin_factor)) {
    publish_fallback(ctx, "SKETCH-KRUM", "uncertified margin");
    return exact();
  }
  publish_certified(ctx);
  return batch.row_copy(order[0]);
}

Vector SketchedMultiKrumRule::aggregate(const GradientBatch& batch,
                                        AggregationWorkspace& workspace,
                                        const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  if (q_ == 0) {
    throw std::invalid_argument("SketchedMultiKrum: q must be positive");
  }
  const std::size_t m = batch.rows();
  const std::size_t closest = closest_count(m, ctx);
  if (closest == 0) return batch.row_copy(0);
  const std::size_t take = std::min(q_, m);

  const auto select = [&](const std::vector<double>& scores) {
    auto order = score_order(scores);
    order.resize(take);
    return mean_of_rows(batch, order);
  };
  const auto exact = [&]() {
    return select(
        krum_scores(workspace.distances(), closest, KrumScore::Euclidean));
  };
  if (!sketchable(batch, options_)) {
    publish_fallback(ctx, "SKETCH-MULTIKRUM", "not sketchable");
    return exact();
  }

  const RademacherSketch sketch(batch.dim(), options_.k, options_.seed);
  const DistanceMatrix approx = sketched_distances(batch, sketch, ctx.pool);
  const auto scores = krum_scores(approx, closest, KrumScore::Euclidean);
  const auto order = score_order(scores);
  // The cut sits between the q-th and (q+1)-th best; a full selection
  // (take == m) has no cut to certify.
  if (take < m &&
      !margin_resolved(scores[order[take - 1]], scores[order[take]],
                       sketch.relative_error(m), options_.margin_factor)) {
    publish_fallback(ctx, "SKETCH-MULTIKRUM", "uncertified margin");
    return exact();
  }
  publish_certified(ctx);
  auto selection = order;
  selection.resize(take);
  return mean_of_rows(batch, selection);
}

Vector SketchedMdMeanRule::aggregate(const GradientBatch& batch,
                                     AggregationWorkspace& workspace,
                                     const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  const std::size_t keep = ctx.keep();

  const auto exact = [&]() {
    const auto md = min_diameter_subset(workspace.distances(), keep);
    return mean_of_rows(batch, md.indices);
  };
  if (!sketchable(batch, options_) || keep >= batch.rows()) {
    publish_fallback(ctx, "SKETCH-MD-MEAN", "not sketchable");
    return exact();
  }

  const RademacherSketch sketch(batch.dim(), options_.k, options_.seed);
  const DistanceMatrix approx = sketched_distances(batch, sketch, ctx.pool);
  // Every subset's exact diameter lies within (1 +- eps) of its sketched
  // diameter, so a competing subset could beat the sketched optimum
  // whenever its sketched diameter is below opt * (1 + eps) / (1 - eps).
  // The argmin is certified only when that band holds the optimum alone.
  const double eps =
      options_.margin_factor * sketch.relative_error(batch.rows());
  if (eps >= 1.0) {  // the band is unbounded: nothing certifies
    publish_fallback(ctx, "SKETCH-MD-MEAN", "margin band unbounded");
    return exact();
  }
  const auto candidates =
      min_diameter_subsets(approx, keep, 2.0 * eps / (1.0 - eps));
  if (candidates.size() != 1) {
    publish_fallback(ctx, "SKETCH-MD-MEAN", "ambiguous subset");
    return exact();
  }
  publish_certified(ctx);
  return mean_of_rows(batch, candidates.front().indices);
}

}  // namespace bcl
