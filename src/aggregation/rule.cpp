#include "aggregation/rule.hpp"

#include <cmath>
#include <stdexcept>

namespace bcl {

Vector AggregationRule::aggregate(const VectorList& received,
                                  const AggregationContext& ctx) const {
  AggregationWorkspace workspace(received, ctx.pool);
  return aggregate(received, workspace, ctx);
}

Vector AggregationRule::aggregate(const VectorList& received,
                                  AggregationWorkspace& workspace,
                                  const AggregationContext& ctx) const {
  if (workspace.size() != received.size()) {
    throw std::invalid_argument(
        "aggregate: workspace was built over a different inbox");
  }
  // The two aggregate() defaults adapt to each other; a rule implementing
  // neither would bounce between them forever.  Detect the re-entry and
  // fail loudly instead.
  thread_local const AggregationRule* adapting = nullptr;
  if (adapting == this) {
    throw std::logic_error(
        "AggregationRule: rule overrides neither aggregate() form");
  }
  const AggregationRule* const previous = adapting;
  adapting = this;
  struct Reset {
    const AggregationRule** slot;
    const AggregationRule* saved;
    ~Reset() { *slot = saved; }
  } reset{&adapting, previous};
  return aggregate(received, ctx);
}

Vector AggregationRule::aggregate(const GradientBatch& batch,
                                  AggregationWorkspace& workspace,
                                  const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  return aggregate(workspace.points(), workspace, ctx);
}

void AggregationRule::check_batch_workspace(
    const GradientBatch& batch, const AggregationWorkspace& workspace) {
  if (workspace.batch() != &batch) {
    throw std::invalid_argument(
        "aggregate: workspace was built over a different batch");
  }
}

namespace {

void validate_bounds(std::size_t m, const AggregationContext& ctx) {
  if (ctx.n == 0) {
    throw std::invalid_argument("AggregationContext: n must be positive");
  }
  if (ctx.t >= ctx.n) {
    throw std::invalid_argument("AggregationContext: t must be < n");
  }
  if (m < ctx.keep()) {
    throw std::invalid_argument(
        "aggregate: fewer than n - t vectors received");
  }
  if (m > ctx.n) {
    throw std::invalid_argument("aggregate: more than n vectors received");
  }
}

}  // namespace

std::size_t AggregationRule::validate(const VectorList& received,
                                      const AggregationContext& ctx) {
  validate_bounds(received.size(), ctx);
  const std::size_t d = check_same_dimension(received);
  if (d == 0) throw std::invalid_argument("aggregate: zero-dimensional input");
  // A Byzantine NaN/Inf would silently poison every arithmetic rule (NaN
  // propagates through means, medians and distances alike); reject at the
  // boundary so callers get a diagnosable error instead of a NaN model.
  for (const auto& v : received) {
    for (double x : v) {
      if (!std::isfinite(x)) {
        throw std::invalid_argument(
            "aggregate: received vector contains a non-finite value");
      }
    }
  }
  return d;
}

std::size_t AggregationRule::validate(const GradientBatch& batch,
                                      const AggregationContext& ctx) {
  validate_bounds(batch.rows(), ctx);
  const std::size_t d = batch.dim();
  if (d == 0) throw std::invalid_argument("aggregate: zero-dimensional input");
  // Row-based walk so borrowed view batches (no flat buffer) validate the
  // same way as owned ones; for a contiguous batch this visits the same
  // doubles in the same order as the flat scan it replaced.
  for (std::size_t i = 0; i < batch.rows(); ++i) {
    const double* row = batch.row(i);
    for (std::size_t k = 0; k < d; ++k) {
      if (!std::isfinite(row[k])) {
        throw std::invalid_argument(
            "aggregate: received vector contains a non-finite value");
      }
    }
  }
  return d;
}

}  // namespace bcl
