#pragma once
// Shared Byzantine-budget arithmetic.
//
// Several layers clamp the designed fault budget t to what a thinner
// inbox can actually tolerate: the centralized elastic loop (a quorum of
// `rows` submissions may be far below n), the cohort path (only a sampled
// subset uploads), and the sharded aggregator (each shard sees a slice).
// They must all use the same rule — t bounded by the t < rows/3
// resilience condition, i.e. at most (rows - 1) / 3 faults among `rows`
// inputs — so the clamp lives here instead of being re-derived per call
// site.

#include <algorithm>
#include <cstddef>

namespace bcl {

/// The largest Byzantine budget an aggregation over `rows` inputs can
/// honour: min(t, (rows - 1) / 3), and 0 when there are fewer than two
/// rows (a singleton inbox tolerates nothing).
inline std::size_t clamp_byzantine_budget(std::size_t t, std::size_t rows) {
  return std::min(t, rows > 1 ? (rows - 1) / 3 : std::size_t{0});
}

/// Per-shard slice of a global budget t when `rows` inputs are split into
/// `shards` contiguous slices: the adversary may concentrate every fault
/// into one slice, so each shard must budget for all t (clamped to its own
/// slice size by clamp_byzantine_budget at the call site).  The *root*
/// aggregation over the shard outputs budgets for the number of shard
/// outputs the adversary could corrupt outright — one per fault, since a
/// single Byzantine member can already deny its shard's resilience
/// condition in the worst split — clamped to what `shards` outputs
/// tolerate.
inline std::size_t root_byzantine_budget(std::size_t t, std::size_t shards) {
  return clamp_byzantine_budget(std::min(t, shards), shards);
}

}  // namespace bcl
