#pragma once
// Name-based factory for aggregation rules, used by experiment configs,
// scenario specs, examples and bench harnesses ("--rule BOX-GEOM").  The
// attack registry (attacks/registry.hpp) mirrors this interface, so rules
// and attacks are selected with the same string-keyed idiom everywhere.
//
// Name grammar: a canonical upper-case name, plus the parameterized
// families MULTIKRUM-<q> / SKETCH-MULTIKRUM-<q> where <q> is the selection
// size (a strictly-parsed positive integer, e.g. MULTIKRUM-3, the paper's
// configuration; malformed suffixes reject with the full menu).

#include <string>
#include <vector>

#include "aggregation/rule.hpp"

namespace bcl {

/// Creates a rule by its canonical name: MEAN, GEOMED, MEDOID, CW-MEDIAN,
/// TRIM-MEAN, KRUM, MULTIKRUM-<q>, MD-MEAN, MD-GEOM, BOX-MEAN, BOX-GEOM,
/// plus the extended baselines RFA, CCLIP, NORM-CLIP.  The returned rule is
/// immutable and safe to share across threads/rounds.  Throws
/// std::invalid_argument for unknown names; the message lists every valid
/// name so sweep typos fail with the menu attached.
AggregationRulePtr make_rule(const std::string& name);

/// All canonical rule names (MULTIKRUM listed as MULTIKRUM-3, the paper's
/// configuration).  Every entry constructs: make_rule(n) succeeds for each
/// n returned.
std::vector<std::string> all_rule_names();

/// The additional rules beyond the paper's set: robust baselines from the
/// wider literature (RFA, CCLIP, NORM-CLIP), used by the ablation benches,
/// and the sketched-distance variants (SKETCH-KRUM, SKETCH-MULTIKRUM-<q>,
/// SKETCH-MD-MEAN) for the large-cohort path.  NORM-CLIP is intentionally
/// not translation-equivariant (it clips norms measured from the origin),
/// so it is kept out of all_rule_names().
std::vector<std::string> extended_rule_names();

}  // namespace bcl
