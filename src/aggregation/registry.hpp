#pragma once
// Name-based factory for aggregation rules, used by experiment configs,
// examples and bench harnesses ("--rule BOX-GEOM").

#include <vector>

#include "aggregation/rule.hpp"

namespace bcl {

/// Creates a rule by its canonical name: MEAN, GEOMED, MEDOID, CW-MEDIAN,
/// TRIM-MEAN, KRUM, MULTIKRUM-<q>, MD-MEAN, MD-GEOM, BOX-MEAN, BOX-GEOM.
/// Throws std::invalid_argument for unknown names.
AggregationRulePtr make_rule(const std::string& name);

/// All canonical rule names (MULTIKRUM listed as MULTIKRUM-3, the paper's
/// configuration).
std::vector<std::string> all_rule_names();

/// The additional robust baselines from the wider literature (RFA, CCLIP,
/// NORM-CLIP), used by the ablation benches.  NORM-CLIP is intentionally
/// not translation-equivariant (it clips norms measured from the origin),
/// so it is kept out of all_rule_names().
std::vector<std::string> extended_rule_names();

}  // namespace bcl
