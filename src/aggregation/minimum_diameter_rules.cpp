#include "aggregation/minimum_diameter_rules.hpp"

#include "geometry/min_diameter.hpp"
#include "geometry/subsets.hpp"

namespace bcl {

namespace {

// Subset rows of a batch as a standalone VectorList (for consumers like
// Weiszfeld that iterate a point list).
VectorList gather_rows(const GradientBatch& batch,
                       const std::vector<std::size_t>& indices) {
  VectorList out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(batch.row_copy(i));
  return out;
}

}  // namespace

Vector MinimumDiameterMeanRule::aggregate(const VectorList& received,
                                          AggregationWorkspace& workspace,
                                          const AggregationContext& ctx) const {
  validate(received, ctx);
  const auto md = min_diameter_subset(workspace.distances(), ctx.keep());
  return mean(gather(received, md.indices));
}

Vector MinimumDiameterMeanRule::aggregate(const GradientBatch& batch,
                                          AggregationWorkspace& workspace,
                                          const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  const auto md = min_diameter_subset(workspace.distances(), ctx.keep());
  return mean_of_rows(batch, md.indices);
}

Vector MinimumDiameterGeoMedianRule::aggregate(
    const VectorList& received, AggregationWorkspace& workspace,
    const AggregationContext& ctx) const {
  validate(received, ctx);
  const auto md = min_diameter_subset(workspace.distances(), ctx.keep());
  return geometric_median_point(gather(received, md.indices), options_);
}

Vector MinimumDiameterGeoMedianRule::aggregate(
    const GradientBatch& batch, AggregationWorkspace& workspace,
    const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  const auto md = min_diameter_subset(workspace.distances(), ctx.keep());
  // Only the minimum-diameter subset is materialized for Weiszfeld, not the
  // whole inbox.
  return geometric_median_point(gather_rows(batch, md.indices), options_);
}

}  // namespace bcl
