#include "aggregation/minimum_diameter_rules.hpp"

#include "geometry/min_diameter.hpp"
#include "geometry/subsets.hpp"

namespace bcl {

Vector MinimumDiameterMeanRule::aggregate(const VectorList& received,
                                          AggregationWorkspace& workspace,
                                          const AggregationContext& ctx) const {
  validate(received, ctx);
  const auto md = min_diameter_subset(workspace.distances(), ctx.keep());
  return mean(gather(received, md.indices));
}

Vector MinimumDiameterGeoMedianRule::aggregate(
    const VectorList& received, AggregationWorkspace& workspace,
    const AggregationContext& ctx) const {
  validate(received, ctx);
  const auto md = min_diameter_subset(workspace.distances(), ctx.keep());
  return geometric_median_point(gather(received, md.indices), options_);
}

}  // namespace bcl
