#pragma once
// Hierarchical (sharded) robust aggregation.
//
// At production client counts a single robust rule over the whole cohort
// is the O(m^2 * d) bottleneck, so the cohort is split into `shards`
// contiguous row slices: each shard aggregator runs the scenario's rule
// over its slice, and a root rule aggregates the shard outputs.  The
// Byzantine budget is split with the shared helpers in budget.hpp — every
// shard must budget for the full t (the adversary may concentrate its
// clients into one slice, clamped to the slice's own resilience bound),
// and the root budgets one corrupted output per fault, clamped likewise.
//
// Determinism contract: shards == 1 dispatches the shard rule over the
// caller's workspace with the caller's context untouched — bitwise
// identical to not using this layer at all.  When both rules are MEAN the
// output is computed as the global mean in row order, so the artifact is
// bitwise identical across shard counts (the sharded-determinism test
// pins shards in {1, 4, 16}); a mean of per-shard means would drift in
// the last float bits.

#include <cstddef>

#include "aggregation/rule.hpp"
#include "linalg/gradient_batch.hpp"

namespace bcl {

/// Aggregates `batch` through `shards` shard aggregators running
/// `shard_rule`, then `root_rule` over the shard outputs.  `workspace`
/// must have been built over `batch`; it is only consumed on the
/// shards == 1 path (per-shard workspaces are built over the slices).
/// The shard count is clamped to the row count; ctx.t is split per the
/// budget.hpp helpers.
Vector aggregate_sharded(const GradientBatch& batch,
                         AggregationWorkspace& workspace,
                         const AggregationRule& shard_rule,
                         const AggregationRule& root_rule, std::size_t shards,
                         const AggregationContext& ctx);

}  // namespace bcl
