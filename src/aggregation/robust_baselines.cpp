#include "aggregation/robust_baselines.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/stats.hpp"

namespace bcl {

Vector RfaRule::aggregate(const VectorList& received,
                          const AggregationContext& ctx) const {
  validate(received, ctx);
  // Scale the absolute smoothing radius by the data spread so the rule is
  // scale-equivariant.
  const double spread = Hyperbox::bounding(received).diagonal();
  const double nu = std::max(nu_ * (1.0 + spread), 1e-300);
  return smoothed_geometric_median(received, nu, options_).point;
}

Vector CenteredClippingRule::aggregate(const VectorList& received,
                                       const AggregationContext& ctx) const {
  validate(received, ctx);
  Vector center = coordinatewise_median(received);
  for (std::size_t it = 0; it < iterations_; ++it) {
    // Clip radius: tau_scale times the median distance to the center.
    std::vector<double> dists;
    dists.reserve(received.size());
    for (const auto& v : received) dists.push_back(distance(v, center));
    const double tau = tau_scale_ * median(dists);
    Vector shift = zeros(center.size());
    for (const auto& v : received) {
      Vector residual = sub(v, center);
      const double norm = norm2(residual);
      const double factor = (tau > 0.0 && norm > tau) ? tau / norm : 1.0;
      axpy(shift, factor / static_cast<double>(received.size()), residual);
    }
    axpy(center, 1.0, shift);
  }
  return center;
}

Vector NormClippingRule::aggregate(const VectorList& received,
                                   const AggregationContext& ctx) const {
  validate(received, ctx);
  std::vector<double> norms;
  norms.reserve(received.size());
  for (const auto& v : received) norms.push_back(norm2(v));
  const double bound = median(norms);
  Vector out = zeros(received.front().size());
  for (std::size_t i = 0; i < received.size(); ++i) {
    const double factor =
        (bound > 0.0 && norms[i] > bound) ? bound / norms[i] : 1.0;
    axpy(out, factor / static_cast<double>(received.size()), received[i]);
  }
  return out;
}

}  // namespace bcl
