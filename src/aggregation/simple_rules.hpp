#pragma once
// Baseline aggregation rules: mean, geometric median, medoid,
// coordinate-wise median, coordinate-wise trimmed mean.
//
// Mean and geometric median are the two aggregation vectors the paper
// studies (Definitions 2.1 and 2.2); the others are common robust baselines
// from the Byzantine-ML literature that the test suite and ablation benches
// compare against.

#include "aggregation/rule.hpp"
#include "geometry/weiszfeld.hpp"

namespace bcl {

/// Plain arithmetic mean of everything received (no Byzantine filtering).
class MeanRule final : public AggregationRule {
 public:
  std::string name() const override { return "MEAN"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
};

/// Weiszfeld geometric median of everything received.
class GeometricMedianRule final : public AggregationRule {
 public:
  explicit GeometricMedianRule(WeiszfeldOptions options = {})
      : options_(options) {}
  std::string name() const override { return "GEOMED"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;

 private:
  WeiszfeldOptions options_;
};

/// Medoid of everything received (geometric medoid rule of El-Mhamdi et
/// al.).  Distance-based, so it participates in the shared workspace.
class MedoidRule final : public AggregationRule {
 public:
  std::string name() const override { return "MEDOID"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
};

/// Coordinate-wise median.
class CoordinatewiseMedianRule final : public AggregationRule {
 public:
  std::string name() const override { return "CW-MEDIAN"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
};

/// Coordinate-wise trimmed mean, trimming min(t, (m-1)/2) values per side
/// (the El-Mhamdi et al. trimmed-mean agreement primitive).
class TrimmedMeanRule final : public AggregationRule {
 public:
  std::string name() const override { return "TRIM-MEAN"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
};

}  // namespace bcl
