#include "aggregation/hyperbox_rules.hpp"

#include <algorithm>
#include <stdexcept>

#include "geometry/subsets.hpp"
#include "linalg/stats.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

VectorList subset_aggregates(
    const VectorList& received, std::size_t keep, ThreadPool* pool,
    const std::function<Vector(const VectorList&)>& subset_aggregate) {
  if (pool != nullptr && received.size() > keep) {
    // Materialize the index sets so disjoint chunks can run on the pool.
    const auto combos = all_combinations(received.size(), keep);
    VectorList points(combos.size());
    pool->parallel_for(0, combos.size(), [&](std::size_t c) {
      points[c] = subset_aggregate(gather(received, combos[c]));
    });
    return points;
  }
  // Serial path: stream the combinations without materializing them.
  VectorList points;
  points.reserve(static_cast<std::size_t>(
      binomial(received.size(), keep)));
  for_each_combination(received.size(), keep,
                       [&](const std::vector<std::size_t>& idx) {
                         points.push_back(subset_aggregate(gather(received, idx)));
                       });
  return points;
}

Vector hyperbox_aggregate(
    const VectorList& received, const AggregationContext& ctx,
    const std::function<Vector(const VectorList&)>& subset_aggregate) {
  const std::size_t keep = ctx.keep();
  // TH_i: coordinate-wise trim of |M_i| - (n - t) values per side
  // (Definition 2.5).
  const Hyperbox trusted = trimmed_hyperbox(received, keep);
  // GH_i (or its mean analogue): bounding box of subset aggregates
  // (Definition 3.5).
  const VectorList points =
      subset_aggregates(received, keep, ctx.pool, subset_aggregate);
  const Hyperbox aggregate_box = Hyperbox::bounding(points);

  auto intersection = Hyperbox::intersect(trusted, aggregate_box);
  if (!intersection) {
    // Theorem 4.4 proves TH_i ∩ GH_i is non-empty; an empty result can only
    // come from Weiszfeld's finite tolerance placing a subset median
    // epsilon-outside the trusted interval.  Retry with a tolerance
    // proportional to the data scale before declaring a logic error.
    const double tol =
        1e-9 * (1.0 + std::max(trusted.max_edge(), aggregate_box.max_edge()));
    intersection =
        Hyperbox::intersect(trusted.inflated(tol), aggregate_box.inflated(tol));
    if (!intersection) {
      throw std::logic_error(
          "hyperbox_aggregate: TH ∩ GH empty — violates Theorem 4.4");
    }
  }
  return intersection->midpoint();
}

namespace {

// The workspace form of the box rules: identical computation, with the
// workspace's pool (when attached) taking precedence for the subset fan-out.
AggregationContext with_workspace_pool(const AggregationContext& ctx,
                                       AggregationWorkspace& workspace) {
  AggregationContext out = ctx;
  if (workspace.pool() != nullptr) out.pool = workspace.pool();
  return out;
}

}  // namespace

Vector BoxMeanRule::aggregate(const VectorList& received,
                              AggregationWorkspace& workspace,
                              const AggregationContext& ctx) const {
  validate(received, ctx);
  return hyperbox_aggregate(received, with_workspace_pool(ctx, workspace),
                            [](const VectorList& subset) { return mean(subset); });
}

Vector BoxGeoMedianRule::aggregate(const VectorList& received,
                                   AggregationWorkspace& workspace,
                                   const AggregationContext& ctx) const {
  validate(received, ctx);
  const WeiszfeldOptions options = options_;
  return hyperbox_aggregate(
      received, with_workspace_pool(ctx, workspace),
      [options](const VectorList& subset) {
        return geometric_median_point(subset, options);
      });
}

}  // namespace bcl
