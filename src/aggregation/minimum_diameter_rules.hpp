#pragma once
// Minimum-diameter aggregation rules.
//
// MD-MEAN is the Minimum Diameter Averaging rule of El-Mhamdi et al.: pick
// an (n - t)-subset MD of the received vectors with minimum diameter and
// output its mean.  MD-GEOM is the paper's Algorithm 1 round step: output
// the geometric median of the MD set instead.  Lemma 4.2 shows the MD-GEOM
// agreement iteration need not converge, but a single application is a
// 2-approximation of the true geometric median (Section 4.1), which is why
// it is the strongest rule in the *centralized* evaluation.

#include "aggregation/rule.hpp"
#include "geometry/weiszfeld.hpp"

namespace bcl {

/// MD-MEAN (MDA): mean of a minimum-diameter (n - t)-subset.
class MinimumDiameterMeanRule final : public AggregationRule {
 public:
  std::string name() const override { return "MD-MEAN"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
};

/// MD-GEOM (Algorithm 1 step): geometric median of a minimum-diameter
/// (n - t)-subset.
class MinimumDiameterGeoMedianRule final : public AggregationRule {
 public:
  explicit MinimumDiameterGeoMedianRule(WeiszfeldOptions options = {})
      : options_(options) {}
  std::string name() const override { return "MD-GEOM"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  WeiszfeldOptions options_;
};

}  // namespace bcl
