#pragma once
// Sketched distance-based rules with an exactness fallback.
//
// SKETCH-KRUM / SKETCH-MULTIKRUM-<q> / SKETCH-MD-MEAN run their base
// rule's selection over JL-sketched pairwise distances (linalg/sketch.hpp)
// instead of the exact O(m^2 * d) matrix.  Selection consumes distances
// only, so the aggregated *values* are always exact rows of the inbox —
// approximation can only ever pick a different row set, never perturb the
// output values.
//
// That is exactly where silent wrongness would hide, so every rule guards
// its decision with the sketch's error bound: if the decision margin (the
// score gap around the selection cut for Krum flavours, the diameter gap
// between candidate subsets for MD) is within the bound, the sketch
// cannot certify the winner and the rule recomputes over the exact
// distance matrix from the caller's workspace.  On separable inputs the
// sketched and exact selections therefore agree (property-tested); on
// adversarial near-ties the fallback triggers and they agree by
// construction.  `SketchOptions::force_fallback` pins the exact path for
// tests.

#include <cstdint>

#include "aggregation/rule.hpp"

namespace bcl {

struct SketchOptions {
  /// Sketch dimension k.  Inputs with dim() <= k take the exact path
  /// outright (a projection cannot be cheaper than the data).
  std::size_t k = 64;
  /// Scales relative_error(m) in the certification test (sketched.cpp's
  /// margin_resolved).  The test already encodes the worst case the JL
  /// bound permits, so 1.0 is sound; values > 1 add conservatism but an
  /// effective error >= 1 (factor * relative_error(m) >= 1) can never
  /// certify any cut and pins the exact fallback.
  double margin_factor = 1.0;
  /// Seed of the deterministic sign matrix; fixed per rule instance so
  /// replays are bitwise stable.
  std::uint64_t seed = 0x6B1A52C87D94E03Full;
  /// Test hook: always take the exact path (the output must then be
  /// bitwise identical to the unsketched base rule).
  bool force_fallback = false;
};

class SketchedKrumRule final : public AggregationRule {
 public:
  explicit SketchedKrumRule(SketchOptions options = {}) : options_(options) {}
  std::string name() const override { return "SKETCH-KRUM"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  SketchOptions options_;
};

class SketchedMultiKrumRule final : public AggregationRule {
 public:
  explicit SketchedMultiKrumRule(std::size_t q, SketchOptions options = {})
      : q_(q), options_(options) {}
  std::string name() const override {
    return "SKETCH-MULTIKRUM-" + std::to_string(q_);
  }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  std::size_t q_;
  SketchOptions options_;
};

class SketchedMdMeanRule final : public AggregationRule {
 public:
  explicit SketchedMdMeanRule(SketchOptions options = {})
      : options_(options) {}
  std::string name() const override { return "SKETCH-MD-MEAN"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
  Vector aggregate(const GradientBatch& batch, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  SketchOptions options_;
};

}  // namespace bcl
