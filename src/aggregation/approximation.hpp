#pragma once
// Approximation of the geometric median in the Byzantine setting
// (Section 3.1 of the paper).
//
// S_geo is the set of geometric medians of all (n - t)-subsets of the
// inputs (Definition 3.1).  Because no algorithm can tell which subset is
// the honest one, the best any algorithm can do is the center of the
// minimum covering ball of S_geo; a vector within c * r_cov of the true
// geometric median mu* is a c-approximation (Definition 3.3).  These
// helpers measure that ratio for any rule's output, powering the
// approximation-ratio benchmark table.

#include <optional>

#include "geometry/enclosing_ball.hpp"
#include "geometry/weiszfeld.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

class ThreadPool;

/// S_geo: geometric medians of all (n - t)-subsets of `inputs`
/// (Definition 3.1).  Runs subsets in parallel when `pool` is given.
VectorList compute_sgeo(const VectorList& inputs, std::size_t t,
                        ThreadPool* pool = nullptr,
                        const WeiszfeldOptions& options = {});

/// The analogous set for the mean aggregation rule: subset means.
VectorList compute_smean(const VectorList& inputs, std::size_t t,
                         ThreadPool* pool = nullptr);

/// Everything needed to judge one output vector against Definition 3.3.
struct ApproximationReport {
  /// The true aggregate over honest inputs only (mu* or nu*).
  Vector true_aggregate;
  /// Minimum covering ball of the candidate-aggregate set.
  Ball covering_ball;
  /// dist(output, true_aggregate).
  double distance_to_true = 0.0;
  /// distance_to_true / r_cov.  Infinity when r_cov == 0 and the distance
  /// is positive; 0 when both vanish.
  double ratio = 0.0;
};

/// Measures the geometric-median approximation of `output`.
/// `honest_inputs` are the vectors of the non-faulty nodes only (used for
/// mu*); `all_inputs` includes the Byzantine vectors as received (used for
/// S_geo).
ApproximationReport measure_geo_approximation(
    const VectorList& all_inputs, const VectorList& honest_inputs,
    std::size_t t, const Vector& output, ThreadPool* pool = nullptr);

/// Same measurement against the mean aggregation target nu*.
ApproximationReport measure_mean_approximation(
    const VectorList& all_inputs, const VectorList& honest_inputs,
    std::size_t t, const Vector& output, ThreadPool* pool = nullptr);

}  // namespace bcl
