#pragma once
// Hyperbox aggregation rules — the paper's core contribution.
//
// BOX-GEOM is one round step of Algorithm 2 (Section 4.2): compute the
// locally trusted hyperbox TH_i (Definition 2.5) by coordinate-wise
// trimming, compute the local geometric-median hyperbox GH_i (Definition
// 3.5) as the bounding box of the geometric medians of all (n - t)-subsets
// of the received vectors, and output mid(TH_i ∩ GH_i).  Theorem 4.4 proves
// the intersection is never empty, the iteration halves E_max every round,
// and a single step is a 2*sqrt(d)-approximation of the true geometric
// median.
//
// BOX-MEAN is the centroid variant of Cambus-Melnyk: GH_i is replaced by the
// bounding box of subset *means*.

#include <functional>

#include "aggregation/rule.hpp"
#include "geometry/weiszfeld.hpp"
#include "linalg/hyperbox.hpp"

namespace bcl {

/// Computes the per-subset aggregate points used by the hyperbox rules:
/// one point per (n-t)-subset of `received`.  `subset_aggregate` maps a
/// subset of vectors to its aggregate (mean or geometric median).  Runs
/// subsets in parallel when ctx.pool is set.
VectorList subset_aggregates(
    const VectorList& received, std::size_t keep, ThreadPool* pool,
    const std::function<Vector(const VectorList&)>& subset_aggregate);

/// Shared implementation of the two hyperbox rules: output
/// mid(trimmed_hyperbox(received) ∩ bounding_box(subset aggregates)).
/// Throws std::logic_error if the intersection is empty beyond numerical
/// tolerance (Theorem 4.4 guarantees non-emptiness; a tiny per-coordinate
/// tolerance absorbs Weiszfeld rounding).
Vector hyperbox_aggregate(
    const VectorList& received, const AggregationContext& ctx,
    const std::function<Vector(const VectorList&)>& subset_aggregate);

/// BOX-MEAN: hyperbox rule with subset means.  The subset enumeration is
/// not distance-based, but the workspace form still routes the subset fan
/// out through the workspace's pool so a round that built a workspace once
/// drives every rule with the same worker configuration.
class BoxMeanRule final : public AggregationRule {
 public:
  std::string name() const override { return "BOX-MEAN"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;
};

/// BOX-GEOM: hyperbox rule with subset geometric medians (Algorithm 2).
class BoxGeoMedianRule final : public AggregationRule {
 public:
  explicit BoxGeoMedianRule(WeiszfeldOptions options = {})
      : options_(options) {}
  std::string name() const override { return "BOX-GEOM"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received, AggregationWorkspace& workspace,
                   const AggregationContext& ctx) const override;

 private:
  WeiszfeldOptions options_;
};

}  // namespace bcl
