#include "aggregation/krum.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bcl {

namespace {

// Shared scoring kernel: `pair_score(i, j)` yields the (squared) distance
// between vectors i and j.  Keeping one kernel for both entry points
// guarantees the matrix-based and legacy scores are bitwise identical.
template <typename PairScore>
std::vector<double> krum_scores_impl(std::size_t m, std::size_t closest,
                                     PairScore&& pair_score) {
  if (closest >= m) {
    throw std::invalid_argument("krum_scores: closest must be < m");
  }
  std::vector<double> scores(m, 0.0);
  std::vector<double> dists;
  dists.reserve(m - 1);
  for (std::size_t i = 0; i < m; ++i) {
    dists.clear();
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      dists.push_back(pair_score(i, j));
    }
    // nth_element + introsort of the kept prefix produces the same
    // ascending closest-distance order as a partial_sort, in ~1/4 the
    // time when `closest` is most of the row (the Krum regime,
    // closest = n - t - 1): partial_sort degenerates into a full
    // heapsort there.  Same values in the same accumulation order, so
    // scores are bit-identical.
    auto kept = dists.begin() + static_cast<long>(closest);
    std::nth_element(dists.begin(), kept, dists.end());
    std::sort(dists.begin(), kept);
    scores[i] = std::accumulate(dists.begin(), kept, 0.0);
  }
  return scores;
}

std::size_t closest_count(std::size_t m, const AggregationContext& ctx) {
  // C_i contains the n - t - 1 closest vectors to v_i (Equation 3).
  return std::min(m - 1, ctx.keep() > 0 ? ctx.keep() - 1 : 0);
}

std::size_t krum_best(const DistanceMatrix& dist, std::size_t closest,
                      KrumScore flavour) {
  const auto scores = krum_scores(dist, closest, flavour);
  return static_cast<std::size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<std::size_t> multikrum_order(const DistanceMatrix& dist,
                                         std::size_t closest,
                                         KrumScore flavour) {
  const auto scores = krum_scores(dist, closest, flavour);
  std::vector<std::size_t> order(dist.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] < scores[b];
                   });
  return order;
}

}  // namespace

std::vector<double> krum_scores(const VectorList& received,
                                std::size_t closest, KrumScore flavour) {
  return krum_scores_impl(
      received.size(), closest, [&](std::size_t i, std::size_t j) {
        const double d2 = distance_squared(received[i], received[j]);
        return flavour == KrumScore::Squared ? d2 : std::sqrt(d2);
      });
}

std::vector<double> krum_scores(const DistanceMatrix& dist,
                                std::size_t closest, KrumScore flavour) {
  return krum_scores_impl(dist.size(), closest,
                          [&](std::size_t i, std::size_t j) {
                            return flavour == KrumScore::Squared
                                       ? dist.dist2(i, j)
                                       : dist.dist(i, j);
                          });
}

Vector KrumRule::aggregate(const VectorList& received,
                           AggregationWorkspace& workspace,
                           const AggregationContext& ctx) const {
  validate(received, ctx);
  const std::size_t closest = closest_count(received.size(), ctx);
  if (closest == 0) return received.front();
  return received[krum_best(workspace.distances(), closest, flavour_)];
}

Vector KrumRule::aggregate(const GradientBatch& batch,
                           AggregationWorkspace& workspace,
                           const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  const std::size_t closest = closest_count(batch.rows(), ctx);
  if (closest == 0) return batch.row_copy(0);
  return batch.row_copy(krum_best(workspace.distances(), closest, flavour_));
}

Vector MultiKrumRule::aggregate(const VectorList& received,
                                AggregationWorkspace& workspace,
                                const AggregationContext& ctx) const {
  validate(received, ctx);
  if (q_ == 0) throw std::invalid_argument("MultiKrum: q must be positive");
  const std::size_t closest = closest_count(received.size(), ctx);
  if (closest == 0) return received.front();
  const auto order = multikrum_order(workspace.distances(), closest, flavour_);
  const std::size_t take = std::min(q_, received.size());
  VectorList best;
  best.reserve(take);
  for (std::size_t i = 0; i < take; ++i) best.push_back(received[order[i]]);
  return mean(best);
}

Vector MultiKrumRule::aggregate(const GradientBatch& batch,
                                AggregationWorkspace& workspace,
                                const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  if (q_ == 0) throw std::invalid_argument("MultiKrum: q must be positive");
  const std::size_t closest = closest_count(batch.rows(), ctx);
  if (closest == 0) return batch.row_copy(0);
  auto order = multikrum_order(workspace.distances(), closest, flavour_);
  order.resize(std::min(q_, batch.rows()));
  return mean_of_rows(batch, order);
}

}  // namespace bcl
