#include "aggregation/sharded.hpp"

#include <algorithm>
#include <cstring>

#include "aggregation/budget.hpp"

namespace bcl {

Vector aggregate_sharded(const GradientBatch& batch,
                         AggregationWorkspace& workspace,
                         const AggregationRule& shard_rule,
                         const AggregationRule& root_rule, std::size_t shards,
                         const AggregationContext& ctx) {
  const std::size_t m = batch.rows();
  const std::size_t d = batch.dim();
  const std::size_t s = std::min(std::max<std::size_t>(shards, 1), m);
  if (s <= 1) {
    return shard_rule.aggregate(batch, workspace, ctx);
  }

  // MEAN over MEAN: algebraically the global mean, computed here in global
  // row order so the result is bitwise independent of the shard count.
  if (shard_rule.name() == "MEAN" && root_rule.name() == "MEAN") {
    return mean(batch);
  }

  // Balanced contiguous slices: the first (m % s) shards get one extra row.
  GradientBatch shard_outputs(s, d);
  const std::size_t base = m / s;
  const std::size_t extra = m % s;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t rows = base + (i < extra ? 1 : 0);
    GradientBatch slice(rows, d);
    // Per-row copy so a borrowed view batch (non-contiguous rows) slices
    // identically to an owned one; same bytes either way.
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(slice.row(r), batch.row(begin + r), d * sizeof(double));
    }
    AggregationContext shard_ctx;
    shard_ctx.n = rows;
    shard_ctx.t = clamp_byzantine_budget(ctx.t, rows);
    shard_ctx.pool = ctx.pool;
    AggregationWorkspace shard_ws(slice, ctx.pool);
    shard_outputs.set_row(i, shard_rule.aggregate(slice, shard_ws, shard_ctx));
    begin += rows;
  }

  AggregationContext root_ctx;
  root_ctx.n = s;
  root_ctx.t = root_byzantine_budget(ctx.t, s);
  root_ctx.pool = ctx.pool;
  AggregationWorkspace root_ws(shard_outputs, ctx.pool);
  return root_rule.aggregate(shard_outputs, root_ws, root_ctx);
}

}  // namespace bcl
