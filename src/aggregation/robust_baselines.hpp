#pragma once
// Additional robust-aggregation baselines from the Byzantine-ML literature
// surveyed by the paper (Guerraoui et al. 2024), used by the ablation
// benches to place the hyperbox rules in a wider landscape:
//
//  - RFA (Pillutla et al. 2022): smoothed-Weiszfeld geometric median, the
//    aggregator the paper cites for geometric-median aggregation.
//  - Centered clipping (Karimireddy et al. 2021): iteratively re-center on
//    the clipped average of residuals around the current estimate.
//  - Norm clipping: rescale every received vector to at most the median
//    norm, then average (a common magnitude-attack defence).

#include "aggregation/rule.hpp"
#include "geometry/weiszfeld.hpp"

namespace bcl {

/// RFA: smoothed Weiszfeld with smoothing radius nu.
class RfaRule final : public AggregationRule {
 public:
  explicit RfaRule(double nu = 1e-6, WeiszfeldOptions options = {})
      : nu_(nu), options_(options) {}
  std::string name() const override { return "RFA"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;

 private:
  double nu_;
  WeiszfeldOptions options_;
};

/// Centered clipping around an initial robust center (coordinate-wise
/// median), with `iterations` re-centering steps and clip radius
/// `tau_scale` times the median distance to the center.
class CenteredClippingRule final : public AggregationRule {
 public:
  explicit CenteredClippingRule(std::size_t iterations = 3,
                                double tau_scale = 1.0)
      : iterations_(iterations), tau_scale_(tau_scale) {}
  std::string name() const override { return "CCLIP"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;

 private:
  std::size_t iterations_;
  double tau_scale_;
};

/// Norm clipping: every vector is scaled down to at most the median norm of
/// the received vectors, then the mean is taken.
class NormClippingRule final : public AggregationRule {
 public:
  std::string name() const override { return "NORM-CLIP"; }
  using AggregationRule::aggregate;
  Vector aggregate(const VectorList& received,
                   const AggregationContext& ctx) const override;
};

}  // namespace bcl
