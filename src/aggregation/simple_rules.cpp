#include "aggregation/simple_rules.hpp"

#include <algorithm>

#include "geometry/medoid.hpp"
#include "linalg/stats.hpp"

namespace bcl {

Vector MeanRule::aggregate(const VectorList& received,
                           const AggregationContext& ctx) const {
  validate(received, ctx);
  return mean(received);
}

Vector MeanRule::aggregate(const GradientBatch& batch,
                           AggregationWorkspace& workspace,
                           const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  return mean(batch);
}

Vector GeometricMedianRule::aggregate(const VectorList& received,
                                      const AggregationContext& ctx) const {
  validate(received, ctx);
  return geometric_median_point(received, options_);
}

Vector MedoidRule::aggregate(const VectorList& received,
                             AggregationWorkspace& workspace,
                             const AggregationContext& ctx) const {
  validate(received, ctx);
  return received[medoid_index(workspace.distances())];
}

Vector MedoidRule::aggregate(const GradientBatch& batch,
                             AggregationWorkspace& workspace,
                             const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  return batch.row_copy(medoid_index(workspace.distances()));
}

Vector CoordinatewiseMedianRule::aggregate(
    const VectorList& received, const AggregationContext& ctx) const {
  validate(received, ctx);
  return coordinatewise_median(received);
}

Vector CoordinatewiseMedianRule::aggregate(
    const GradientBatch& batch, AggregationWorkspace& workspace,
    const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  return coordinatewise_median(batch);
}

Vector TrimmedMeanRule::aggregate(const VectorList& received,
                                  const AggregationContext& ctx) const {
  validate(received, ctx);
  const std::size_t m = received.size();
  const std::size_t trim = std::min(ctx.t, (m - 1) / 2);
  return coordinatewise_trimmed_mean(received, trim);
}

Vector TrimmedMeanRule::aggregate(const GradientBatch& batch,
                                  AggregationWorkspace& workspace,
                                  const AggregationContext& ctx) const {
  check_batch_workspace(batch, workspace);
  validate(batch, ctx);
  const std::size_t m = batch.rows();
  const std::size_t trim = std::min(ctx.t, (m - 1) / 2);
  return coordinatewise_trimmed_mean(batch, trim);
}

}  // namespace bcl
