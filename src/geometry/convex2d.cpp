#include "geometry/convex2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl {

namespace {

double cross(const Vector& o, const Vector& a, const Vector& b) {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

}  // namespace

Polygon2 convex_hull_2d(const VectorList& points) {
  check_same_dimension(points, points.empty() ? 0 : 2);
  VectorList pts = points;
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;
  Polygon2 hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper hull
    while (k >= lower && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  if (hull.empty()) hull.push_back(pts.front());  // all points collinear? no:
  return hull;
}

double polygon_area(const Polygon2& poly) {
  if (poly.size() < 3) return 0.0;
  double a = 0.0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Vector& p = poly[i];
    const Vector& q = poly[(i + 1) % poly.size()];
    a += p[0] * q[1] - q[0] * p[1];
  }
  return 0.5 * a;
}

bool polygon_contains(const Polygon2& poly, const Vector& p, double tol) {
  if (p.size() != 2) throw std::invalid_argument("polygon_contains: not 2-D");
  if (poly.empty()) return false;
  if (poly.size() == 1) return distance(poly[0], p) <= tol;
  if (poly.size() == 2) {
    // On-segment test: distance to segment <= tol.
    const Vector& a = poly[0];
    const Vector& b = poly[1];
    const double len2 = distance_squared(a, b);
    double s = len2 == 0.0 ? 0.0
                           : ((p[0] - a[0]) * (b[0] - a[0]) +
                              (p[1] - a[1]) * (b[1] - a[1])) /
                                 len2;
    s = std::clamp(s, 0.0, 1.0);
    const Vector proj{a[0] + s * (b[0] - a[0]), a[1] + s * (b[1] - a[1])};
    return distance(proj, p) <= tol;
  }
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Vector& a = poly[i];
    const Vector& b = poly[(i + 1) % poly.size()];
    const double side = cross(a, b, p);
    const double edge_len = distance(a, b);
    if (side < -tol * (1.0 + edge_len)) return false;
  }
  return true;
}

namespace {

// Clips a polygon against the half-plane on the left of the directed line
// a -> b (inclusive).
Polygon2 clip_half_plane(const Polygon2& poly, const Vector& a,
                         const Vector& b) {
  Polygon2 out;
  const std::size_t n = poly.size();
  if (n == 0) return out;
  auto side = [&](const Vector& p) {
    return (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0]);
  };
  constexpr double kEps = 1e-12;
  if (n == 1) {
    if (side(poly[0]) >= -kEps) out.push_back(poly[0]);
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Vector& cur = poly[i];
    const Vector& nxt = poly[(i + 1) % n];
    const double sc = side(cur);
    const double sn = side(nxt);
    if (sc >= -kEps) out.push_back(cur);
    // Edge crosses the line strictly: add the intersection point.
    if ((sc > kEps && sn < -kEps) || (sc < -kEps && sn > kEps)) {
      const double u = sc / (sc - sn);
      out.push_back(Vector{cur[0] + u * (nxt[0] - cur[0]),
                           cur[1] + u * (nxt[1] - cur[1])});
    }
  }
  // Deduplicate consecutive identical vertices produced by tangential cuts.
  Polygon2 dedup;
  for (const auto& v : out) {
    if (dedup.empty() || distance(dedup.back(), v) > 1e-12) dedup.push_back(v);
  }
  while (dedup.size() > 1 && distance(dedup.front(), dedup.back()) <= 1e-12) {
    dedup.pop_back();
  }
  return dedup;
}

}  // namespace

Polygon2 clip_convex(const Polygon2& subject, const Polygon2& clipper) {
  if (subject.empty() || clipper.empty()) return {};
  Polygon2 result = subject;
  if (clipper.size() == 1) {
    // Degenerate clipper: a single point; intersection is that point iff the
    // subject contains it.
    return polygon_contains(subject, clipper[0], 1e-9)
               ? Polygon2{clipper[0]}
               : Polygon2{};
  }
  if (clipper.size() == 2) {
    // Segment clipper: clip subject against both half-planes of the
    // supporting line, then against the two end cap lines.
    result = clip_half_plane(result, clipper[0], clipper[1]);
    result = clip_half_plane(result, clipper[1], clipper[0]);
    // Caps: perpendicular lines through the endpoints.
    const Vector dir{clipper[1][0] - clipper[0][0],
                     clipper[1][1] - clipper[0][1]};
    const Vector n0{clipper[0][0] + dir[1], clipper[0][1] - dir[0]};
    const Vector n1{clipper[1][0] + dir[1], clipper[1][1] - dir[0]};
    result = clip_half_plane(result, clipper[0], n0);
    result = clip_half_plane(result, n1, clipper[1]);
    return result;
  }
  for (std::size_t i = 0; i < clipper.size() && !result.empty(); ++i) {
    result = clip_half_plane(result, clipper[i],
                             clipper[(i + 1) % clipper.size()]);
  }
  return result;
}

std::optional<Vector> polygon_centroid(const Polygon2& poly) {
  if (poly.empty()) return std::nullopt;
  Vector c{0.0, 0.0};
  for (const auto& v : poly) {
    c[0] += v[0];
    c[1] += v[1];
  }
  c[0] /= static_cast<double>(poly.size());
  c[1] /= static_cast<double>(poly.size());
  return c;
}

}  // namespace bcl
