#include "geometry/subsets.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bcl {

std::uint64_t binomial(std::size_t m, std::size_t k) {
  if (k > m) return 0;
  k = std::min(k, m - k);
  std::uint64_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::uint64_t num = m - k + i;
    // result * num / i is always integral at this point; check overflow on
    // the multiply.
    if (result > std::numeric_limits<std::uint64_t>::max() / num) {
      throw std::overflow_error("binomial: value exceeds 64 bits");
    }
    result = result * num / i;
  }
  return result;
}

std::vector<std::vector<std::size_t>> all_combinations(std::size_t m,
                                                       std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  for_each_combination(m, k, [&](const std::vector<std::size_t>& idx) {
    out.push_back(idx);
  });
  return out;
}

}  // namespace bcl
