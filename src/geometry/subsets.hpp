#pragma once
// Enumeration of k-element subsets of {0, ..., m-1}.
//
// The paper's algorithms repeatedly range over all subsets of size n - t of
// the received vectors (subset means for BOX-MEAN, subset geometric medians
// for BOX-GEOM / S_geo, minimum-diameter search for MDA).  For the paper's
// parameters (n = 10, t <= 2) this is at most C(10, 8) = 45 subsets.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace bcl {

/// C(m, k) as a 64-bit integer.  Throws std::overflow_error if the value
/// does not fit.
std::uint64_t binomial(std::size_t m, std::size_t k);

/// Calls fn(indices) once per k-subset of {0,...,m-1}, in lexicographic
/// order.  `indices` is sorted ascending and owned by the iterator (do not
/// retain the reference).
void for_each_combination(
    std::size_t m, std::size_t k,
    const std::function<void(const std::vector<std::size_t>&)>& fn);

/// All k-subsets materialized (use only for small C(m, k)).
std::vector<std::vector<std::size_t>> all_combinations(std::size_t m,
                                                       std::size_t k);

/// Gathers vs[i] for i in indices.
template <typename T>
std::vector<T> gather(const std::vector<T>& vs,
                      const std::vector<std::size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(vs[i]);
  return out;
}

}  // namespace bcl
