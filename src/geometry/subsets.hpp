#pragma once
// Enumeration of k-element subsets of {0, ..., m-1}.
//
// The paper's algorithms repeatedly range over all subsets of size n - t of
// the received vectors (subset means for BOX-MEAN, subset geometric medians
// for BOX-GEOM / S_geo, minimum-diameter search for MDA).  For the paper's
// parameters (n = 10, t <= 2) this is at most C(10, 8) = 45 subsets.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bcl {

/// C(m, k) as a 64-bit integer.  Throws std::overflow_error if the value
/// does not fit.
std::uint64_t binomial(std::size_t m, std::size_t k);

/// Calls fn(indices) once per k-subset of {0,...,m-1}, in lexicographic
/// order.  `indices` is sorted ascending and owned by the iterator (do not
/// retain the reference).  `fn` is a template parameter so the per-subset
/// call inlines; the BOX-GEOM / MDA inner loops visit every subset and paid
/// a type-erased std::function dispatch per visit before.
template <typename Fn>
void for_each_combination(std::size_t m, std::size_t k, Fn&& fn) {
  if (k > m) return;
  std::vector<std::size_t> idx(k);
  // Expose the index buffer read-only so a callback cannot corrupt the
  // enumeration state.
  const std::vector<std::size_t>& view = idx;
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    fn(view);
    return;
  }
  for (;;) {
    fn(view);
    // Advance to the next combination in lexicographic order.
    std::size_t i = k;
    while (i > 0 && idx[i - 1] == m - k + (i - 1)) --i;
    if (i == 0) break;
    ++idx[i - 1];
    for (std::size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

/// All k-subsets materialized (use only for small C(m, k)).
std::vector<std::vector<std::size_t>> all_combinations(std::size_t m,
                                                       std::size_t k);

/// Gathers vs[i] for i in indices.
template <typename T>
std::vector<T> gather(const std::vector<T>& vs,
                      const std::vector<std::size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(vs[i]);
  return out;
}

}  // namespace bcl
