#include "geometry/min_diameter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bcl {

namespace {

struct SearchState {
  std::size_t m = 0;
  std::size_t k = 0;
  const DistanceMatrix* dist = nullptr;
  std::vector<std::size_t> current;
  // The search compares squared diameters throughout (sqrt is monotone, so
  // pruning and argmin are unchanged) and takes one sqrt of the winner at
  // the end — dist2() is a load where dist() would put a sqrt in the
  // innermost branch-and-bound loop.
  double current_diam2 = 0.0;
  std::vector<std::size_t> best;
  double best_diam2 = std::numeric_limits<double>::infinity();
};

void search(SearchState& s, std::size_t next) {
  if (s.current.size() == s.k) {
    // Strict improvement keeps the first (lexicographically smallest)
    // optimal subset.
    if (s.current_diam2 < s.best_diam2) {
      s.best_diam2 = s.current_diam2;
      s.best = s.current;
    }
    return;
  }
  const std::size_t needed = s.k - s.current.size();
  for (std::size_t i = next; i + needed <= s.m; ++i) {
    double new_diam2 = s.current_diam2;
    for (std::size_t j : s.current) {
      new_diam2 = std::max(new_diam2, s.dist->dist2(i, j));
    }
    if (new_diam2 >= s.best_diam2) continue;  // prune
    s.current.push_back(i);
    const double saved = s.current_diam2;
    s.current_diam2 = new_diam2;
    search(s, i + 1);
    s.current_diam2 = saved;
    s.current.pop_back();
  }
}

void check_subset_size(std::size_t k, std::size_t m) {
  if (k == 0 || k > m) {
    throw std::invalid_argument("min_diameter_subset: invalid subset size");
  }
}

// Depth-first enumeration keeping every subset whose running diameter stays
// within `limit`.
template <typename Visit>
void enumerate_within(const DistanceMatrix& dist, std::size_t k, double limit,
                      Visit&& visit) {
  const std::size_t m = dist.size();
  std::vector<std::size_t> current;
  current.reserve(k);
  const auto recurse = [&](auto&& self, std::size_t next, double diam) -> void {
    if (current.size() == k) {
      visit(current, diam);
      return;
    }
    const std::size_t needed = k - current.size();
    for (std::size_t i = next; i + needed <= m; ++i) {
      double new_diam = diam;
      for (std::size_t j : current) new_diam = std::max(new_diam, dist.dist(i, j));
      if (new_diam > limit) continue;
      current.push_back(i);
      self(self, i + 1, new_diam);
      current.pop_back();
    }
  };
  recurse(recurse, 0, 0.0);
}

}  // namespace

MinDiameterResult min_diameter_subset(const DistanceMatrix& dist,
                                      std::size_t k) {
  check_subset_size(k, dist.size());
  SearchState s;
  s.m = dist.size();
  s.k = k;
  s.dist = &dist;
  s.current.reserve(k);
  search(s, 0);
  MinDiameterResult out;
  out.indices = std::move(s.best);
  out.diameter = s.best_diam2 == std::numeric_limits<double>::infinity()
                     ? 0.0
                     : std::sqrt(s.best_diam2);
  return out;
}

MinDiameterResult min_diameter_subset(const VectorList& points,
                                      std::size_t k) {
  check_subset_size(k, points.size());
  check_same_dimension(points);
  return min_diameter_subset(DistanceMatrix(points), k);
}

std::vector<MinDiameterResult> min_diameter_subsets(const DistanceMatrix& dist,
                                                    std::size_t k,
                                                    double rel_tol) {
  const MinDiameterResult best = min_diameter_subset(dist, k);
  const double limit = best.diameter * (1.0 + rel_tol) + 1e-300;
  std::vector<MinDiameterResult> out;
  enumerate_within(dist, k, limit,
                   [&](const std::vector<std::size_t>& indices, double diam) {
                     out.push_back(MinDiameterResult{indices, diam});
                   });
  return out;
}

std::vector<MinDiameterResult> min_diameter_subsets(const VectorList& points,
                                                    std::size_t k,
                                                    double rel_tol) {
  check_subset_size(k, points.size());
  check_same_dimension(points);
  // One matrix now serves both the optimum search and the tie enumeration
  // (the legacy code built the full distance set twice).
  return min_diameter_subsets(DistanceMatrix(points), k, rel_tol);
}

}  // namespace bcl
