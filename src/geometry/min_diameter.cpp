#include "geometry/min_diameter.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace bcl {

namespace {

struct SearchState {
  std::size_t m = 0;
  std::size_t k = 0;
  const std::vector<std::vector<double>>* dist = nullptr;
  std::vector<std::size_t> current;
  double current_diam = 0.0;
  std::vector<std::size_t> best;
  double best_diam = std::numeric_limits<double>::infinity();
};

void search(SearchState& s, std::size_t next) {
  if (s.current.size() == s.k) {
    // Strict improvement keeps the first (lexicographically smallest)
    // optimal subset.
    if (s.current_diam < s.best_diam) {
      s.best_diam = s.current_diam;
      s.best = s.current;
    }
    return;
  }
  const std::size_t needed = s.k - s.current.size();
  for (std::size_t i = next; i + needed <= s.m; ++i) {
    double new_diam = s.current_diam;
    for (std::size_t j : s.current) {
      new_diam = std::max(new_diam, (*s.dist)[i][j]);
    }
    if (new_diam >= s.best_diam) continue;  // prune
    s.current.push_back(i);
    const double saved = s.current_diam;
    s.current_diam = new_diam;
    search(s, i + 1);
    s.current_diam = saved;
    s.current.pop_back();
  }
}

}  // namespace

std::vector<MinDiameterResult> min_diameter_subsets(const VectorList& points,
                                                    std::size_t k,
                                                    double rel_tol) {
  const MinDiameterResult best = min_diameter_subset(points, k);
  const double limit = best.diameter * (1.0 + rel_tol) + 1e-300;
  std::vector<MinDiameterResult> out;
  const std::size_t m = points.size();
  std::vector<std::vector<double>> dist(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      dist[i][j] = dist[j][i] = distance(points[i], points[j]);
    }
  }
  std::vector<std::size_t> current;
  current.reserve(k);
  // Depth-first enumeration keeping every subset whose running diameter
  // stays within the tolerance band of the optimum.
  std::function<void(std::size_t, double)> visit = [&](std::size_t next,
                                                       double diam) {
    if (current.size() == k) {
      out.push_back(MinDiameterResult{current, diam});
      return;
    }
    const std::size_t needed = k - current.size();
    for (std::size_t i = next; i + needed <= m; ++i) {
      double new_diam = diam;
      for (std::size_t j : current) new_diam = std::max(new_diam, dist[i][j]);
      if (new_diam > limit) continue;
      current.push_back(i);
      visit(i + 1, new_diam);
      current.pop_back();
    }
  };
  visit(0, 0.0);
  return out;
}

MinDiameterResult min_diameter_subset(const VectorList& points,
                                      std::size_t k) {
  const std::size_t m = points.size();
  if (k == 0 || k > m) {
    throw std::invalid_argument("min_diameter_subset: invalid subset size");
  }
  check_same_dimension(points);
  std::vector<std::vector<double>> dist(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      dist[i][j] = dist[j][i] = distance(points[i], points[j]);
    }
  }
  SearchState s;
  s.m = m;
  s.k = k;
  s.dist = &dist;
  s.current.reserve(k);
  search(s, 0);
  MinDiameterResult out;
  out.indices = std::move(s.best);
  out.diameter = s.best_diam == std::numeric_limits<double>::infinity()
                     ? 0.0
                     : s.best_diam;
  return out;
}

}  // namespace bcl
