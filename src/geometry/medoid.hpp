#pragma once
// Medoid: the input point minimizing the sum of Euclidean distances to all
// other input points.  Used by the Krum family (Section 2.2) and by the
// medoid aggregation rule of El-Mhamdi et al.

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// Index of the medoid of a non-empty list (ties broken by lowest index).
std::size_t medoid_index(const VectorList& points);

/// The medoid point itself.
Vector medoid(const VectorList& points);

/// Sum of distances from points[i] to every other point.
double medoid_score(const VectorList& points, std::size_t i);

}  // namespace bcl
