#pragma once
// Medoid: the input point minimizing the sum of Euclidean distances to all
// other input points.  Used by the Krum family (Section 2.2) and by the
// medoid aggregation rule of El-Mhamdi et al.
//
// Both entry points exist in two forms: the legacy VectorList form, which
// computes the distances it needs on the fly, and a DistanceMatrix form for
// callers that already paid for the shared pairwise matrix (one inbox, many
// rules).  The two produce bitwise-identical results.

#include <cstddef>

#include "linalg/distance_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

/// Index of the medoid of a non-empty list (ties broken by lowest index).
std::size_t medoid_index(const VectorList& points);

/// Medoid index from a precomputed distance matrix (ties broken by lowest
/// index).  Throws std::invalid_argument on an empty matrix.
std::size_t medoid_index(const DistanceMatrix& dist);

/// The medoid point itself.
Vector medoid(const VectorList& points);

/// Sum of distances from points[i] to every other point.
double medoid_score(const VectorList& points, std::size_t i);

/// Same score looked up in a precomputed distance matrix.
double medoid_score(const DistanceMatrix& dist, std::size_t i);

}  // namespace bcl
