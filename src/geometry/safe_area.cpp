#include "geometry/safe_area.hpp"

#include <algorithm>
#include <stdexcept>

#include "geometry/subsets.hpp"

namespace bcl {

std::optional<std::pair<double, double>> safe_area_1d(
    const std::vector<double>& values, std::size_t t) {
  const std::size_t n = values.size();
  if (n == 0 || 2 * t >= n) return std::nullopt;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  // Hull of subset I is [min_I, max_I]; intersecting over all (n-t)-subsets
  // leaves [ (t+1)-th smallest, (n-t)-th smallest ].
  const double lo = sorted[t];
  const double hi = sorted[n - t - 1];
  if (lo > hi) return std::nullopt;
  return std::make_pair(lo, hi);
}

Polygon2 safe_area_2d(const VectorList& points, std::size_t t) {
  const std::size_t n = points.size();
  check_same_dimension(points, n == 0 ? 0 : 2);
  if (n == 0 || t >= n) return {};
  const std::size_t k = n - t;
  Polygon2 area;
  bool first = true;
  for_each_combination(n, k, [&](const std::vector<std::size_t>& idx) {
    if (!first && area.empty()) return;  // already empty; keep skipping
    const Polygon2 hull = convex_hull_2d(gather(points, idx));
    if (first) {
      area = hull;
      first = false;
    } else {
      area = clip_convex(area, hull);
    }
  });
  return area;
}

std::optional<Vector> safe_area_point(const VectorList& points,
                                      std::size_t t) {
  const std::size_t d = check_same_dimension(points);
  if (points.empty()) return std::nullopt;
  if (d == 1) {
    std::vector<double> values;
    values.reserve(points.size());
    for (const auto& p : points) values.push_back(p[0]);
    const auto interval = safe_area_1d(values, t);
    if (!interval) return std::nullopt;
    return Vector{0.5 * (interval->first + interval->second)};
  }
  if (d == 2) {
    const Polygon2 area = safe_area_2d(points, t);
    return polygon_centroid(area);
  }
  throw std::invalid_argument(
      "safe_area_point: exact safe area implemented for d <= 2 only "
      "(the safe-area condition t < n/(d+1) makes it unusable for ML-scale "
      "d anyway; see Theorem 4.1)");
}

}  // namespace bcl
