#pragma once
// Minimum-diameter subset search (Definition 3.4).
//
// MD_geo is an (n - t)-subset of the inputs minimizing the maximum pairwise
// Euclidean distance.  The search is exhaustive over all C(m, k) subsets
// with branch-and-bound pruning on the running diameter, which is exact and
// fast for the paper's parameter regime (m <= ~20).
//
// The search itself only consumes pairwise distances, so both entry points
// also accept a precomputed DistanceMatrix; the VectorList forms build the
// matrix internally and delegate.  Sharing one matrix across the optimum
// search, the tie enumeration, and any other rule in the round removes the
// repeated O(m^2 * d) recomputation that used to dominate.

#include <cstddef>
#include <vector>

#include "linalg/distance_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

struct MinDiameterResult {
  /// Sorted indices of the chosen subset.
  std::vector<std::size_t> indices;
  /// Its diameter (max pairwise distance).
  double diameter = 0.0;
};

/// Finds one subset of size k with minimum diameter among points.
/// Ties are resolved toward the lexicographically smallest index set.
/// Throws if k == 0 or k > points.size().
MinDiameterResult min_diameter_subset(const VectorList& points, std::size_t k);

/// Same search over a precomputed pairwise distance matrix.
MinDiameterResult min_diameter_subset(const DistanceMatrix& dist,
                                      std::size_t k);

/// All subsets of size k whose diameter is within (1 + rel_tol) of the
/// minimum.  "Such a set is not unique" (Definition 3.4) — Lemma 4.2's
/// adversary exploits exactly this freedom, so protocols that want a
/// specific tie-breaking enumerate the tied sets with this helper.
std::vector<MinDiameterResult> min_diameter_subsets(const VectorList& points,
                                                    std::size_t k,
                                                    double rel_tol = 1e-12);

/// Tie enumeration over a precomputed pairwise distance matrix.
std::vector<MinDiameterResult> min_diameter_subsets(const DistanceMatrix& dist,
                                                    std::size_t k,
                                                    double rel_tol = 1e-12);

}  // namespace bcl
