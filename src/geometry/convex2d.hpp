#pragma once
// Planar convex geometry: hulls, point containment, polygon clipping.
//
// These primitives power the exact two-dimensional safe-area computation
// (Definition 2.3): the safe area is the intersection of the convex hulls of
// all (n - t)-subsets, which we evaluate by iterated convex-polygon
// clipping.

#include <optional>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// A convex polygon as a counter-clockwise vertex list.  May be empty (no
/// area), a single point, or a segment (two vertices).
using Polygon2 = std::vector<Vector>;  // each Vector has dimension 2

/// Convex hull (Andrew monotone chain).  Returns CCW vertices without
/// repetition; collinear interior points are dropped.  A hull of 1 or 2
/// distinct points returns that point / segment.
Polygon2 convex_hull_2d(const VectorList& points);

/// Signed area of a CCW polygon (0 for points/segments).
double polygon_area(const Polygon2& poly);

/// True if p lies inside or on the boundary of the convex CCW polygon,
/// within tolerance `tol`.
bool polygon_contains(const Polygon2& poly, const Vector& p, double tol = 1e-9);

/// Intersection of two convex polygons via Sutherland-Hodgman clipping of
/// `subject` against each edge of `clipper`.  Degenerate clippers (points /
/// segments) are handled by clipping against both half-planes of each
/// supporting line.  The result may be empty or degenerate.
Polygon2 clip_convex(const Polygon2& subject, const Polygon2& clipper);

/// A representative point of a polygon: vertex centroid (empty -> nullopt).
std::optional<Vector> polygon_centroid(const Polygon2& poly);

}  // namespace bcl
