#pragma once
// Geometric median via the Weiszfeld algorithm (Weiszfeld 1937; Kuhn 1973),
// the same iterative scheme the paper uses for all GEOM-suffixed rules.
//
// The geometric median of v_1..v_n minimizes sum_i ||v_i - mu||_2
// (Definition 2.2).  Weiszfeld iterates
//     y <- ( sum_i v_i / ||v_i - y|| ) / ( sum_i 1 / ||v_i - y|| )
// with Kuhn's modification when the iterate lands on an input point: the
// point is optimal iff the norm of the summed unit directions to the other
// points is at most its multiplicity; otherwise the iterate is pushed along
// that direction.

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// Options controlling the Weiszfeld iteration.
struct WeiszfeldOptions {
  std::size_t max_iterations = 1000;
  /// Stop when the iterate moves less than `tolerance * (1 + scale)`,
  /// where scale is the spread of the input points.
  double tolerance = 1e-10;
};

/// Result of a geometric-median computation.
struct WeiszfeldResult {
  Vector point;
  std::size_t iterations = 0;
  bool converged = false;
  /// sum_i ||v_i - point||, the minimized objective.
  double objective = 0.0;
};

/// Computes the geometric median of a non-empty list.  For one point the
/// answer is the point; for two points the midpoint (every point on the
/// segment is a minimizer; the midpoint is the canonical symmetric choice).
WeiszfeldResult geometric_median(const VectorList& points,
                                 const WeiszfeldOptions& options = {});

/// Convenience wrapper returning only the median vector.
Vector geometric_median_point(const VectorList& points,
                              const WeiszfeldOptions& options = {});

/// The Fermat objective sum_i ||v_i - y||.
double geometric_median_objective(const VectorList& points, const Vector& y);

/// Smoothed Weiszfeld of Pillutla et al. (RFA): weights 1/max(nu, dist),
/// which removes the anchor singularity at the cost of solving a smoothed
/// objective.  nu is an absolute smoothing radius; the result converges to
/// the geometric median as nu -> 0.
WeiszfeldResult smoothed_geometric_median(const VectorList& points,
                                          double nu,
                                          const WeiszfeldOptions& options = {});

}  // namespace bcl
