#include "geometry/weiszfeld.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "linalg/hyperbox.hpp"

namespace bcl {

double geometric_median_objective(const VectorList& points, const Vector& y) {
  double s = 0.0;
  for (const auto& p : points) s += distance(p, y);
  return s;
}

namespace {

// Returns the index of a point equal to y within `snap`, or npos.
std::size_t coincident_index(const VectorList& points, const Vector& y,
                             double snap) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (distance(points[i], y) <= snap) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

WeiszfeldResult geometric_median(const VectorList& points,
                                 const WeiszfeldOptions& options) {
  if (points.empty()) {
    throw std::invalid_argument("geometric_median: empty point list");
  }
  const std::size_t d = check_same_dimension(points);
  const std::size_t n = points.size();
  WeiszfeldResult result;

  if (n == 1) {
    result.point = points.front();
    result.converged = true;
    return result;
  }
  if (n == 2) {
    result.point = scale(add(points[0], points[1]), 0.5);
    result.converged = true;
    result.objective = geometric_median_objective(points, result.point);
    return result;
  }

  // Majority property: if some point has multiplicity > n/2 it is the
  // geometric median.
  {
    std::map<Vector, std::size_t> counts;
    for (const auto& p : points) ++counts[p];
    for (const auto& [p, c] : counts) {
      if (2 * c > n) {
        result.point = p;
        result.converged = true;
        result.objective = geometric_median_objective(points, p);
        return result;
      }
    }
  }

  const double spread = Hyperbox::bounding(points).diagonal();
  if (spread == 0.0) {
    // All points identical (not caught above only if n is even and split
    // impossible; defensive).
    result.point = points.front();
    result.converged = true;
    return result;
  }
  const double step_tol = options.tolerance * (1.0 + spread);
  const double snap = 1e-14 * (1.0 + spread);

  // Start from the centroid, the standard initial iterate.
  Vector y = mean(points);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    Vector numerator = zeros(d);
    double denominator = 0.0;
    std::size_t anchor = coincident_index(points, y, snap);
    std::size_t anchor_multiplicity = 0;
    Vector pull = zeros(d);  // summed unit directions from y to other points
    for (std::size_t i = 0; i < n; ++i) {
      const double dist_i = distance(points[i], y);
      if (dist_i <= snap) {
        ++anchor_multiplicity;
        continue;
      }
      const double w = 1.0 / dist_i;
      axpy(numerator, w, points[i]);
      denominator += w;
      for (std::size_t k = 0; k < d; ++k) {
        pull[k] += (points[i][k] - y[k]) * w;
      }
    }
    if (anchor != static_cast<std::size_t>(-1)) {
      // Kuhn's optimality test at an input point: y is the geometric median
      // iff ||pull|| <= multiplicity of the anchor.
      const double pull_norm = norm2(pull);
      if (pull_norm <= static_cast<double>(anchor_multiplicity) + 1e-12) {
        result.point = y;
        result.converged = true;
        result.objective = geometric_median_objective(points, y);
        return result;
      }
      // Otherwise push y off the anchor along the pull direction by the
      // standard Kuhn step: move by (||pull|| - mult)/denominator.
      const double move =
          (pull_norm - static_cast<double>(anchor_multiplicity)) / denominator;
      Vector next = y;
      axpy(next, move / pull_norm, pull);
      const double step = distance(next, y);
      y = std::move(next);
      if (step <= step_tol) {
        result.point = y;
        result.converged = true;
        result.objective = geometric_median_objective(points, y);
        return result;
      }
      continue;
    }
    Vector next = scale(numerator, 1.0 / denominator);
    const double step = distance(next, y);
    y = std::move(next);
    if (step <= step_tol) {
      result.point = y;
      result.converged = true;
      result.objective = geometric_median_objective(points, y);
      return result;
    }
  }
  result.point = y;
  result.converged = false;
  result.objective = geometric_median_objective(points, y);
  return result;
}

Vector geometric_median_point(const VectorList& points,
                              const WeiszfeldOptions& options) {
  return geometric_median(points, options).point;
}

WeiszfeldResult smoothed_geometric_median(const VectorList& points,
                                          double nu,
                                          const WeiszfeldOptions& options) {
  if (points.empty()) {
    throw std::invalid_argument("smoothed_geometric_median: empty list");
  }
  if (nu <= 0.0) {
    throw std::invalid_argument("smoothed_geometric_median: nu must be > 0");
  }
  const std::size_t d = check_same_dimension(points);
  WeiszfeldResult result;
  if (points.size() == 1) {
    result.point = points.front();
    result.converged = true;
    return result;
  }
  const double spread = Hyperbox::bounding(points).diagonal();
  const double step_tol = options.tolerance * (1.0 + spread);
  Vector y = mean(points);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    Vector numerator = zeros(d);
    double denominator = 0.0;
    for (const auto& p : points) {
      // Smoothing floor: the weight saturates once a point is within nu.
      const double w = 1.0 / std::max(nu, distance(p, y));
      axpy(numerator, w, p);
      denominator += w;
    }
    Vector next = scale(numerator, 1.0 / denominator);
    const double step = distance(next, y);
    y = std::move(next);
    if (step <= step_tol) {
      result.converged = true;
      break;
    }
  }
  result.point = std::move(y);
  result.objective = geometric_median_objective(points, result.point);
  return result;
}

}  // namespace bcl
