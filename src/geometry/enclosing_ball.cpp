#include "geometry/enclosing_ball.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace bcl {

bool Ball::contains(const Vector& p, double tol) const {
  return distance(p, center) <= radius + tol;
}

namespace {

Ball exact_interval_ball(const VectorList& points) {
  double lo = points.front()[0];
  double hi = lo;
  for (const auto& p : points) {
    lo = std::min(lo, p[0]);
    hi = std::max(hi, p[0]);
  }
  return Ball{Vector{0.5 * (lo + hi)}, 0.5 * (hi - lo)};
}

// --- Exact 2-D smallest enclosing circle (Welzl) ---

Ball circle_from_two(const Vector& a, const Vector& b) {
  Ball c;
  c.center = {0.5 * (a[0] + b[0]), 0.5 * (a[1] + b[1])};
  c.radius = 0.5 * distance(a, b);
  return c;
}

// Circumscribed circle of a non-degenerate triangle; falls back to the
// two-point circle of the farthest pair when (nearly) collinear.
Ball circle_from_three(const Vector& a, const Vector& b, const Vector& c) {
  const double ax = a[0], ay = a[1];
  const double bx = b[0], by = b[1];
  const double cx = c[0], cy = c[1];
  const double det = 2.0 * ((bx - ax) * (cy - ay) - (by - ay) * (cx - ax));
  const double span = std::max({distance(a, b), distance(b, c), distance(a, c)});
  if (std::abs(det) <= 1e-12 * (1.0 + span * span)) {
    Ball best = circle_from_two(a, b);
    for (const Ball& cand : {circle_from_two(b, c), circle_from_two(a, c)}) {
      if (cand.radius > best.radius) best = cand;
    }
    return best;
  }
  const double a2 = ax * ax + ay * ay;
  const double b2 = bx * bx + by * by;
  const double c2 = cx * cx + cy * cy;
  const double ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / det;
  const double uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / det;
  Ball out;
  out.center = {ux, uy};
  out.radius = distance(out.center, a);
  return out;
}

Ball trivial_circle(const VectorList& support) {
  switch (support.size()) {
    case 0:
      return Ball{Vector{0.0, 0.0}, -1.0};  // radius < 0 contains nothing
    case 1:
      return Ball{support[0], 0.0};
    case 2:
      return circle_from_two(support[0], support[1]);
    default:
      return circle_from_three(support[0], support[1], support[2]);
  }
}

constexpr double kWelzlTol = 1e-9;

Ball welzl_recursive(VectorList& pts, std::size_t n, VectorList support) {
  if (n == 0 || support.size() == 3) return trivial_circle(support);
  Ball ball = welzl_recursive(pts, n - 1, support);
  const Vector& p = pts[n - 1];
  if (ball.radius >= 0.0 &&
      ball.contains(p, kWelzlTol * (1.0 + ball.radius))) {
    return ball;
  }
  support.push_back(p);
  return welzl_recursive(pts, n - 1, std::move(support));
}

// --- Badoiu-Clarkson (1+eps) ball for general dimension ---

Ball badoiu_clarkson(const VectorList& points,
                     const EnclosingBallOptions& options) {
  const double eps = std::max(options.epsilon, 1e-6);
  std::size_t iterations = static_cast<std::size_t>(1.0 / (eps * eps)) + 1;
  iterations = std::min(iterations, options.max_iterations);
  Vector c = points.front();
  for (std::size_t it = 1; it <= iterations; ++it) {
    // Farthest point from the current center.
    std::size_t far = 0;
    double far_d2 = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d2 = distance_squared(points[i], c);
      if (d2 > far_d2) {
        far_d2 = d2;
        far = i;
      }
    }
    if (far_d2 == 0.0) break;
    const double step = 1.0 / static_cast<double>(it + 1);
    for (std::size_t k = 0; k < c.size(); ++k) {
      c[k] += step * (points[far][k] - c[k]);
    }
  }
  Ball out;
  out.center = std::move(c);
  double r2 = 0.0;
  for (const auto& p : points) r2 = std::max(r2, distance_squared(p, out.center));
  out.radius = std::sqrt(r2);
  return out;
}

}  // namespace

Ball welzl_circle(const VectorList& points) {
  if (points.empty()) {
    throw std::invalid_argument("welzl_circle: empty point list");
  }
  check_same_dimension(points, 2);
  VectorList pts = points;
  // Shuffle for the expected-linear-time guarantee; seed fixed for
  // reproducibility.
  Rng rng(0xC1C1E5u);
  rng.shuffle(pts);
  Ball ball = welzl_recursive(pts, pts.size(), {});
  if (ball.radius < 0.0) ball = Ball{pts.front(), 0.0};
  return ball;
}

Ball minimum_enclosing_ball(const VectorList& points,
                            const EnclosingBallOptions& options) {
  if (points.empty()) {
    throw std::invalid_argument("minimum_enclosing_ball: empty point list");
  }
  const std::size_t d = check_same_dimension(points);
  if (points.size() == 1) return Ball{points.front(), 0.0};
  if (d == 1) return exact_interval_ball(points);
  if (d == 2) return welzl_circle(points);
  return badoiu_clarkson(points, options);
}

}  // namespace bcl
