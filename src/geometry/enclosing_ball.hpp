#pragma once
// Minimum enclosing ball.
//
// The paper's approximation measure (Definition 3.3) is defined through the
// radius r_cov of the minimum covering ball of S_geo, the set of geometric
// medians of all (n - t)-subsets.  We provide an exact solver in one and two
// dimensions (Welzl's algorithm) and the Badoiu-Clarkson core-set iteration
// for arbitrary dimension, which converges to a (1 + eps) approximation
// after O(1/eps^2) iterations.

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// A Euclidean ball.
struct Ball {
  Vector center;
  double radius = 0.0;

  /// True if p is inside the ball within tolerance `tol`.
  bool contains(const Vector& p, double tol = 0.0) const;
};

struct EnclosingBallOptions {
  /// Target relative accuracy for the high-dimensional iterative solver.
  double epsilon = 1e-3;
  /// Hard cap on iterations (overrides epsilon if smaller).
  std::size_t max_iterations = 200000;
};

/// Minimum enclosing ball of a non-empty point set.
/// d == 1 and d == 2 are solved exactly (interval / Welzl); higher
/// dimensions use Badoiu-Clarkson and are accurate to a (1 + epsilon)
/// factor in the radius.
Ball minimum_enclosing_ball(const VectorList& points,
                            const EnclosingBallOptions& options = {});

/// Exact smallest enclosing circle via Welzl's randomized incremental
/// algorithm; requires all points to have dimension 2.
Ball welzl_circle(const VectorList& points);

}  // namespace bcl
