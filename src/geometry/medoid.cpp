#include "geometry/medoid.hpp"

#include <stdexcept>

namespace bcl {

double medoid_score(const VectorList& points, std::size_t i) {
  if (i >= points.size()) {
    throw std::invalid_argument("medoid_score: index out of range");
  }
  double s = 0.0;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j != i) s += distance(points[i], points[j]);
  }
  return s;
}

std::size_t medoid_index(const VectorList& points) {
  if (points.empty()) throw std::invalid_argument("medoid of empty list");
  check_same_dimension(points);
  std::size_t best = 0;
  double best_score = medoid_score(points, 0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double s = medoid_score(points, i);
    if (s < best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

Vector medoid(const VectorList& points) {
  return points[medoid_index(points)];
}

}  // namespace bcl
