#include "geometry/medoid.hpp"

#include <stdexcept>

namespace bcl {

double medoid_score(const VectorList& points, std::size_t i) {
  if (i >= points.size()) {
    throw std::invalid_argument("medoid_score: index out of range");
  }
  double s = 0.0;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j != i) s += distance(points[i], points[j]);
  }
  return s;
}

double medoid_score(const DistanceMatrix& dist, std::size_t i) {
  if (i >= dist.size()) {
    throw std::invalid_argument("medoid_score: index out of range");
  }
  return dist.row_sum(i);
}

std::size_t medoid_index(const DistanceMatrix& dist) {
  if (dist.empty()) throw std::invalid_argument("medoid of empty list");
  std::size_t best = 0;
  double best_score = dist.row_sum(0);
  for (std::size_t i = 1; i < dist.size(); ++i) {
    const double s = dist.row_sum(i);
    if (s < best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

std::size_t medoid_index(const VectorList& points) {
  if (points.empty()) throw std::invalid_argument("medoid of empty list");
  check_same_dimension(points);
  // Build the shared matrix once: each pair is measured a single time
  // instead of twice (score(i) and score(j) both touching d(i, j)).
  return medoid_index(DistanceMatrix(points));
}

Vector medoid(const VectorList& points) {
  return points[medoid_index(points)];
}

}  // namespace bcl
