#pragma once
// The safe area of Mendes-Herlihy-Vaidya-Garg (Definition 2.3): the
// intersection of the convex hulls of every (n - t)-subset of the inputs.
//
// The safe area only exists when t < n / max(3, d + 1), so it is computable
// in practice only for very low dimension; we provide exact solvers for
// d = 1 (interval arithmetic) and d = 2 (iterated convex clipping).  These
// are what Theorem 4.1's unbounded-approximation counterexamples exercise.

#include <optional>

#include "geometry/convex2d.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

/// Exact 1-D safe area: the interval [v_(t+1), v_(n-t)] (1-indexed order
/// statistics).  Returns nullopt when empty (t too large).
std::optional<std::pair<double, double>> safe_area_1d(
    const std::vector<double>& values, std::size_t t);

/// Exact 2-D safe area as a convex polygon (possibly a point or segment).
/// Empty polygon result means the safe area is empty.
Polygon2 safe_area_2d(const VectorList& points, std::size_t t);

/// A representative vector of the safe area used as the agreement output:
/// interval midpoint in 1-D, polygon vertex centroid in 2-D.  Returns
/// nullopt when the safe area is empty.
std::optional<Vector> safe_area_point(const VectorList& points, std::size_t t);

}  // namespace bcl
