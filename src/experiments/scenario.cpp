#include "experiments/scenario.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "compression/registry.hpp"
#include "faults/fault_plan.hpp"
#include "faults/staleness.hpp"
#include "learning/cohort.hpp"
#include "network/delay_model.hpp"
#include "util/parse.hpp"

namespace bcl::experiments {
namespace {

std::string join_keys() { return join_names(scenario_keys()); }

// Shared grammar formatting policy (util/parse).
std::string format_g(double value) { return format_double_g(value); }

std::size_t parse_size(const std::string& key, const std::string& value) {
  return static_cast<std::size_t>(
      parse_strict_u64(value, "ScenarioSpec: key '" + key + "'"));
}

double parse_double(const std::string& key, const std::string& value) {
  return parse_strict_double(value, "ScenarioSpec: key '" + key + "'");
}

}  // namespace

const char* topology_name(Topology topology) {
  return topology == Topology::Centralized ? "centralized" : "decentralized";
}

Topology parse_topology(const std::string& name) {
  if (name == "centralized") return Topology::Centralized;
  if (name == "decentralized") return Topology::Decentralized;
  throw std::invalid_argument("ScenarioSpec: unknown topology '" + name +
                              "' (valid: centralized, decentralized)");
}

const char* model_kind_name(ModelKind model) {
  return model == ModelKind::Mlp ? "mlp" : "cifarnet";
}

ModelKind parse_model_kind(const std::string& name) {
  if (name == "mlp") return ModelKind::Mlp;
  if (name == "cifarnet") return ModelKind::CifarNet;
  throw std::invalid_argument("ScenarioSpec: unknown model '" + name +
                              "' (valid: mlp, cifarnet)");
}

const std::vector<std::string>& scenario_keys() {
  static const std::vector<std::string> keys = {
      "label", "rule",  "attack", "n",         "f",     "t",
      "topology", "model", "het",  "scale",    "rounds", "batch",
      "lr",    "subrounds", "delay", "net",    "comp",   "faults",
      "stale", "cohort", "sketch", "trace", "seed",  "eval-max"};
  return keys;
}

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  if (key == "label") {
    // The textual grammar is whitespace-separated, so a label containing
    // whitespace could never parse back — reject it here so the
    // parse(to_string()) round-trip holds for every constructible spec.
    if (value.find_first_of(" \t\n\r") != std::string::npos) {
      throw std::invalid_argument(
          "ScenarioSpec: label must not contain whitespace, got '" + value +
          "'");
    }
    label = value;
  } else if (key == "rule") {
    rule = value;
  } else if (key == "attack") {
    attack = value;
  } else if (key == "n") {
    clients = parse_size(key, value);
  } else if (key == "f") {
    byzantine = parse_size(key, value);
  } else if (key == "t") {
    tolerance = parse_size(key, value);
  } else if (key == "topology") {
    topology = parse_topology(value);
  } else if (key == "model") {
    model = parse_model_kind(value);
  } else if (key == "het") {
    heterogeneity = ml::parse_heterogeneity(value);
  } else if (key == "scale") {
    if (value == "reduced") {
      full_scale = false;
    } else if (value == "full") {
      full_scale = true;
    } else {
      throw std::invalid_argument("ScenarioSpec: unknown scale '" + value +
                                  "' (valid: reduced, full)");
    }
  } else if (key == "rounds") {
    rounds = parse_size(key, value);
  } else if (key == "batch") {
    batch = parse_size(key, value);
  } else if (key == "lr") {
    lr = parse_double(key, value);
  } else if (key == "subrounds") {
    subrounds = parse_size(key, value);
  } else if (key == "delay") {
    delay = parse_double(key, value);
  } else if (key == "net") {
    // Validate the grammar eagerly (NetConfig::parse throws with the valid
    // modes/keys listed) but store the user's text verbatim so the
    // artifact replays exactly what was written.
    (void)NetConfig::parse(value);
    net = value;
  } else if (key == "comp") {
    // Same eager-validation / verbatim-storage policy as `net`: the codec
    // registry rejects unknown families and keys with the menus attached.
    (void)make_codec(value);
    comp = value;
  } else if (key == "faults") {
    // Eager validation / verbatim storage, like `net` and `comp`: the
    // fault grammar rejects unknown families and keys with the menus
    // attached, and the artifact replays exactly what was written.
    (void)FaultConfig::parse(value);
    faults = value;
  } else if (key == "stale") {
    (void)StaleConfig::parse(value);
    stale = value;
  } else if (key == "cohort") {
    (void)CohortConfig::parse(value);
    cohort = value;
  } else if (key == "sketch") {
    if (value != "auto" && value != "on" && value != "off") {
      throw std::invalid_argument("ScenarioSpec: unknown sketch '" + value +
                                  "' (valid: auto, on, off)");
    }
    sketch = value;
  } else if (key == "trace") {
    if (value != "off" && value != "spans" && value != "full") {
      throw std::invalid_argument("ScenarioSpec: unknown trace '" + value +
                                  "' (valid: off, spans, full)");
    }
    trace = value;
  } else if (key == "seed") {
    seed = static_cast<std::uint64_t>(parse_size(key, value));
  } else if (key == "eval-max") {
    eval_max = parse_size(key, value);
  } else {
    throw std::invalid_argument("ScenarioSpec: unknown key '" + key +
                                "' (valid: " + join_keys() + ")");
  }
}

void ScenarioSpec::apply(const std::string& text) {
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(
          "ScenarioSpec: malformed token '" + token +
          "' (expected key=value; valid keys: " + join_keys() + ")");
    }
    set(token.substr(0, eq), token.substr(eq + 1));
  }
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  spec.apply(text);
  return spec;
}

std::string ScenarioSpec::to_string() const {
  std::string out;
  if (!label.empty()) out += "label=" + label + " ";
  out += "rule=" + rule;
  out += " attack=" + attack;
  out += " n=" + std::to_string(clients);
  out += " f=" + std::to_string(byzantine);
  out += " t=" + std::to_string(tolerance);
  out += std::string(" topology=") + topology_name(topology);
  out += std::string(" model=") + model_kind_name(model);
  out += std::string(" het=") + ml::heterogeneity_name(heterogeneity);
  out += std::string(" scale=") + (full_scale ? "full" : "reduced");
  out += " rounds=" + std::to_string(rounds);
  out += " batch=" + std::to_string(batch);
  out += " lr=" + format_g(lr);
  out += " subrounds=" + std::to_string(subrounds);
  out += " delay=" + format_g(delay);
  out += " net=" + net;
  out += " comp=" + comp;
  out += " faults=" + faults;
  out += " stale=" + stale;
  out += " cohort=" + cohort;
  out += " sketch=" + sketch;
  out += " trace=" + trace;
  out += " seed=" + std::to_string(seed);
  out += " eval-max=" + std::to_string(eval_max);
  return out;
}

std::string ScenarioSpec::name() const {
  if (!label.empty()) return label;
  std::string out = topology == Topology::Centralized ? "cen" : "dec";
  if (model == ModelKind::CifarNet) out += "/cifar";
  out += std::string("/") + ml::heterogeneity_name(heterogeneity);
  out += "/" + rule;
  out += "/" + attack;
  out += "/f" + std::to_string(byzantine);
  if (subrounds > 0) out += "/k" + std::to_string(subrounds);
  if (net != "sync") out += "/" + net;
  if (comp != "identity") out += "/" + comp;
  if (faults != "none") out += "/" + faults;
  if (stale != "none") out += "/stale:" + stale;
  if (cohort != "none") out += "/cohort:" + cohort;
  if (sketch != "auto") out += "/sketch:" + sketch;
  if (trace != "off") out += "/trace:" + trace;
  return out;
}

}  // namespace bcl::experiments
