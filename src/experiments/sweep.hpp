#pragma once
// Cross-product sweep expansion shared by the bcl_run CLI and the tests.
//
// A sweep is the cross-product of per-dimension value lists (each value a
// string in that dimension's own grammar).  expand_sweep() materializes
// the grid in a fixed documented order — the exact order ScenarioRunner
// executes and the emitters record — so `bcl_run --dry-run` can print the
// grid without running a cell and a test can assert that what would run
// matches what does run, cell for cell.
//
// Axis nesting, outermost first: topology > het > f > net > comp >
// faults > rule > attack (the innermost axes vary fastest, so related
// cells sit next to each other in the artifacts).

#include <functional>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"

namespace bcl::experiments {

/// The sweep axes (defaults reproduce bcl_run's single-cell defaults).
/// Values are grammar strings handed to ScenarioSpec::set, so invalid
/// entries fail with the spec grammar's own messages.
struct SweepAxes {
  std::vector<std::string> topologies = {"centralized"};
  std::vector<std::string> hets = {"mild"};
  std::vector<std::string> fs = {"1"};
  std::vector<std::string> nets = {"sync"};
  std::vector<std::string> comps = {"identity"};
  std::vector<std::string> faults = {"none"};
  std::vector<std::string> rules = {"BOX-GEOM"};
  std::vector<std::string> attacks = {"sign-flip"};
};

/// Expands the cross-product in the documented order.  `finalize`, when
/// set, runs on every spec after the axis values are applied (bcl_run uses
/// it for the shared scalar flag overrides).  Throws std::invalid_argument
/// on any malformed axis value, before any cell would run.
std::vector<ScenarioSpec> expand_sweep(
    const SweepAxes& axes,
    const std::function<void(ScenarioSpec&)>& finalize = {});

}  // namespace bcl::experiments
