#include "experiments/sweep.hpp"

namespace bcl::experiments {

std::vector<ScenarioSpec> expand_sweep(
    const SweepAxes& axes,
    const std::function<void(ScenarioSpec&)>& finalize) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(axes.topologies.size() * axes.hets.size() * axes.fs.size() *
                axes.nets.size() * axes.comps.size() * axes.faults.size() *
                axes.rules.size() * axes.attacks.size());
  for (const auto& topology : axes.topologies) {
    for (const auto& het : axes.hets) {
      for (const auto& f : axes.fs) {
        for (const auto& net : axes.nets) {
          for (const auto& comp : axes.comps) {
            for (const auto& fault : axes.faults) {
              for (const auto& rule : axes.rules) {
                for (const auto& attack : axes.attacks) {
                  ScenarioSpec spec;
                  spec.set("topology", topology);
                  spec.set("het", het);
                  spec.set("f", f);
                  spec.set("net", net);
                  spec.set("comp", comp);
                  spec.set("faults", fault);
                  spec.set("rule", rule);
                  spec.set("attack", attack);
                  if (finalize) finalize(spec);
                  specs.push_back(std::move(spec));
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace bcl::experiments
