#pragma once
// Pluggable metric sinks for the scenario engine.
//
// A MetricsEmitter observes a ScenarioRunner: begin_scenario() before the
// first round of each scenario, emit_round() after every training round
// (streamed live through TrainingConfig::on_round, not replayed at the
// end), end_scenario() with the full summary, and finish() once after the
// last scenario to flush artifacts.  Emitters are passed to the runner as
// raw pointers: the *caller* owns them and must keep them alive until
// finish() returns; the runner never deletes or retains them beyond the
// run_all() call.  Emitters are driven from the runner's thread only — no
// internal locking — and a single emitter instance may observe many
// scenarios in sequence but never concurrently.

#include <iosfwd>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "learning/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace bcl::experiments {

struct ScenarioSummary;

/// Observer interface (see file comment for the call protocol and
/// lifetime contract).  All hooks default to no-ops so emitters override
/// only the events they consume.
class MetricsEmitter {
 public:
  virtual ~MetricsEmitter() = default;
  virtual void begin_scenario(const ScenarioSpec& spec);
  virtual void emit_round(const ScenarioSpec& spec,
                          const RoundMetrics& metrics);
  virtual void end_scenario(const ScenarioSummary& summary);
  /// Flush artifacts (tables to the console, files to disk).  Called once
  /// by ScenarioRunner::run_all after the last scenario; callers driving
  /// run() directly must call it themselves.
  virtual void finish();
};

/// Human-readable progress + final tables, in the style of the original
/// figure harnesses: one "[name] ... best=... final=..." line per finished
/// scenario, then an accuracy-series table (sampled at ~12 rounds per
/// scenario) and a summary table on finish().  `os` must outlive the
/// emitter.
class ConsoleEmitter final : public MetricsEmitter {
 public:
  explicit ConsoleEmitter(std::ostream& os, std::size_t series_samples = 12);
  void begin_scenario(const ScenarioSpec& spec) override;
  void emit_round(const ScenarioSpec& spec,
                  const RoundMetrics& metrics) override;
  void end_scenario(const ScenarioSummary& summary) override;
  void finish() override;

 private:
  std::ostream& os_;
  std::size_t series_samples_;
  std::vector<std::pair<std::string, std::vector<RoundMetrics>>> series_;
  Table summary_;
};

/// CSV artifacts: <base>_series.csv (every round of every scenario) and
/// <base>_summary.csv (one row per scenario), written on finish().
class CsvEmitter final : public MetricsEmitter {
 public:
  explicit CsvEmitter(std::string base_path);
  void emit_round(const ScenarioSpec& spec,
                  const RoundMetrics& metrics) override;
  void end_scenario(const ScenarioSummary& summary) override;
  void finish() override;

 private:
  std::string base_path_;
  Table series_;
  Table summary_;
};

/// Machine-readable JSON artifact (one array, one object per scenario with
/// its spec string, summary numbers and full per-round series), written on
/// finish() — the scenario-level counterpart of bench/bench_json.hpp's
/// micro-bench records, uploaded by CI next to them.
class JsonEmitter final : public MetricsEmitter {
 public:
  explicit JsonEmitter(std::string path);
  void begin_scenario(const ScenarioSpec& spec) override;
  void emit_round(const ScenarioSpec& spec,
                  const RoundMetrics& metrics) override;
  void end_scenario(const ScenarioSummary& summary) override;
  /// Writes the file; throws std::runtime_error on I/O failure.
  void finish() override;

 private:
  struct Entry {
    ScenarioSpec spec;
    std::vector<RoundMetrics> rounds;
    double best_accuracy = 0.0;
    double final_accuracy = 0.0;
    double seconds = 0.0;
    double sim_seconds = 0.0;  ///< total simulated network time
    double bytes = 0.0;        ///< total delivered wire bytes
    double compression_ratio = 1.0;  ///< dense-equivalent / delivered
    double rounds_degraded = 0.0;    ///< rounds below the designed quorum
    double stale_accepted = 0.0;     ///< stale-but-within-tau submissions
    double stale_rejected = 0.0;     ///< submissions older than tau
    std::string error;
    /// Unified registry snapshot (net.* / agreement.* / sketch.* counters,
    /// round.* histograms), emitted as a "metrics" block with p50/p95/p99
    /// per histogram.
    obs::MetricsSnapshot metrics;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

/// Flight-recorder artifacts: one trace_<cell>.json (Chrome trace-event /
/// Perfetto JSON) per traced scenario under `dir` (created on demand), plus
/// an aggregate per-phase self-time table on finish() when `profile` is set
/// (the bcl_run --profile report; validated by tools/check_trace.py).
/// Scenarios with an empty trace (trace=off cells) write nothing.
class TraceEmitter final : public MetricsEmitter {
 public:
  /// `os` receives the profile table (defaults to std::cout when null).
  explicit TraceEmitter(std::string dir, bool profile = false,
                        std::ostream* os = nullptr);
  void end_scenario(const ScenarioSummary& summary) override;
  void finish() override;

  /// Paths written so far (tests and bcl_run's completion message).
  const std::vector<std::string>& written() const { return written_; }

 private:
  std::string dir_;
  bool profile_;
  std::ostream* os_;
  std::vector<obs::TraceRecord> all_records_;
  std::vector<std::string> written_;
};

}  // namespace bcl::experiments
