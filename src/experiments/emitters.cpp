#include "experiments/emitters.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "experiments/runner.hpp"

namespace bcl::experiments {

void MetricsEmitter::begin_scenario(const ScenarioSpec& /*spec*/) {}
void MetricsEmitter::emit_round(const ScenarioSpec& /*spec*/,
                                const RoundMetrics& /*metrics*/) {}
void MetricsEmitter::end_scenario(const ScenarioSummary& /*summary*/) {}
void MetricsEmitter::finish() {}

// --- console ---------------------------------------------------------------

ConsoleEmitter::ConsoleEmitter(std::ostream& os, std::size_t series_samples)
    : os_(os),
      series_samples_(std::max<std::size_t>(1, series_samples)),
      summary_({"scenario", "rule", "attack", "best acc", "final acc",
                "rounds", "degr", "seconds", "MB", "comp x"}) {}

void ConsoleEmitter::begin_scenario(const ScenarioSpec& spec) {
  series_.emplace_back(spec.name(), std::vector<RoundMetrics>{});
}

void ConsoleEmitter::emit_round(const ScenarioSpec& /*spec*/,
                                const RoundMetrics& metrics) {
  series_.back().second.push_back(metrics);
}

void ConsoleEmitter::end_scenario(const ScenarioSummary& summary) {
  const auto& result = summary.result;
  if (!summary.error.empty()) {
    summary_.new_row()
        .add(summary.spec.name())
        .add(summary.spec.rule)
        .add(summary.spec.attack)
        .add("FAILED")
        .add("FAILED")
        .add_int(static_cast<long long>(result.history.size()))
        .add("-")
        .add_num(summary.seconds, 2)
        .add("-")
        .add("-");
    os_ << "[" << summary.spec.name() << "] FAILED: " << summary.error
        << "\n";
    return;
  }
  summary_.new_row()
      .add(summary.spec.name())
      .add(summary.spec.rule)
      .add(summary.spec.attack)
      .add_num(result.best_accuracy(), 4)
      .add_num(result.final_accuracy, 4)
      .add_int(static_cast<long long>(result.history.size()))
      .add_int(static_cast<long long>(result.rounds_degraded_total()))
      .add_num(summary.seconds, 2)
      .add_num(result.bytes_total() / 1e6, 2)
      .add_num(result.compression_ratio(), 1);
  os_ << "[" << summary.spec.name()
      << "] best=" << format_double(result.best_accuracy(), 4)
      << " final=" << format_double(result.final_accuracy, 4) << " ("
      << format_double(summary.seconds, 2) << "s)\n";
}

void ConsoleEmitter::finish() {
  Table series({"scenario", "round", "accuracy", "loss", "grad diameter",
                "live", "cohort", "sim s"});
  for (const auto& [name, rounds] : series_) {
    if (rounds.empty()) continue;
    const std::size_t stride =
        std::max<std::size_t>(1, rounds.size() / series_samples_);
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      if (i % stride != 0 && i + 1 != rounds.size()) continue;
      series.new_row()
          .add(name)
          .add_int(static_cast<long long>(rounds[i].round))
          .add_num(rounds[i].accuracy, 4)
          .add_num(rounds[i].mean_honest_loss, 4)
          .add_num(rounds[i].gradient_diameter, 4)
          .add_num(rounds[i].live_clients, 0)
          .add_num(rounds[i].cohort, 0)
          .add_num(rounds[i].sim_seconds, 3);
    }
  }
  os_ << "\n--- accuracy series ---\n";
  series.print(os_);
  os_ << "\n--- summary ---\n";
  summary_.print(os_);
}

// --- CSV -------------------------------------------------------------------

CsvEmitter::CsvEmitter(std::string base_path)
    : base_path_(std::move(base_path)),
      series_({"scenario", "round", "accuracy", "accuracy_min",
               "accuracy_max", "loss", "lr", "disagreement",
               "gradient_diameter", "live_clients", "cohort", "shards",
               "stale_accepted", "stale_rejected", "degraded", "seconds",
               "sim_seconds", "bytes", "compression_ratio"}),
      summary_({"scenario", "rule", "attack", "topology", "heterogeneity",
                "f", "net", "comp", "faults", "stale", "cohort",
                "best_accuracy", "final_accuracy", "rounds_degraded",
                "stale_accepted", "stale_rejected", "gram_builds",
                "shared_hits", "sketch_certified", "sketch_fallbacks",
                "seconds", "sim_seconds", "bytes", "compression_ratio",
                "error"}) {}

void CsvEmitter::emit_round(const ScenarioSpec& spec,
                            const RoundMetrics& m) {
  const double ratio =
      m.bytes_delivered > 0.0 ? m.bytes_dense / m.bytes_delivered : 1.0;
  series_.new_row()
      .add(spec.name())
      .add_int(static_cast<long long>(m.round))
      .add_num(m.accuracy, 6)
      .add_num(m.accuracy_min, 6)
      .add_num(m.accuracy_max, 6)
      .add_num(m.mean_honest_loss, 6)
      .add_num(m.learning_rate, 6)
      .add_num(m.disagreement, 6)
      .add_num(m.gradient_diameter, 6)
      .add_num(m.live_clients, 0)
      .add_num(m.cohort, 0)
      .add_num(m.shards, 0)
      .add_num(m.stale_accepted, 0)
      .add_num(m.stale_rejected, 0)
      .add_num(m.degraded, 0)
      .add_num(m.seconds, 4)
      .add_num(m.sim_seconds, 4)
      .add_num(m.bytes_delivered, 0)
      .add_num(ratio, 2);
}

void CsvEmitter::end_scenario(const ScenarioSummary& summary) {
  const double sim_total = summary.result.sim_seconds_total();
  summary_.new_row()
      .add(summary.spec.name())
      .add(summary.spec.rule)
      .add(summary.spec.attack)
      .add(topology_name(summary.spec.topology))
      .add(ml::heterogeneity_name(summary.spec.heterogeneity))
      .add_int(static_cast<long long>(summary.spec.byzantine))
      .add(summary.spec.net)
      .add(summary.spec.comp)
      .add(summary.spec.faults)
      .add(summary.spec.stale)
      .add(summary.spec.cohort)
      .add_num(summary.result.best_accuracy(), 6)
      .add_num(summary.result.final_accuracy, 6)
      .add_num(summary.result.rounds_degraded_total(), 0)
      .add_num(summary.result.stale_accepted_total(), 0)
      .add_num(summary.result.stale_rejected_total(), 0)
      .add_int(static_cast<long long>(
          summary.metrics.counter_or("agreement.gram_builds")))
      .add_int(static_cast<long long>(
          summary.metrics.counter_or("agreement.shared_hits")))
      .add_int(static_cast<long long>(
          summary.metrics.counter_or("sketch.certified")))
      .add_int(static_cast<long long>(
          summary.metrics.counter_or("sketch.fallbacks")))
      .add_num(summary.seconds, 2)
      .add_num(sim_total, 3)
      .add_num(summary.result.bytes_total(), 0)
      .add_num(summary.result.compression_ratio(), 2)
      .add(summary.error);
}

void CsvEmitter::finish() {
  series_.write_csv(base_path_ + "_series.csv");
  summary_.write_csv(base_path_ + "_summary.csv");
}

// --- JSON ------------------------------------------------------------------

JsonEmitter::JsonEmitter(std::string path) : path_(std::move(path)) {}

void JsonEmitter::begin_scenario(const ScenarioSpec& spec) {
  entries_.emplace_back();
  entries_.back().spec = spec;
}

void JsonEmitter::emit_round(const ScenarioSpec& /*spec*/,
                             const RoundMetrics& metrics) {
  entries_.back().rounds.push_back(metrics);
}

void JsonEmitter::end_scenario(const ScenarioSummary& summary) {
  Entry& entry = entries_.back();
  entry.best_accuracy = summary.result.best_accuracy();
  entry.final_accuracy = summary.result.final_accuracy;
  entry.seconds = summary.seconds;
  entry.sim_seconds = summary.result.sim_seconds_total();
  entry.bytes = summary.result.bytes_total();
  entry.compression_ratio = summary.result.compression_ratio();
  entry.rounds_degraded = summary.result.rounds_degraded_total();
  entry.stale_accepted = summary.result.stale_accepted_total();
  entry.stale_rejected = summary.result.stale_rejected_total();
  entry.error = summary.error;
  entry.metrics = summary.metrics;
}

namespace {
// Error messages pass through here too (they may embed arbitrary
// user-provided names), so control characters are escaped along with the
// JSON metacharacters.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}
}  // namespace

void JsonEmitter::finish() {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("JsonEmitter: cannot open '" + path_ + "'");
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f, "  {\"scenario\": \"%s\",\n",
                 escape_json(e.spec.name()).c_str());
    std::fprintf(f, "   \"spec\": \"%s\",\n",
                 escape_json(e.spec.to_string()).c_str());
    std::fprintf(f, "   \"rule\": \"%s\", \"attack\": \"%s\",\n",
                 escape_json(e.spec.rule).c_str(),
                 escape_json(e.spec.attack).c_str());
    std::fprintf(f,
                 "   \"topology\": \"%s\", \"heterogeneity\": \"%s\", "
                 "\"f\": %zu, \"net\": \"%s\", \"comp\": \"%s\",\n",
                 topology_name(e.spec.topology),
                 ml::heterogeneity_name(e.spec.heterogeneity),
                 e.spec.byzantine, escape_json(e.spec.net).c_str(),
                 escape_json(e.spec.comp).c_str());
    std::fprintf(f,
                 "   \"faults\": \"%s\", \"stale\": \"%s\", "
                 "\"cohort\": \"%s\",\n",
                 escape_json(e.spec.faults).c_str(),
                 escape_json(e.spec.stale).c_str(),
                 escape_json(e.spec.cohort).c_str());
    std::fprintf(f,
                 "   \"best_accuracy\": %.6f, \"final_accuracy\": %.6f, "
                 "\"seconds\": %.3f, \"sim_seconds\": %.4f, "
                 "\"bytes\": %.0f, \"compression_ratio\": %.3f, "
                 "\"rounds_degraded\": %.0f, \"stale_accepted\": %.0f, "
                 "\"stale_rejected\": %.0f, "
                 "\"error\": \"%s\",\n",
                 e.best_accuracy, e.final_accuracy, e.seconds, e.sim_seconds,
                 e.bytes, e.compression_ratio, e.rounds_degraded,
                 e.stale_accepted, e.stale_rejected,
                 escape_json(e.error).c_str());
    std::fprintf(
        f,
        "   \"gram_builds\": %llu, \"shared_hits\": %llu, "
        "\"sketch_certified\": %llu, \"sketch_fallbacks\": %llu,\n",
        static_cast<unsigned long long>(
            e.metrics.counter_or("agreement.gram_builds")),
        static_cast<unsigned long long>(
            e.metrics.counter_or("agreement.shared_hits")),
        static_cast<unsigned long long>(
            e.metrics.counter_or("sketch.certified")),
        static_cast<unsigned long long>(
            e.metrics.counter_or("sketch.fallbacks")));
    std::fprintf(f, "   \"metrics\": {\"counters\": {");
    {
      bool first = true;
      for (const auto& [name, value] : e.metrics.counters) {
        std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ",
                     escape_json(name).c_str(),
                     static_cast<unsigned long long>(value));
        first = false;
      }
    }
    std::fprintf(f, "}, \"gauges\": {");
    {
      bool first = true;
      for (const auto& [name, value] : e.metrics.gauges) {
        std::fprintf(f, "%s\"%s\": %.6g", first ? "" : ", ",
                     escape_json(name).c_str(), value);
        first = false;
      }
    }
    std::fprintf(f, "}, \"histograms\": {");
    {
      bool first = true;
      for (const auto& [name, h] : e.metrics.histograms) {
        std::fprintf(f,
                     "%s\"%s\": {\"count\": %llu, \"sum\": %.6g, "
                     "\"min\": %.6g, \"max\": %.6g, \"mean\": %.6g, "
                     "\"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g}",
                     first ? "" : ", ", escape_json(name).c_str(),
                     static_cast<unsigned long long>(h.count), h.sum, h.min,
                     h.max, h.mean(), h.quantile(0.50), h.quantile(0.95),
                     h.quantile(0.99));
        first = false;
      }
    }
    std::fprintf(f, "}},\n");
    std::fprintf(f, "   \"rounds\": [\n");
    for (std::size_t r = 0; r < e.rounds.size(); ++r) {
      const RoundMetrics& m = e.rounds[r];
      std::fprintf(f,
                   "     {\"round\": %zu, \"accuracy\": %.6f, "
                   "\"loss\": %.6f, \"lr\": %.6f, "
                   "\"disagreement\": %.6g, "
                   "\"gradient_diameter\": %.6g, \"seconds\": %.4f, "
                   "\"sim_seconds\": %.4f, \"bytes\": %.0f, "
                   "\"live\": %.0f, \"cohort\": %.0f, \"shards\": %.0f, "
                   "\"stale_acc\": %.0f, "
                   "\"stale_rej\": %.0f, \"degraded\": %.0f}%s\n",
                   m.round, m.accuracy, m.mean_honest_loss, m.learning_rate,
                   m.disagreement, m.gradient_diameter, m.seconds,
                   m.sim_seconds, m.bytes_delivered, m.live_clients,
                   m.cohort, m.shards,
                   m.stale_accepted, m.stale_rejected, m.degraded,
                   r + 1 < e.rounds.size() ? "," : "");
    }
    std::fprintf(f, "   ]}%s\n", i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

// --- trace -----------------------------------------------------------------

namespace {
// Cell names embed '/' and ':' (e.g. "cen/mild/KRUM/sign-flip/f1"); map
// anything unsafe in a filename to '_'.
std::string sanitize_cell_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                      c == '=';
    if (!keep) c = '_';
  }
  return out;
}
}  // namespace

TraceEmitter::TraceEmitter(std::string dir, bool profile, std::ostream* os)
    : dir_(std::move(dir)), profile_(profile), os_(os) {}

void TraceEmitter::end_scenario(const ScenarioSummary& summary) {
  if (summary.trace.empty()) return;
  all_records_.insert(all_records_.end(), summary.trace.begin(),
                      summary.trace.end());
  if (dir_.empty()) return;
  std::filesystem::create_directories(dir_);
  const std::string path =
      dir_ + "/trace_" + sanitize_cell_name(summary.spec.name()) + ".json";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceEmitter: cannot open '" + path + "'");
  }
  obs::TraceBuffer buffer;
  buffer.records = summary.trace;
  buffer.dropped = summary.trace_dropped;
  obs::write_chrome_trace(out, buffer);
  if (!out) {
    throw std::runtime_error("TraceEmitter: write failed for '" + path + "'");
  }
  written_.push_back(path);
}

void TraceEmitter::finish() {
  if (!profile_) return;
  std::ostream& os = os_ != nullptr ? *os_ : std::cout;
  const std::vector<obs::PhaseStat> stats = obs::self_time(all_records_);
  if (stats.empty()) {
    os << "--profile: no trace records (did every cell run trace=off?)\n";
    return;
  }
  os << "\n--- per-phase self time (all traced cells) ---\n";
  obs::write_profile(os, stats);
}

}  // namespace bcl::experiments
