#pragma once
// The scenario engine: materializes a ScenarioSpec into datasets, models
// and a TrainingConfig, drives the matching trainer (centralized or
// decentralized) batch-natively, and streams per-round metrics through the
// registered emitters while the run is in flight.
//
// One runner instance serves a whole sweep: datasets are cached by
// (model, scale, seed), so a cross-product over rules/attacks pays the
// synthetic-data generation once per data configuration instead of once
// per scenario.  Returned ScenarioSummary objects are self-contained
// copies; references handed to emitters are only valid during the
// callback.

#include <map>
#include <string>
#include <vector>

#include "experiments/emitters.hpp"
#include "experiments/scenario.hpp"
#include "learning/config.hpp"
#include "ml/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bcl {
class ThreadPool;
}

namespace bcl::experiments {

/// Everything one scenario produced: the spec it ran, the full per-round
/// training history, and total wall time.  `error` is non-empty when the
/// scenario failed (unknown rule/attack name, inconsistent config, or
/// runtime divergence — e.g. MEAN under an amplified attack feeding
/// non-finite gradients into aggregation); `result` is then empty (the
/// history is assembled by the trainer, which did not return) — the
/// rounds completed before the failure survive only as the emitters'
/// streamed per-round records.
struct ScenarioSummary {
  ScenarioSpec spec;
  TrainingResult result;
  double seconds = 0.0;
  std::string error;
  /// Snapshot of the cell's private MetricsRegistry: unified net.* /
  /// agreement.* / sketch.* counters and round.* histograms (see
  /// docs/observability.md for the name schema).  Always populated — the
  /// runner wires a registry into every cell regardless of trace=.
  obs::MetricsSnapshot metrics;
  /// Flight-recorder records drained after the cell ran (empty unless
  /// spec.trace != "off").  trace_dropped counts records lost to ring
  /// overflow (the Chrome export repairs the resulting orphans).
  std::vector<obs::TraceRecord> trace;
  std::uint64_t trace_dropped = 0;
};

/// Drives scenarios (see file comment).  Drive a runner from one thread
/// only — parallelism lives inside the trainers via the pool, plus
/// optionally across sweep cells via run_all's `jobs` (which pre-warms the
/// shared dataset cache serially before fanning out).
class ScenarioRunner {
 public:
  /// `pool` (optional) is handed to every trainer for intra-round
  /// parallelism; must outlive the runner.
  explicit ScenarioRunner(ThreadPool* pool = nullptr);

  /// Runs one scenario.  Emitters (caller-owned, see emitters.hpp) receive
  /// begin_scenario / emit_round / end_scenario; finish() is NOT called —
  /// use run_all or call it yourself after the last run().  Failures do
  /// not throw: they come back as ScenarioSummary::error (with the
  /// registries' valid-name lists in the message for typos), so one
  /// divergent cell of a sweep cannot abort the sweep or lose the other
  /// scenarios' artifacts.  Callers wanting fail-fast name validation can
  /// call make_rule/make_attack on the spec strings up front, as bcl_run
  /// does.
  ScenarioSummary run(const ScenarioSpec& spec,
                      const std::vector<MetricsEmitter*>& emitters = {});

  /// Runs every spec in order (failed scenarios are recorded and skipped
  /// past, see run) and then calls finish() on each emitter.
  ///
  /// `jobs` > 1 runs up to that many scenarios concurrently (scenarios are
  /// independent per (spec, seed), and every cell is deterministic from
  /// its seed, so results are identical to the serial run).  Emitters are
  /// still driven from the calling thread only, in spec order: each cell
  /// records its rounds privately and is replayed through the emitters
  /// once all cells finished, so CSV/JSON artifact row order is
  /// deterministic regardless of scheduling.
  std::vector<ScenarioSummary> run_all(
      const std::vector<ScenarioSpec>& specs,
      const std::vector<MetricsEmitter*>& emitters = {},
      std::size_t jobs = 1);

 private:
  /// The throwing core of run(): materializes the spec and trains,
  /// filling summary.result.
  void run_trained(const ScenarioSpec& spec,
                   const std::vector<MetricsEmitter*>& emitters,
                   ScenarioSummary& summary);
  const ml::TrainTestSplit& dataset_for(const ScenarioSpec& spec);

  ThreadPool* pool_;
  std::map<std::string, ml::TrainTestSplit> dataset_cache_;
};

}  // namespace bcl::experiments
