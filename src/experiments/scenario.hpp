#pragma once
// Declarative experiment scenarios.
//
// A ScenarioSpec names one point in the experiment cross-product the paper
// (and its extensions) sweeps: aggregation rule x attack x Byzantine count
// x topology (centralized / decentralized) x model x data heterogeneity x
// scale x seed.  Specs are plain data with a stable textual form — the
// key=value grammar below — so the same scenario can be written in a bench
// binary, passed on the bcl_run command line, logged into an artifact and
// parsed back, byte for byte.
//
// Grammar: whitespace-separated key=value tokens, e.g.
//
//   "topology=decentralized rule=BOX-GEOM attack=sign-flip f=2 het=mild"
//
// Keys (all optional; unknown keys throw with the valid list attached):
//
//   label     free-form scenario name used in tables/artifacts
//             (default: derived from the fields, see name())
//   rule      aggregation rule name for make_rule        [BOX-GEOM]
//   attack    attack grammar string for make_attack      [sign-flip]
//   n         total clients                              [10]
//   f         true Byzantine count                       [1]
//   t         designed tolerance (0 = max(f, designed))  [0]
//   topology  centralized | decentralized                [centralized]
//   model     mlp | cifarnet                             [mlp]
//   het       uniform | mild | extreme                   [mild]
//   scale     reduced | full                             [reduced]
//   rounds    learning rounds (0 = model/scale default)  [0]
//   batch     mini-batch size (0 = default)              [0]
//   lr        initial learning rate (0 = default)        [0]
//   subrounds decentralized sub-round budget (0 = paper
//             log schedule)                              [0]
//   delay     honest-message delay probability           [0]
//   net       network timing model (NetConfig grammar:
//             "sync" or "async:delay=exp,mean=5,
//             drop=0.01,timeout=50,bw=1e6,...")          [sync]
//   comp      gradient codec (make_codec grammar:
//             identity | topk:frac=F | randk:frac=F |
//             qsgd:levels=L)                             [identity]
//   faults    fault-injection plan (FaultConfig grammar:
//             none | crash:at=R,frac=F |
//             crash-recover:mttf=,mttr=,frac=,cap= |
//             straggler:factor=,frac= |
//             churn:leave=,join=,burst=,p01=,p10=,cap=)  [none]
//   stale     bounded-staleness server (StaleConfig
//             grammar: none | "<tau>[,decay=D,quorum=Q]";
//             centralized topology only)                 [none]
//   cohort    per-round client subsampling + sharded
//             aggregation (CohortConfig grammar: none |
//             "<frac>[,shards=S,root=RULE]"; centralized
//             topology only)                             [none]
//   sketch    sketched shard rules on the cohort path
//             (auto | on | off; auto switches at inboxes
//             of >= 10^4 rows)                           [auto]
//   trace     flight-recorder level (off | spans | full;
//             spans = trainer/agreement phases, full
//             adds event-engine internals)               [off]
//   seed      root RNG seed (drives data + training +
//             network delays + codec randomness + fault
//             schedules)                                 [11]
//   eval-max  cap on test examples per evaluation (0 =
//             all)                                       [0]
//
// to_string() emits every key in a canonical order and parse() inverts it:
// parse(s.to_string()) reproduces s exactly (doubles are printed with 12
// significant digits, which round-trips every value the harnesses use).

#include <cstdint>
#include <string>
#include <vector>

#include "ml/partition.hpp"

namespace bcl::experiments {

/// Where aggregation happens: a trusted server (CentralizedTrainer) or
/// per-client approximate agreement (DecentralizedTrainer).
enum class Topology { Centralized, Decentralized };

/// Which architecture/dataset pair the scenario trains: the paper's MLP on
/// the MNIST-like task or CifarNet on the CIFAR-like task.
enum class ModelKind { Mlp, CifarNet };

/// "centralized" / "decentralized".
const char* topology_name(Topology topology);
/// Parses topology_name output; throws std::invalid_argument otherwise.
Topology parse_topology(const std::string& name);

/// "mlp" / "cifarnet".
const char* model_kind_name(ModelKind model);
/// Parses model_kind_name output; throws std::invalid_argument otherwise.
ModelKind parse_model_kind(const std::string& name);

/// One fully specified experiment scenario (see file comment for the
/// textual grammar and defaults).  Rule/attack names are validated by the
/// registries when the runner materializes them, not at parse time, so a
/// spec can be built before the registry entries it names.
struct ScenarioSpec {
  /// Optional; name() derives one when empty.  Must not contain
  /// whitespace (assign via set("label", ...) to get that checked) or the
  /// textual form could not round-trip.
  std::string label;
  std::string rule = "BOX-GEOM";
  std::string attack = "sign-flip";
  std::size_t clients = 10;
  std::size_t byzantine = 1;
  std::size_t tolerance = 0;
  Topology topology = Topology::Centralized;
  ModelKind model = ModelKind::Mlp;
  ml::Heterogeneity heterogeneity = ml::Heterogeneity::Mild;
  bool full_scale = false;
  std::size_t rounds = 0;
  std::size_t batch = 0;
  double lr = 0.0;
  std::size_t subrounds = 0;
  double delay = 0.0;
  /// NetConfig grammar string (validated eagerly by set(); stored verbatim
  /// so artifacts replay the exact text the user wrote).
  std::string net = "sync";
  /// Codec grammar string (make_codec; validated eagerly by set(), stored
  /// verbatim).  "identity" = dense traffic, bitwise the pre-codec path.
  std::string comp = "identity";
  /// Fault-injection grammar string (FaultConfig::parse: "none",
  /// "crash:at=R,frac=F", "crash-recover:mttf=,mttr=,...",
  /// "straggler:factor=,frac=", "churn:leave=,join=,...").  Validated
  /// eagerly by set(), stored verbatim.  "none" = everyone up, bitwise the
  /// pre-fault path.
  std::string faults = "none";
  /// Bounded-staleness grammar string (StaleConfig::parse: "none" or
  /// "<tau>[,decay=D,quorum=Q]").  Centralized topology only (the runner
  /// rejects it on decentralized specs).  Validated eagerly, stored
  /// verbatim.
  std::string stale = "none";
  /// Cohort-subsampling grammar string (CohortConfig::parse: "none" or
  /// "<frac>[,shards=S,root=RULE]").  Centralized topology only (the
  /// runner rejects it on decentralized specs).  Validated eagerly,
  /// stored verbatim.  "none" = every client uploads, bitwise the
  /// pre-cohort path; "1.0,shards=1" routes the full membership through
  /// the streaming cohort path, also bitwise identical (test-enforced).
  std::string cohort = "none";
  /// Sketched shard aggregation on the cohort path: "auto" (default)
  /// swaps the shard/root rules for their SKETCH-* counterparts once the
  /// round inbox reaches TrainingConfig::kSketchAutoThreshold rows; "on"
  /// forces the swap at every size; "off" never sketches.  Only rules
  /// with sketched counterparts (KRUM / MULTIKRUM-q / MD-MEAN) are
  /// affected.  Validated eagerly by set().
  std::string sketch = "auto";
  /// Flight-recorder level (src/obs/): "off" (default, single relaxed
  /// atomic check per span), "spans" (trainer/agreement phase spans), or
  /// "full" (adds per-batch event-engine internals).  Metrics are
  /// independent of the level: the runner wires a registry into every
  /// cell.  Traced cells run serially — the runner drops --jobs
  /// parallelism when any spec traces, because the recorder is
  /// process-global.  Validated eagerly by set().
  std::string trace = "off";
  std::uint64_t seed = 11;
  std::size_t eval_max = 0;

  /// Parses a whitespace-separated key=value scenario string over spec
  /// defaults.  Throws std::invalid_argument on malformed tokens or
  /// unknown keys (message lists the valid keys).
  static ScenarioSpec parse(const std::string& text);

  /// Applies a key=value scenario string on top of *this* (the parse()
  /// worker; same grammar and error contract) — use it to layer a spec
  /// string over non-default base values, as bcl_run does with its
  /// flag-derived defaults.
  void apply(const std::string& text);

  /// Applies one key=value assignment (the apply() primitive; same error
  /// contract).
  void set(const std::string& key, const std::string& value);

  /// Canonical textual form; parse(to_string()) round-trips the spec.
  std::string to_string() const;

  /// Table/artifact identifier: the label when set, otherwise a compact
  /// derived name like "cen/mild/KRUM/sign-flip/f1".
  std::string name() const;

  bool operator==(const ScenarioSpec& other) const = default;
};

/// The valid spec keys, in canonical order (shared by set() errors,
/// to_string() and the docs).
const std::vector<std::string>& scenario_keys();

}  // namespace bcl::experiments
