#include "experiments/runner.hpp"

#include <atomic>
#include <thread>

#include "aggregation/registry.hpp"
#include "attacks/registry.hpp"
#include "compression/registry.hpp"
#include "learning/centralized.hpp"
#include "learning/decentralized.hpp"
#include "ml/architectures.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace bcl::experiments {
namespace {

// Resolved per-scenario training knobs: the model/scale defaults of the
// original figure harnesses, overridable per spec (rounds/batch/lr = 0
// means "use the default").
struct ResolvedScale {
  std::size_t rounds = 0;
  std::size_t batch = 0;
  double lr = 0.0;
};

ResolvedScale resolve_scale(const ScenarioSpec& spec) {
  ResolvedScale r;
  if (spec.model == ModelKind::Mlp) {
    r.rounds = spec.full_scale ? 150 : 60;
    r.batch = spec.full_scale ? 32 : 16;
    r.lr = spec.full_scale ? 0.1 : 0.25;
  } else {
    // CifarNet needs far more rounds than the MLP and a small rate (larger
    // steps kill the ReLUs before the conv filters orient).
    r.rounds = spec.full_scale ? 400 : 200;
    r.batch = spec.full_scale ? 32 : 16;
    r.lr = 0.05;
  }
  if (spec.rounds > 0) r.rounds = spec.rounds;
  if (spec.batch > 0) r.batch = spec.batch;
  if (spec.lr > 0.0) r.lr = spec.lr;
  return r;
}

}  // namespace

ScenarioRunner::ScenarioRunner(ThreadPool* pool) : pool_(pool) {}

const ml::TrainTestSplit& ScenarioRunner::dataset_for(
    const ScenarioSpec& spec) {
  const std::string key = std::string(model_kind_name(spec.model)) + "|" +
                          (spec.full_scale ? "full" : "reduced") + "|" +
                          std::to_string(spec.seed);
  const auto it = dataset_cache_.find(key);
  if (it != dataset_cache_.end()) return it->second;

  ml::SyntheticSpec data_spec;
  if (spec.model == ModelKind::Mlp) {
    data_spec = ml::SyntheticSpec::mnist_like(spec.seed);
    data_spec.height = data_spec.width = spec.full_scale ? 28 : 10;
    data_spec.train_per_class = spec.full_scale ? 200 : 60;
    data_spec.test_per_class = spec.full_scale ? 40 : 20;
  } else {
    data_spec = ml::SyntheticSpec::cifar_like(spec.seed);
    if (!spec.full_scale) {
      data_spec.height = data_spec.width = 16;
      data_spec.train_per_class = 80;
      data_spec.test_per_class = 25;
    }
  }
  return dataset_cache_
      .emplace(key, ml::make_synthetic_dataset(data_spec))
      .first->second;
}

ScenarioSummary ScenarioRunner::run(
    const ScenarioSpec& spec, const std::vector<MetricsEmitter*>& emitters) {
  // begin_scenario fires before anything that can fail, so every emitter
  // sees a matched begin/end pair even for error summaries.
  for (MetricsEmitter* e : emitters) e->begin_scenario(spec);
  ScenarioSummary summary;
  summary.spec = spec;
  // Arm the flight recorder for traced cells.  The recorder is process
  // global, so traced cells run one at a time (run_all forces jobs=1); a
  // preparatory drain discards stale records from earlier cells.
  const obs::TraceLevel cell_level = obs::parse_trace_level(spec.trace);
  if (cell_level != obs::TraceLevel::Off) {
    obs::drain_trace();
    obs::set_trace_level(cell_level);
  }
  Stopwatch watch;
  try {
    run_trained(spec, emitters, summary);
  } catch (const std::exception& failure) {
    summary.error = failure.what();
  }
  summary.seconds = watch.seconds();
  if (cell_level != obs::TraceLevel::Off) {
    obs::set_trace_level(obs::TraceLevel::Off);
    obs::TraceBuffer buffer = obs::drain_trace();
    summary.trace = std::move(buffer.records);
    summary.trace_dropped = buffer.dropped;
    if (summary.trace_dropped > 0) {
      log_warn() << "scenario '" << spec.name() << "': trace ring overflow "
                 << "dropped " << summary.trace_dropped << " records";
    }
  }
  for (MetricsEmitter* e : emitters) e->end_scenario(summary);
  return summary;
}

void ScenarioRunner::run_trained(const ScenarioSpec& spec,
                                 const std::vector<MetricsEmitter*>& emitters,
                                 ScenarioSummary& summary) {
  const ml::TrainTestSplit& data = dataset_for(spec);
  const ResolvedScale scale = resolve_scale(spec);

  ModelFactory factory;
  if (spec.model == ModelKind::Mlp) {
    const std::size_t dim = data.train.feature_dim();
    const std::size_t h1 = spec.full_scale ? 64 : 16;
    const std::size_t h2 = spec.full_scale ? 32 : 8;
    factory = [dim, h1, h2] { return ml::make_mlp(dim, h1, h2, 10); };
  } else {
    const std::size_t channels = data.train.channels;
    const std::size_t side = data.train.height;
    const std::size_t w1 = spec.full_scale ? 8 : 4;
    const std::size_t w2 = spec.full_scale ? 16 : 8;
    const std::size_t fc = spec.full_scale ? 64 : 24;
    factory = [channels, side, w1, w2, fc] {
      return ml::make_cifarnet(channels, side, side, 10, w1, w2, fc);
    };
  }

  TrainingConfig cfg;
  cfg.num_clients = spec.clients;
  cfg.num_byzantine = spec.byzantine;
  cfg.tolerance = spec.tolerance;
  cfg.rounds = scale.rounds;
  cfg.batch_size = scale.batch;
  cfg.rule = make_rule(spec.rule);
  cfg.attack = make_attack(spec.attack);
  cfg.codec = make_codec(spec.comp);
  cfg.schedule = ml::LearningRateSchedule(
      scale.lr, scale.lr / static_cast<double>(scale.rounds));
  cfg.heterogeneity = spec.heterogeneity;
  cfg.honest_delay_probability = spec.delay;
  cfg.faults = FaultConfig::parse(spec.faults);
  cfg.stale = StaleConfig::parse(spec.stale);
  cfg.cohort = CohortConfig::parse(spec.cohort);
  cfg.sketch = spec.sketch;
  cfg.net = NetConfig::parse(spec.net);
  cfg.net.seed = spec.seed;
  cfg.seed = spec.seed;
  cfg.pool = pool_;
  cfg.eval_max_examples = spec.eval_max;
  cfg.fixed_subrounds = spec.subrounds;
  cfg.on_round = [&](const RoundMetrics& metrics) {
    for (MetricsEmitter* e : emitters) e->emit_round(spec, metrics);
  };

  // Every cell gets a private registry (cheap when nothing publishes into
  // a name): emitters can then surface the unified counters uniformly
  // instead of special-casing traced cells.
  obs::MetricsRegistry registry;
  cfg.metrics = &registry;
  const std::uint64_t warnings_before = log_count(LogLevel::Warn);
  const std::uint64_t errors_before = log_count(LogLevel::Error);

  if (spec.topology == Topology::Centralized) {
    CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
    summary.result = trainer.run();
  } else {
    if (cfg.cohort.enabled()) {
      throw std::invalid_argument(
          "ScenarioRunner: cohort= requires topology=centralized (the "
          "decentralized agreement has no server-side cohort)");
    }
    DecentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
    summary.result = trainer.run();
  }

  registry.counter("log.warnings")
      .add(log_count(LogLevel::Warn) - warnings_before);
  registry.counter("log.errors").add(log_count(LogLevel::Error) - errors_before);
  summary.metrics = registry.snapshot();
}

namespace {

/// Private per-cell sink for the parallel sweep: records the streamed
/// rounds so the cell can be replayed through the real emitters in spec
/// order once every cell finished.
class RecordingEmitter final : public MetricsEmitter {
 public:
  void emit_round(const ScenarioSpec& /*spec*/,
                  const RoundMetrics& metrics) override {
    rounds_.push_back(metrics);
  }
  const std::vector<RoundMetrics>& rounds() const { return rounds_; }

 private:
  std::vector<RoundMetrics> rounds_;
};

}  // namespace

std::vector<ScenarioSummary> ScenarioRunner::run_all(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<MetricsEmitter*>& emitters, std::size_t jobs) {
  // The flight recorder is process-global: concurrent traced cells would
  // interleave their spans in the shared rings.  Serialize the sweep
  // whenever any cell traces.
  if (jobs > 1) {
    for (const auto& spec : specs) {
      if (spec.trace != "off") {
        log_warn() << "run_all: '" << spec.name() << "' sets trace="
                   << spec.trace << "; forcing jobs=1 (the flight recorder "
                   << "is process-global)";
        jobs = 1;
        break;
      }
    }
  }
  std::vector<ScenarioSummary> summaries;
  if (jobs <= 1 || specs.size() <= 1) {
    summaries.reserve(specs.size());
    for (const auto& spec : specs) summaries.push_back(run(spec, emitters));
    for (MetricsEmitter* e : emitters) e->finish();
    return summaries;
  }

  // Warm the dataset cache serially: afterwards every concurrent cell only
  // reads the map, so the workers need no locking.  (The trainers' own
  // parallelism composes: the shared pool's fork-join help-drains, so many
  // cells can fan out over it at once.)  A failing generation is that
  // cell's error, not the sweep's ("scenario failures are data, not
  // exceptions") — and the cell must then be kept off the workers, where
  // retrying the generation would mutate the cache concurrently.
  std::vector<std::string> warmup_errors(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    try {
      dataset_for(specs[i]);
    } catch (const std::exception& failure) {
      warmup_errors[i] = failure.what();
    }
  }

  summaries.resize(specs.size());
  std::vector<std::vector<RoundMetrics>> recorded(specs.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      if (!warmup_errors[i].empty()) {
        summaries[i].spec = specs[i];
        summaries[i].error = warmup_errors[i];
        continue;
      }
      RecordingEmitter recorder;
      summaries[i] = run(specs[i], {&recorder});
      recorded[i] = recorder.rounds();
    }
  };
  std::vector<std::thread> threads;
  const std::size_t parallel = std::min(jobs, specs.size());
  threads.reserve(parallel);
  for (std::size_t p = 0; p < parallel; ++p) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();

  // Replay in spec order: emitters see exactly the serial call sequence,
  // so artifact rows land in a deterministic order.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (MetricsEmitter* e : emitters) e->begin_scenario(specs[i]);
    for (const auto& metrics : recorded[i]) {
      for (MetricsEmitter* e : emitters) e->emit_round(specs[i], metrics);
    }
    for (MetricsEmitter* e : emitters) e->end_scenario(summaries[i]);
  }
  for (MetricsEmitter* e : emitters) e->finish();
  return summaries;
}

}  // namespace bcl::experiments
