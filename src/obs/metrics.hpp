#pragma once
// MetricsRegistry: named counters, gauges, and log-bucketed histograms behind
// one snapshot interface.
//
// The registry absorbs the per-subsystem counter structs that used to die on
// internal state (NetworkStats, SharingStats, sketch fallback flags, fault
// counters): trainers and the event engine publish into a per-scenario
// registry, the runner snapshots it into the ScenarioSummary, and the
// emitters (and the future bcl_serve sink) read one structure.
//
// Concurrency: metric objects are updated with relaxed atomics and are safe
// to hit from ThreadPool workers; name lookup takes a mutex, so hot paths
// should resolve `Counter&` / `Histogram&` once and cache the reference
// (references stay valid for the registry's lifetime).

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bcl::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Immutable histogram state: per-bucket counts plus count/sum/min/max.
/// Bucket i covers [bucket_lower_bound(i), bucket_upper_bound(i)); the first
/// and last buckets catch under/overflow.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Upper bound of the first bucket whose cumulative count reaches q*count
  /// (q in [0,1]); the relative error is bounded by the bucket width
  /// (2^(1/4) ~ 19%).  Returns 0 on an empty histogram.
  double quantile(double q) const;
};

/// Log-bucketed histogram: 4 buckets per octave over [2^-30, 2^34) — covers
/// nanoseconds-as-seconds up to tens of gigabytes — plus under/overflow
/// buckets.  record() is wait-free (one binary search + one relaxed add).
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kMinOctave = -30;
  static constexpr int kMaxOctave = 34;
  static constexpr int kBuckets =
      (kMaxOctave - kMinOctave) * kBucketsPerOctave + 2;

  void record(double v);
  HistogramSnapshot snapshot() const;

  /// Inclusive lower / exclusive upper value bound of bucket i.
  static double bucket_lower_bound(int i);
  static double bucket_upper_bound(int i);
  /// Index of the bucket that record(v) increments.
  static int bucket_index(double v);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Ordered so emitters produce deterministic column/key order.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by name, `fallback` when absent (emitters use 0).
  std::uint64_t counter_or(const std::string& name,
                           std::uint64_t fallback = 0) const;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace bcl::obs
