#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace bcl::obs {

namespace {

// Upper bound of bucket i, i in [0, kBuckets).  Bucket 0 (underflow) holds
// v < 2^kMinOctave including non-positives; the last bucket (overflow) holds
// v >= 2^kMaxOctave and reports +inf as its upper bound.
std::array<double, Histogram::kBuckets> make_upper_bounds() {
  std::array<double, Histogram::kBuckets> ub{};
  for (int i = 0; i + 1 < Histogram::kBuckets; ++i) {
    ub[i] = std::exp2(Histogram::kMinOctave +
                      static_cast<double>(i) / Histogram::kBucketsPerOctave);
  }
  ub[Histogram::kBuckets - 1] = std::numeric_limits<double>::infinity();
  return ub;
}

const std::array<double, Histogram::kBuckets>& upper_bounds() {
  static const std::array<double, Histogram::kBuckets> ub = make_upper_bounds();
  return ub;
}

void atomic_add_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) {
  const auto& ub = upper_bounds();
  // First bucket whose exclusive upper bound exceeds v.
  const auto it = std::upper_bound(ub.begin(), ub.end() - 1, v);
  return static_cast<int>(it - ub.begin());
}

double Histogram::bucket_upper_bound(int i) { return upper_bounds()[i]; }

double Histogram::bucket_lower_bound(int i) {
  return i == 0 ? -std::numeric_limits<double>::infinity()
                : upper_bounds()[i - 1];
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  snap.buckets.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && cum > 0) {
      const double ub = Histogram::bucket_upper_bound(static_cast<int>(i));
      // Clamp the open-ended overflow / underflow buckets to observed range.
      return std::min(std::max(ub, min), max);
    }
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : fallback;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.snapshot();
  return snap;
}

}  // namespace bcl::obs
