#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace bcl::obs {

namespace detail {

std::atomic<int> g_trace_level{0};

// Fixed-capacity single-writer ring.  The owning thread is the only writer;
// drain_trace() reads from another thread after the writer has gone quiet
// (no open spans), synchronizing on the release/acquire pair on `count`.
struct TraceRing {
  static constexpr std::size_t kCapacity = 1u << 16;

  std::uint32_t tid = 0;
  std::atomic<std::uint64_t> count{0};  // total records ever pushed
  std::uint64_t drained = 0;            // records consumed by drain_trace()
  std::unique_ptr<TraceRecord[]> slots{new TraceRecord[kCapacity]};

  void push(const char* name, char phase) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    TraceRecord& r = slots[n % kCapacity];
    r.name = name;
    r.ts_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    r.tid = tid;
    r.phase = phase;
    count.store(n + 1, std::memory_order_release);
  }
};

namespace {

std::mutex g_rings_mu;
std::vector<std::unique_ptr<TraceRing>>& all_rings() {
  static auto* rings = new std::vector<std::unique_ptr<TraceRing>>();
  return *rings;
}

}  // namespace

TraceRing* ring_for_this_thread() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(g_rings_mu);
    auto& rings = all_rings();
    auto owned = std::make_unique<TraceRing>();
    owned->tid = static_cast<std::uint32_t>(rings.size());
    ring = owned.get();
    rings.push_back(std::move(owned));
  }
  return ring;
}

void record(TraceRing* ring, const char* name, char phase) {
  ring->push(name, phase);
}

}  // namespace detail

void set_trace_level(TraceLevel level) {
  detail::g_trace_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

TraceLevel trace_level() {
  return static_cast<TraceLevel>(
      detail::g_trace_level.load(std::memory_order_relaxed));
}

TraceLevel parse_trace_level(const std::string& text) {
  if (text == "off") return TraceLevel::Off;
  if (text == "spans") return TraceLevel::Spans;
  if (text == "full") return TraceLevel::Full;
  throw std::invalid_argument("trace level must be off|spans|full, got '" +
                              text + "'");
}

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::Off:
      return "off";
    case TraceLevel::Spans:
      return "spans";
    case TraceLevel::Full:
      return "full";
  }
  return "off";
}

TraceBuffer drain_trace() {
  TraceBuffer out;
  std::lock_guard<std::mutex> lock(detail::g_rings_mu);
  for (auto& ring : detail::all_rings()) {
    const std::uint64_t count = ring->count.load(std::memory_order_acquire);
    const std::uint64_t first =
        count > detail::TraceRing::kCapacity
            ? count - detail::TraceRing::kCapacity
            : 0;
    const std::uint64_t begin = std::max(first, ring->drained);
    if (begin > ring->drained) out.dropped += begin - ring->drained;
    for (std::uint64_t i = begin; i < count; ++i) {
      out.records.push_back(ring->slots[i % detail::TraceRing::kCapacity]);
    }
    ring->drained = count;
  }
  return out;
}

std::size_t trace_thread_count() {
  std::lock_guard<std::mutex> lock(detail::g_rings_mu);
  return detail::all_rings().size();
}

namespace {

// Pairs up B/E records per thread.  Ring overflow can orphan an E (its B was
// overwritten); those are skipped.  Returns indices of records that form
// matched pairs, preserving input order.
std::vector<char> matched_mask(const std::vector<TraceRecord>& records) {
  std::vector<char> keep(records.size(), 0);
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> stacks;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    auto& stack = stacks[r.tid];
    if (r.phase == 'B') {
      stack.push_back(i);
    } else if (!stack.empty() && records[stack.back()].name == r.name) {
      keep[stack.back()] = 1;
      keep[i] = 1;
      stack.pop_back();
    }
    // E with no matching B: orphan from overflow, dropped.  Unclosed B
    // records (still-open spans) stay unmarked and are dropped too.
  }
  return keep;
}

void write_json_escaped(std::ostream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceBuffer& buffer) {
  const std::vector<TraceRecord>& records = buffer.records;
  const std::vector<char> keep = matched_mask(records);
  std::uint64_t epoch = ~std::uint64_t{0};
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (keep[i]) epoch = std::min(epoch, records[i].ts_ns);
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!keep[i]) continue;
    const TraceRecord& r = records[i];
    if (!first) out << ",";
    first = false;
    const std::uint64_t rel = r.ts_ns - epoch;
    out << "\n{\"name\":\"";
    write_json_escaped(out, r.name);
    out << "\",\"cat\":\"bcl\",\"ph\":\"" << r.phase << "\",\"ts\":" << rel / 1000
        << "." << (rel % 1000 < 100 ? (rel % 1000 < 10 ? "00" : "0") : "")
        << rel % 1000 << ",\"pid\":0,\"tid\":" << r.tid << "}";
  }
  out << "\n]}\n";
}

std::vector<PhaseStat> self_time(const std::vector<TraceRecord>& records) {
  const std::vector<char> keep = matched_mask(records);
  struct Frame {
    const char* name;
    std::uint64_t begin_ns;
    std::uint64_t child_ns;
  };
  std::unordered_map<std::uint32_t, std::vector<Frame>> stacks;
  std::unordered_map<std::string, PhaseStat> by_name;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!keep[i]) continue;
    const TraceRecord& r = records[i];
    auto& stack = stacks[r.tid];
    if (r.phase == 'B') {
      stack.push_back(Frame{r.name, r.ts_ns, 0});
      continue;
    }
    // matched_mask guarantees the E closes the top frame.
    const Frame frame = stack.back();
    stack.pop_back();
    const std::uint64_t total = r.ts_ns - frame.begin_ns;
    PhaseStat& stat = by_name[frame.name];
    stat.name = frame.name;
    stat.count += 1;
    stat.total_ns += total;
    stat.self_ns += total - std::min(total, frame.child_ns);
    if (!stack.empty()) stack.back().child_ns += total;
  }
  std::vector<PhaseStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  std::sort(out.begin(), out.end(), [](const PhaseStat& a, const PhaseStat& b) {
    return a.self_ns != b.self_ns ? a.self_ns > b.self_ns : a.name < b.name;
  });
  return out;
}

void write_profile(std::ostream& out, const std::vector<PhaseStat>& stats) {
  if (stats.empty()) return;
  std::uint64_t self_sum = 0;
  for (const PhaseStat& s : stats) self_sum += s.self_ns;
  char line[160];
  std::snprintf(line, sizeof(line), "%-28s %10s %12s %12s %7s\n", "phase",
                "count", "total_ms", "self_ms", "self%");
  out << line;
  for (const PhaseStat& s : stats) {
    std::snprintf(line, sizeof(line), "%-28s %10llu %12.3f %12.3f %6.1f%%\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) * 1e-6,
                  static_cast<double>(s.self_ns) * 1e-6,
                  self_sum > 0
                      ? 100.0 * static_cast<double>(s.self_ns) /
                            static_cast<double>(self_sum)
                      : 0.0);
    out << line;
  }
}

}  // namespace bcl::obs
