#pragma once
// Flight recorder: RAII trace spans recording Chrome-trace-event B/E pairs
// into per-thread ring buffers.
//
// Design constraints (see docs/observability.md):
//  - A disabled span costs exactly one relaxed atomic load and a branch, so
//    instrumentation stays compiled into release builds.  Building with
//    -DBCL_OBS_DISABLED compiles the macros away entirely; artifacts must be
//    bitwise identical either way (enforced by obs_test and CI).
//  - Each thread appends to its own fixed-capacity ring, so recording is
//    lock-free and records within one thread are already in timestamp order.
//    On overflow the oldest records are dropped (counted, never blocking).
//  - Span labels must be string literals (the ring stores the pointer).
//
// Levels: Off records nothing; Spans records trainer / agreement phase spans
// (BCL_TRACE_SPAN); Full additionally records event-engine internals
// (BCL_TRACE_SPAN_FINE), which fire per safe-window batch and are too hot
// for the default level.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bcl::obs {

enum class TraceLevel : int { Off = 0, Spans = 1, Full = 2 };

/// Sets / reads the process-wide level.  Scenario cells that trace must run
/// serially (the runner enforces this): the recorder is global state.
void set_trace_level(TraceLevel level);
TraceLevel trace_level();

/// Parses "off" | "spans" | "full"; throws std::invalid_argument otherwise.
TraceLevel parse_trace_level(const std::string& text);
const char* to_string(TraceLevel level);

/// One B or E event.  `name` points at the span's string literal; `ts_ns` is
/// steady-clock nanoseconds (per-process epoch); `tid` is a dense id assigned
/// in thread-registration order.
struct TraceRecord {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;
  char phase = 'B';
};

namespace detail {

extern std::atomic<int> g_trace_level;

struct TraceRing;

/// Returns (creating on first use) the calling thread's ring.
TraceRing* ring_for_this_thread();

void record(TraceRing* ring, const char* name, char phase);

}  // namespace detail

/// RAII span.  When the level at construction is below `min_level` the
/// constructor is a single relaxed load; otherwise B/E records are written to
/// the calling thread's ring.  The E record is always written once the B was
/// (even if the level drops mid-span), so drained rings stay well nested.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, int min_level = 1) {
    if (detail::g_trace_level.load(std::memory_order_relaxed) < min_level) {
      return;
    }
    name_ = name;
    ring_ = detail::ring_for_this_thread();
    detail::record(ring_, name_, 'B');
  }
  ~TraceSpan() {
    if (ring_ != nullptr) detail::record(ring_, name_, 'E');
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  detail::TraceRing* ring_ = nullptr;
};

/// Everything recorded since the last drain, concatenated per thread (so the
/// slice for one tid is in timestamp order).  `dropped` counts records lost
/// to ring overflow.
struct TraceBuffer {
  std::vector<TraceRecord> records;
  std::uint64_t dropped = 0;

  bool empty() const { return records.empty(); }
};

/// Snapshots and clears every thread's ring.  Call only while no span is
/// open (the runner drains after the trainer returns and the pool is idle).
TraceBuffer drain_trace();

/// Number of distinct threads that have ever recorded a span.
std::size_t trace_thread_count();

/// Writes the records as a Chrome trace-event / Perfetto JSON document
/// ({"traceEvents": [...]}).  Orphaned records from ring overflow are
/// repaired: only matched B/E pairs are emitted, timestamps are rebased to
/// the earliest record and emitted in microseconds.
void write_chrome_trace(std::ostream& out, const TraceBuffer& buffer);

/// Flat per-phase profile: total = sum of span durations, self = total minus
/// time spent in nested child spans (on the same thread).
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Aggregates matched spans per name, sorted by self time descending.
std::vector<PhaseStat> self_time(const std::vector<TraceRecord>& records);

/// Renders a flat table ("--profile" output).  No-op on an empty profile.
void write_profile(std::ostream& out, const std::vector<PhaseStat>& stats);

}  // namespace bcl::obs

#ifdef BCL_OBS_DISABLED
#define BCL_TRACE_SPAN(name)
#define BCL_TRACE_SPAN_FINE(name)
#else
#define BCL_OBS_CONCAT_INNER(a, b) a##b
#define BCL_OBS_CONCAT(a, b) BCL_OBS_CONCAT_INNER(a, b)
/// Phase-level span: records at trace=spans and trace=full.
#define BCL_TRACE_SPAN(name) \
  ::bcl::obs::TraceSpan BCL_OBS_CONCAT(bcl_trace_span_, __LINE__)(name)
/// Hot-path span (event-engine internals): records only at trace=full.
#define BCL_TRACE_SPAN_FINE(name) \
  ::bcl::obs::TraceSpan BCL_OBS_CONCAT(bcl_trace_span_, __LINE__)(name, 2)
#endif
