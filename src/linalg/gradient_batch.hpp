#pragma once
// Contiguous row-major batch of m gradient vectors in R^d.
//
// The aggregation stack historically passed inboxes around as
// std::vector<std::vector<double>> (VectorList): every row is a separate
// heap allocation, so the O(m^2 * d) distance build and the coordinate-wise
// reductions pay a pointer chase per row and defeat both hardware
// prefetching and cache blocking.  GradientBatch stores the same m x d
// values in one flat buffer with zero-copy row views, which is the layout
// the kernels.hpp micro-kernels (Gram build, column reductions, gemm)
// require.
//
// Producers write rows in place (clients deposit gradients directly via
// row()); consumers that still speak VectorList convert explicitly with
// to_vectors() / from().  The batch owns its storage; row pointers are
// invalidated by resize().

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

class GradientBatch {
 public:
  /// Empty batch (0 x 0).
  GradientBatch() = default;

  /// Zero-filled m x d batch.
  GradientBatch(std::size_t rows, std::size_t dim)
      : m_(rows), d_(dim), data_(rows * dim, 0.0) {}

  /// Copies a VectorList into contiguous storage (rows must share one
  /// dimension; throws std::invalid_argument otherwise).
  static GradientBatch from(const VectorList& vs);

  std::size_t rows() const { return m_; }
  std::size_t dim() const { return d_; }
  bool empty() const { return m_ == 0; }

  /// Zero-copy view of row i (d contiguous doubles).
  double* row(std::size_t i) { return data_.data() + i * d_; }
  const double* row(std::size_t i) const { return data_.data() + i * d_; }

  /// The whole m x d buffer, row-major.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Copies `v` into row i (dimension-checked).
  void set_row(std::size_t i, const Vector& v);

  /// Copy of row i as a standalone Vector.
  Vector row_copy(std::size_t i) const {
    return Vector(row(i), row(i) + d_);
  }

  /// Copies the batch out into the legacy VectorList representation.
  VectorList to_vectors() const;

 private:
  std::size_t m_ = 0;
  std::size_t d_ = 0;
  std::vector<double> data_;  // m_ x d_, row-major
};

/// Arithmetic mean of a non-empty batch's rows, via one streaming column
/// reduction.  Each coordinate accumulates in row order, so the result is
/// bitwise identical to mean(VectorList) on the same values.
Vector mean(const GradientBatch& batch);

/// Mean of the selected rows, accumulated in `indices` order — bitwise
/// identical to mean() over the gathered VectorList.  Throws on an empty
/// selection.  Shared by the subset-averaging rules (Multi-Krum, MD-MEAN).
Vector mean_of_rows(const GradientBatch& batch,
                    const std::vector<std::size_t>& indices);

}  // namespace bcl
