#pragma once
// Contiguous row-major batch of m gradient vectors in R^d.
//
// The aggregation stack historically passed inboxes around as
// std::vector<std::vector<double>> (VectorList): every row is a separate
// heap allocation, so the O(m^2 * d) distance build and the coordinate-wise
// reductions pay a pointer chase per row and defeat both hardware
// prefetching and cache blocking.  GradientBatch stores the same m x d
// values in one flat buffer with zero-copy row views, which is the layout
// the kernels.hpp micro-kernels (Gram build, column reductions, gemm)
// require.
//
// Producers write rows in place (clients deposit gradients directly via
// row()); consumers that still speak VectorList convert explicitly with
// to_vectors() / from().  The batch owns its storage; row pointers are
// invalidated by resize().
//
// --- View mode --------------------------------------------------------------
//
// A batch can alternatively *borrow* its m rows through a caller-owned
// pointer table (view()): row i is then an externally owned span of d
// doubles — e.g. the event engine's round-arena payload views — and the
// batch owns nothing, so building it costs m pointers instead of an m x d
// copy.  This is what lets the agreement protocol consume an inbox
// zero-copy: n receivers of one sub-round share the arena's single stored
// copy of each broadcast instead of materializing n private m x d batches.
//
// A view batch is read-only (the rows belong to someone else): the
// mutating accessors throw std::logic_error on it, and the flat data()
// accessors require contiguous() — row-based consumers (row(), row_copy(),
// to_vectors(), mean_of_rows(), the blocked column passes) work on either
// representation unchanged, and the few flat-layout consumers (mean's
// col_sum, the Gram build, sharded slicing) branch on contiguous().
// Lifetime rule, mirroring network/message.hpp: both the rows and the
// pointer table must outlive the view batch.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

class GradientBatch {
 public:
  /// Empty batch (0 x 0).
  GradientBatch() = default;

  /// Zero-filled m x d batch.
  GradientBatch(std::size_t rows, std::size_t dim)
      : m_(rows), d_(dim), data_(rows * dim, 0.0) {}

  /// Copies a VectorList into contiguous storage (rows must share one
  /// dimension; throws std::invalid_argument otherwise).
  static GradientBatch from(const VectorList& vs);

  /// Borrowed view over m rows of dimension `dim` owned elsewhere:
  /// rows[i] points at row i's d contiguous doubles.  Both the row storage
  /// and the `rows` table itself must outlive the returned batch (the
  /// table is typically a caller scratch vector recycled across rounds).
  static GradientBatch view(const double* const* rows, std::size_t m,
                            std::size_t dim);

  std::size_t rows() const { return m_; }
  std::size_t dim() const { return d_; }
  bool empty() const { return m_ == 0; }

  /// True when the batch owns one flat row-major buffer (data() is then
  /// valid); false for a borrowed row-table view.
  bool contiguous() const { return view_rows_ == nullptr; }

  /// Zero-copy view of row i (d contiguous doubles).
  double* row(std::size_t i) {
    check_owned();
    return data_.data() + i * d_;
  }
  const double* row(std::size_t i) const {
    return view_rows_ == nullptr ? data_.data() + i * d_ : view_rows_[i];
  }

  /// The whole m x d buffer, row-major.  Owned batches only (a view has no
  /// flat buffer): throws std::logic_error on a view batch.
  double* data() {
    check_owned();
    return data_.data();
  }
  const double* data() const {
    check_owned();
    return data_.data();
  }

  /// Copies `v` into row i (dimension-checked).
  void set_row(std::size_t i, const Vector& v);

  /// Copy of row i as a standalone Vector.
  Vector row_copy(std::size_t i) const {
    return Vector(row(i), row(i) + d_);
  }

  /// Copies the batch out into the legacy VectorList representation.
  VectorList to_vectors() const;

 private:
  void check_owned() const {
    if (view_rows_ != nullptr) {
      throw std::logic_error(
          "GradientBatch: mutable/flat access on a borrowed view batch");
    }
  }

  std::size_t m_ = 0;
  std::size_t d_ = 0;
  std::vector<double> data_;  // m_ x d_, row-major (owned mode)
  const double* const* view_rows_ = nullptr;  // non-null = view mode
};

/// Arithmetic mean of a non-empty batch's rows, via one streaming column
/// reduction.  Each coordinate accumulates in row order, so the result is
/// bitwise identical to mean(VectorList) on the same values.
Vector mean(const GradientBatch& batch);

/// Mean of the selected rows, accumulated in `indices` order — bitwise
/// identical to mean() over the gathered VectorList.  Throws on an empty
/// selection.  Shared by the subset-averaging rules (Multi-Krum, MD-MEAN).
Vector mean_of_rows(const GradientBatch& batch,
                    const std::vector<std::size_t>& indices);

}  // namespace bcl
