#pragma once
// Blocked/unrolled BLAS-style micro-kernels over contiguous row-major
// buffers.
//
// Every hot loop in the stack — the Gram-matrix build behind the pairwise
// distance matrix, the coordinate-wise reductions, and the im2col-based
// Conv2D / Dense products — bottoms out in the same handful of kernels over
// flat double arrays.  The legacy loops iterated std::vector<std::vector>
// and accumulated through a single serial dependency chain, so the compiler
// could neither vectorize nor overlap the floating-point adds; these kernels
// work on contiguous memory, tile for cache reuse, and batch several
// independent accumulator chains so the FPU pipeline stays full.
//
// Two determinism contracts coexist:
//  - matmul_abt accumulates each output entry strictly in increasing-k
//    order: one accumulator seeded with the existing C value, products
//    added one at a time (so with a zero seed C[i][j] is bitwise equal to
//    dot_seq(A_i, B_j)).  Its speed comes from running many
//    such chains in flight at once (one per output column of the register
//    block), not from reassociating any single sum — which is what lets
//    the im2col Conv2D and the gemm Dense match the direct implementations
//    exactly.
//  - the Gram kernels (gram_upper / gram_upper_columns) serve the
//    tolerance-checked distance path and DO reassociate, into exactly two
//    interleaved k-chains (even + odd indices, folded as
//    (even + odd) + tail) that map onto one 2-lane SIMD accumulator per
//    column.  The per-entry arithmetic depends only on that definition —
//    never on the kernel width, the column blocking, or the thread that
//    runs it — so serial and pool-parallel builds stay bitwise identical
//    and bitwise-equal input rows produce bitwise-equal Gram entries.
//
#include <cstddef>
#include <cstdint>

namespace bcl::kernels {

/// Strictly sequential dot product: one accumulator, increasing index.
/// Bitwise identical to the naive `for (i) s += a[i]*b[i]` loop — the
/// reference the matmul_abt contract is stated (and tested) against.
double dot_seq(const double* a, const double* b, std::size_t n);

/// y += alpha * x over contiguous arrays (unrolled).
void axpy(double* y, double alpha, const double* x, std::size_t n);

/// y += x over contiguous arrays (unrolled; preserves per-element order, so
/// repeated calls accumulate each coordinate in call order).
void add_inplace(double* y, const double* x, std::size_t n);

/// y *= alpha over a contiguous array.
void scale_inplace(double* y, double alpha, std::size_t n);

/// C += A * B^T for row-major A (ma x k), B (mb x k), C (ma x ldc, using the
/// first mb columns of each row).  Tiled over rows of A and B for cache
/// reuse; each C entry is accumulated in increasing-k order (see the
/// determinism contract above).
void matmul_abt(const double* a, std::size_t ma, const double* b,
                std::size_t mb, std::size_t k, double* c, std::size_t ldc);

/// Gram upper triangle: for 0 <= i <= j < m, C[i*m + j] += X_i . X_j with
/// X row-major (m x k).  Only the diagonal and the upper triangle of C are
/// written.  Uses the two-chain reassociated kernel (see the determinism
/// contract above), SIMD where available.
void gram_upper(const double* x, std::size_t m, std::size_t k, double* c);

/// Column slice of gram_upper: fills entries C[i*m + j] for
/// col0 <= j < col1, i <= j.  Slices with disjoint column ranges touch
/// disjoint outputs, which is the parallel work unit the Gram-trick
/// DistanceMatrix self-schedules across the ThreadPool.
void gram_upper_columns(const double* x, std::size_t m, std::size_t k,
                        double* c, std::size_t col0, std::size_t col1);

/// out[q] += a . b_q for `rows` consecutive rows of row-major B (each of
/// length k): the multi-row dot behind the Dense layer's products.  Uses
/// the same two-chain reassociated kernel as the Gram build (see the
/// determinism contract above), so results are reproducible but not
/// bitwise equal to a sequential dot.
void dot_rows(const double* a, const double* b, std::size_t rows,
              std::size_t k, double* out);

/// out[j] += sum_i X[i][j] for row-major X (m x k): a column reduction that
/// streams the batch row by row, so each out[j] accumulates in increasing-i
/// order (bitwise identical to the naive per-coordinate loop over rows).
void col_sum(const double* x, std::size_t m, std::size_t k, double* out);

// --- sparse-row kernels ----------------------------------------------------
//
// Compressed (top-k / rand-k) gradients are mostly zeros; these kernels let
// the Gram/distance path consume them in O(nnz) instead of densifying to
// O(d).  A sparse row is (idx, val, nnz) with idx strictly increasing.
// Accumulation order is increasing index, one sequential chain — the same
// value a dense dot over the scattered row would produce up to the usual
// reassociation tolerance (the sparse path serves the tolerance-checked
// distance consumers, not the bitwise gemm contract).

/// sum_j val[j] * dense[idx[j]]: sparse-dense dot in O(nnz), for callers
/// holding one contiguous dense buffer (e.g. scoring a compressed
/// gradient against a dense reference vector).  The all-sparse distance
/// build below uses the merge kernels instead.
double sparse_dot_dense(const std::uint32_t* idx, const double* val,
                        std::size_t nnz, const double* dense);

/// Dot of two sparse rows via an ordered merge in O(nnz_a + nnz_b): only
/// indices present in both contribute.
double sparse_dot_sparse(const std::uint32_t* ia, const double* va,
                         std::size_t na, const std::uint32_t* ib,
                         const double* vb, std::size_t nb);

/// ||a - b||^2 of two sparse rows via the same ordered merge (the
/// difference form — immune to the Gram identity's common-offset
/// cancellation, so it serves as the sparse path's cancellation-guard
/// recompute).
double sparse_diff_norm2(const std::uint32_t* ia, const double* va,
                         std::size_t na, const std::uint32_t* ib,
                         const double* vb, std::size_t nb);

/// One output row of the SpGEMM Gram build G = X * X^T over a CSR batch
/// and its CSC transpose: scatters acc[j] += x[i][k] * x[j][k] for every
/// coordinate k stored in row i and every row j >= i that also stores k
/// (found via the column's sorted row list, so rows j < i cost one binary
/// search, not a scan).  `idx`/`val`/`nnz` describe CSR row i;
/// `colptr`/`colrow`/`colval` are the transpose arenas
/// (SparseColumns::colptr()/row_ids()/values()).  `acc` is a caller-owned
/// dense scratch row (length m) whose entries [i, m) must be zero on
/// entry; on return acc[j] holds X_i . X_j for j >= i (still zero for
/// rows sharing no coordinate) and the caller restores the zeros.
///
/// Determinism: row i's indices are walked in increasing order, so each
/// acc[j] accumulates its common coordinates in increasing-k order with
/// the operand order val * colval — bitwise identical to the pairwise
/// sparse_dot_sparse merge of rows i and j (and on the diagonal, to the
/// self dot).  The replacement of the m^2/2 pairwise merges by this
/// kernel is therefore invisible to every tolerance- and bitwise-checked
/// consumer.  Cost: sum over k in row i of |{j in column k : j >= i}|,
/// i.e. O(nnz_i * avg column length) instead of O(sum_j (nnz_i + nnz_j)).
void spgemm_gram_row(const std::uint32_t* idx, const double* val,
                     std::size_t nnz, const std::size_t* colptr,
                     const std::uint32_t* colrow, const double* colval,
                     std::uint32_t i, double* acc);

}  // namespace bcl::kernels
