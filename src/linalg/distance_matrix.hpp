#pragma once
// Symmetric pairwise Euclidean distance matrix.
//
// Every distance-based primitive in the library (Krum scores, medoid,
// minimum-diameter subset search, diameter traces, the agreement protocol's
// convergence check) reduces to lookups into the same O(m^2) set of pairwise
// distances over one inbox of m vectors.  Computing that set is the dominant
// O(m^2 * d) cost of a round; everything downstream is O(m^2) or cheaper.
// DistanceMatrix computes the set exactly once — optionally chunk-parallel
// over rows via the ThreadPool — and hands out constant-time lookups, so a
// comparison suite running r rules over one inbox pays O(m^2 * d) once
// instead of r times.
//
// Both the squared and the plain Euclidean distance are stored: hot loops
// (Krum's squared flavour, diameter maximization) want d^2 without a sqrt,
// while the medoid and minimum-diameter searches consume d.  Entries are
// computed with the same distance_squared / sqrt kernels as the legacy
// per-pair code paths, so matrix-based results are bitwise identical to the
// historical per-rule recomputation.

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

class ThreadPool;

class DistanceMatrix {
 public:
  /// Empty matrix (size 0); usable as a cheap default.
  DistanceMatrix() = default;

  /// Computes all pairwise distances of `points` (which must share one
  /// dimension; throws std::invalid_argument otherwise).  With a non-null
  /// `pool` the rows are partitioned across the pool's workers; the result
  /// is identical to the serial build.
  explicit DistanceMatrix(const VectorList& points, ThreadPool* pool = nullptr);

  /// Number of points m.
  std::size_t size() const { return m_; }
  bool empty() const { return m_ == 0; }

  /// Euclidean distance between points i and j (0 on the diagonal).
  double dist(std::size_t i, std::size_t j) const { return d_[i * m_ + j]; }

  /// Squared Euclidean distance between points i and j.
  double dist2(std::size_t i, std::size_t j) const { return d2_[i * m_ + j]; }

  /// Sum of distances from point i to every other point (the medoid score).
  double row_sum(std::size_t i) const;

  /// Maximum pairwise distance (the diameter of the point set).
  double diameter() const;

  /// Maximum pairwise distance within the subset given by `indices`.
  double subset_diameter(const std::vector<std::size_t>& indices) const;

 private:
  std::size_t m_ = 0;
  std::vector<double> d_;   // m_ x m_, row-major, Euclidean
  std::vector<double> d2_;  // m_ x m_, row-major, squared
};

}  // namespace bcl
