#pragma once
// Symmetric pairwise Euclidean distance matrix.
//
// Every distance-based primitive in the library (Krum scores, medoid,
// minimum-diameter subset search, diameter traces, the agreement protocol's
// convergence check) reduces to lookups into the same O(m^2) set of pairwise
// distances over one inbox of m vectors.  Computing that set is the dominant
// O(m^2 * d) cost of a round; everything downstream is O(m^2) or cheaper.
// DistanceMatrix computes the set exactly once — optionally parallel over
// the ThreadPool — and hands out constant-time lookups, so a comparison
// suite running r rules over one inbox pays O(m^2 * d) once instead of r
// times.
//
// Only squared distances are stored (m^2 doubles; the historical d_/d2_
// pair stored both and doubled the footprint): hot loops (Krum's squared
// flavour, diameter maximization) consume d^2 directly, and dist() takes
// the one std::sqrt at the call site.  sqrt is correctly rounded, so
// dist() is bitwise identical to the historical precomputed entries, and
// diameter() keeps its documented bitwise agreement with bcl::diameter()
// (both maximize over squared entries and take a single final sqrt).
//
// Two build paths exist:
//  - the legacy VectorList constructor evaluates distance_squared per pair,
//    so entries are bitwise identical to the historical per-rule
//    recomputation (rows handed out via the pool's dynamic schedule; the
//    triangular row loop is exactly the imbalanced shape the static
//    schedule handles poorly);
//  - the GradientBatch constructor uses the Gram trick: when a cheap
//    streaming check finds the rows' common offset dominating their
//    spread, the rows are first re-based against row 0 (distances are
//    translation-invariant, and the re-basing removes the catastrophic
//    cancellation the raw identity suffers for tightly clustered points
//    far from the origin), then one blocked
//    G = X * X^T product (kernels::gram_upper_columns, SIMD-capable and
//    self-scheduled across column blocks of the upper triangle) yields
//    ||x_i - x_j||^2 = G_ii + G_jj - 2 G_ij.  This is the fast path — the
//    contiguous layout and the register-blocked kernel replace m^2/2
//    latency-bound scalar loops — and agrees with the per-pair build to
//    ~1e-12 relative to the squared spread (clamped at zero, and exactly
//    zero for bitwise-equal rows, since norms are read off the Gram
//    diagonal and the kernel's per-entry arithmetic is
//    blocking-independent).

#include <cstddef>
#include <cmath>
#include <vector>

#include "linalg/gradient_batch.hpp"
#include "linalg/sparse_rows.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

class ThreadPool;

class DistanceMatrix {
 public:
  /// Empty matrix (size 0); usable as a cheap default.
  DistanceMatrix() = default;

  /// Computes all pairwise distances of `points` (which must share one
  /// dimension; throws std::invalid_argument otherwise) with the exact
  /// per-pair kernel.  With a non-null `pool` the rows are self-scheduled
  /// across the pool's workers; the result is identical to the serial
  /// build.
  explicit DistanceMatrix(const VectorList& points, ThreadPool* pool = nullptr);

  /// Gram-trick build over a contiguous batch (see the header comment).
  /// With a non-null `pool` the row tiles of G are self-scheduled across
  /// the workers; the result is bitwise identical to the serial build
  /// (every G entry is one sequential dot regardless of which worker
  /// computes it).  A borrowed view batch (GradientBatch::view) is
  /// gathered once into a per-thread scratch first — same values, same
  /// kernel, bitwise the owned-batch build.
  explicit DistanceMatrix(const GradientBatch& batch,
                          ThreadPool* pool = nullptr);

  /// Gram-trick build over m raw row-major rows of dimension d (a zero-copy
  /// slice of a larger batch, e.g. the honest prefix of a round's gradient
  /// block).  The batch constructor delegates here.
  DistanceMatrix(const double* rows, std::size_t m, std::size_t d,
                 ThreadPool* pool = nullptr);

  /// Sparse Gram build over a CSR batch (top-k / rand-k compressed
  /// inboxes): a row-merge SpGEMM over the CSR rows and their CSC
  /// transpose (kernels::spgemm_gram_row) — each Gram row scatters through
  /// the columns of its stored coordinates, so only coordinates two rows
  /// actually share are ever multiplied, O(nnz * avg column length)
  /// total instead of the pairwise merge's O(m^2 * avg nnz) row re-walks.
  /// Every G entry accumulates its common coordinates in increasing-k
  /// order, bitwise identical to the sparse_dot_sparse pairwise build it
  /// replaced.  Same identity, zero clamp and cancellation guard as the
  /// dense Gram path (the guard recomputes through the sparse difference
  /// form), and the result agrees with the dense constructors to the
  /// documented ~1e-12 relative tolerance.  No rebase pass: sparse rows
  /// have no common offset to cancel (a shared offset would densify
  /// them).
  explicit DistanceMatrix(const SparseRows& rows, ThreadPool* pool = nullptr);

  /// Number of points m.
  std::size_t size() const { return m_; }
  bool empty() const { return m_ == 0; }

  /// Euclidean distance between points i and j (0 on the diagonal).
  double dist(std::size_t i, std::size_t j) const {
    return std::sqrt(d2_[i * m_ + j]);
  }

  /// Squared Euclidean distance between points i and j.
  double dist2(std::size_t i, std::size_t j) const { return d2_[i * m_ + j]; }

  /// Sum of distances from point i to every other point (the medoid score).
  double row_sum(std::size_t i) const;

  /// Maximum pairwise distance (the diameter of the point set).
  double diameter() const;

  /// Maximum pairwise distance within the subset given by `indices`.
  double subset_diameter(const std::vector<std::size_t>& indices) const;

 private:
  std::size_t m_ = 0;
  std::vector<double> d2_;  // m_ x m_, row-major, squared Euclidean
};

}  // namespace bcl
