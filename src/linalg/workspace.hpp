#pragma once
// Per-inbox aggregation workspace.
//
// An AggregationWorkspace bundles one inbox of vectors with lazily computed
// shared state — today the pairwise DistanceMatrix, plus the worker pool to
// build it with.  A node (or the central server, or a bench harness
// comparing rules) constructs one workspace per inbox and passes it to every
// rule, geometry search, and round function that consumes the same vectors,
// so the O(m^2 * d) distance computation happens at most once per inbox no
// matter how many consumers run off it.
//
// The workspace borrows the vector list; it must outlive the workspace.
// Laziness matters: rules that never touch pairwise distances (MEAN,
// CW-MEDIAN, TRIM-MEAN, the clipping baselines) never trigger the build.
//
// A workspace is intended for single-threaded use (one node's round);
// internal consumers may still fan work out across the attached pool.

#include <cstddef>

#include "linalg/distance_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

class ThreadPool;

class AggregationWorkspace {
 public:
  /// Borrows `points` (the inbox); `pool`, when non-null, parallelizes the
  /// distance-matrix build and is exposed to subset-parallel consumers.
  explicit AggregationWorkspace(const VectorList& points,
                                ThreadPool* pool = nullptr)
      : points_(&points), pool_(pool) {}

  AggregationWorkspace(const AggregationWorkspace&) = delete;
  AggregationWorkspace& operator=(const AggregationWorkspace&) = delete;

  /// The inbox this workspace was built over.
  const VectorList& points() const { return *points_; }

  /// Number of vectors in the inbox.
  std::size_t size() const { return points_->size(); }

  ThreadPool* pool() const { return pool_; }

  /// True once distances() has been computed.
  bool has_distances() const { return built_; }

  /// The pairwise distance matrix of the inbox, computed on first use
  /// (pool-parallel when a pool is attached) and cached afterwards.
  const DistanceMatrix& distances() {
    if (!built_) {
      matrix_ = DistanceMatrix(*points_, pool_);
      built_ = true;
    }
    return matrix_;
  }

 private:
  const VectorList* points_;
  ThreadPool* pool_;
  DistanceMatrix matrix_;
  bool built_ = false;
};

}  // namespace bcl
