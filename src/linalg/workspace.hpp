#pragma once
// Per-inbox aggregation workspace.
//
// An AggregationWorkspace bundles one inbox with lazily computed shared
// state — today the pairwise DistanceMatrix, plus the worker pool to build
// it with.  A node (or the central server, or a bench harness comparing
// rules) constructs one workspace per inbox and passes it to every rule,
// geometry search, and round function that consumes the same vectors, so
// the O(m^2 * d) distance computation happens at most once per inbox no
// matter how many consumers run off it.
//
// The inbox is borrowed in one of two representations, and the workspace
// adapts whichever one a consumer asks for:
//  - a legacy VectorList: distances() uses the exact per-pair build, so
//    every matrix-based result stays bitwise identical to the historical
//    per-rule recomputation; batch() is null.
//  - a contiguous GradientBatch (the fast path): distances() uses the
//    tiled Gram-trick build, and points() materializes a VectorList copy
//    on first use for consumers that still speak the legacy type.
// Either way the borrowed inbox must outlive the workspace.
//
// Laziness matters: rules that never touch pairwise distances (MEAN,
// CW-MEDIAN, TRIM-MEAN, the clipping baselines) never trigger the build,
// and batch-native rules never trigger the VectorList materialization.
//
// A workspace is intended for single-threaded use (one node's round);
// internal consumers may still fan work out across the attached pool.

#include <cstddef>
#include <utility>

#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

class ThreadPool;

class AggregationWorkspace {
 public:
  /// Borrows `points` (the inbox); `pool`, when non-null, parallelizes the
  /// distance-matrix build and is exposed to subset-parallel consumers.
  explicit AggregationWorkspace(const VectorList& points,
                                ThreadPool* pool = nullptr)
      : points_(&points), pool_(pool) {}

  /// Borrows a contiguous `batch`; distances() then uses the Gram-trick
  /// build and points() materializes lazily.
  explicit AggregationWorkspace(const GradientBatch& batch,
                                ThreadPool* pool = nullptr)
      : batch_(&batch), pool_(pool) {}

  /// Borrows `batch` but adopts `prebuilt` as the distance matrix (which
  /// must cover the same rows): producers that computed distances some
  /// cheaper way — e.g. the sparse Gram build over a compressed inbox —
  /// hand the result over instead of letting distances() densify again.
  AggregationWorkspace(const GradientBatch& batch, DistanceMatrix prebuilt,
                       ThreadPool* pool = nullptr)
      : batch_(&batch),
        pool_(pool),
        matrix_(std::move(prebuilt)),
        built_(true) {}

  /// Borrows `batch` AND a shared distance matrix owned elsewhere (which
  /// must cover the same rows and outlive the workspace): the agreement
  /// protocol builds one DistanceMatrix per distinct sub-round inbox and
  /// lends it to every node whose inbox matches, so n nodes pay one
  /// O(m^2 * d) build instead of n.  A pointer parameter (not a reference)
  /// keeps this overload distinct from the owning by-value constructor
  /// above; `shared` must be non-null.
  AggregationWorkspace(const GradientBatch& batch,
                       const DistanceMatrix* shared,
                       ThreadPool* pool = nullptr)
      : batch_(&batch), pool_(pool), shared_(shared), built_(true) {}

  AggregationWorkspace(const AggregationWorkspace&) = delete;
  AggregationWorkspace& operator=(const AggregationWorkspace&) = delete;

  /// The inbox as a VectorList: the borrowed list itself when list-backed,
  /// else a copy of the batch materialized on first use and cached.
  const VectorList& points() {
    if (points_ != nullptr) return *points_;
    if (!materialized_built_) {
      materialized_ = batch_->to_vectors();
      materialized_built_ = true;
    }
    return materialized_;
  }

  /// The borrowed batch, or nullptr for a list-backed workspace.
  const GradientBatch* batch() const { return batch_; }

  /// Number of vectors in the inbox.
  std::size_t size() const {
    return points_ != nullptr ? points_->size() : batch_->rows();
  }

  ThreadPool* pool() const { return pool_; }

  /// True once distances() has been computed.
  bool has_distances() const { return built_; }

  /// The pairwise distance matrix of the inbox: the borrowed shared matrix
  /// when one was attached, else computed on first use (pool-parallel when
  /// a pool is attached) and cached afterwards.
  const DistanceMatrix& distances() {
    if (shared_ != nullptr) return *shared_;
    if (!built_) {
      matrix_ = batch_ != nullptr ? DistanceMatrix(*batch_, pool_)
                                  : DistanceMatrix(*points_, pool_);
      built_ = true;
    }
    return matrix_;
  }

 private:
  const VectorList* points_ = nullptr;
  const GradientBatch* batch_ = nullptr;
  ThreadPool* pool_ = nullptr;
  const DistanceMatrix* shared_ = nullptr;
  DistanceMatrix matrix_;
  bool built_ = false;
  VectorList materialized_;
  bool materialized_built_ = false;
};

}  // namespace bcl
