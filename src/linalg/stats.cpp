#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl {

double kth_smallest(std::vector<double> values, std::size_t k) {
  if (k >= values.size()) {
    throw std::invalid_argument("kth_smallest: k out of range");
  }
  std::nth_element(values.begin(), values.begin() + static_cast<long>(k),
                   values.end());
  return values[k];
}

double median(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("median of empty set");
  const std::size_t n = values.size();
  std::sort(values.begin(), values.end());
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double trimmed_mean(std::vector<double> values, std::size_t trim) {
  if (2 * trim >= values.size()) {
    throw std::invalid_argument("trimmed_mean: trim too large");
  }
  std::sort(values.begin(), values.end());
  double s = 0.0;
  for (std::size_t i = trim; i < values.size() - trim; ++i) s += values[i];
  return s / static_cast<double>(values.size() - 2 * trim);
}

Vector coordinatewise_median(const VectorList& vs) {
  if (vs.empty()) throw std::invalid_argument("median of empty list");
  const std::size_t d = check_same_dimension(vs);
  Vector r(d);
  std::vector<double> column(vs.size());
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < vs.size(); ++i) column[i] = vs[i][k];
    r[k] = median(column);
  }
  return r;
}

Vector coordinatewise_trimmed_mean(const VectorList& vs, std::size_t trim) {
  if (vs.empty()) throw std::invalid_argument("trimmed mean of empty list");
  const std::size_t d = check_same_dimension(vs);
  Vector r(d);
  std::vector<double> column(vs.size());
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < vs.size(); ++i) column[i] = vs[i][k];
    r[k] = trimmed_mean(column, trim);
  }
  return r;
}

namespace {

// Shared blocked column pass: transposes tiles of kColumnTile columns into
// `scratch` (column c of the batch becomes the contiguous run
// scratch[c * m .. c * m + m)), sorts each run ascending, and hands it to
// `reduce`.  The strided batch traversal happens once per tile row instead
// of once per coordinate, so the pass streams the batch m * d / tile times
// less than the naive per-coordinate gather.
template <typename Reduce>
Vector blocked_column_pass(const GradientBatch& batch, Reduce&& reduce) {
  constexpr std::size_t kColumnTile = 64;
  const std::size_t m = batch.rows();
  const std::size_t d = batch.dim();
  Vector r(d);
  std::vector<double> scratch(kColumnTile * m);
  for (std::size_t k0 = 0; k0 < d; k0 += kColumnTile) {
    const std::size_t width = std::min(kColumnTile, d - k0);
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = batch.row(i) + k0;
      for (std::size_t c = 0; c < width; ++c) scratch[c * m + i] = row[c];
    }
    for (std::size_t c = 0; c < width; ++c) {
      double* column = scratch.data() + c * m;
      std::sort(column, column + m);
      r[k0 + c] = reduce(column, m);
    }
  }
  return r;
}

}  // namespace

Vector coordinatewise_median(const GradientBatch& batch) {
  if (batch.empty()) throw std::invalid_argument("median of empty batch");
  // Same arithmetic as median() on a sorted copy, so outputs are bitwise
  // identical to the VectorList form.
  return blocked_column_pass(batch, [](const double* sorted, std::size_t m) {
    if (m % 2 == 1) return sorted[m / 2];
    return 0.5 * (sorted[m / 2 - 1] + sorted[m / 2]);
  });
}

Vector coordinatewise_trimmed_mean(const GradientBatch& batch,
                                   std::size_t trim) {
  if (batch.empty()) {
    throw std::invalid_argument("trimmed mean of empty batch");
  }
  if (2 * trim >= batch.rows()) {
    throw std::invalid_argument("trimmed_mean: trim too large");
  }
  // Sum ascending over the kept slice, exactly as trimmed_mean() does.
  return blocked_column_pass(
      batch, [trim](const double* sorted, std::size_t m) {
        double s = 0.0;
        for (std::size_t i = trim; i < m - trim; ++i) s += sorted[i];
        return s / static_cast<double>(m - 2 * trim);
      });
}

Hyperbox trimmed_hyperbox(const VectorList& vs, std::size_t keep) {
  const std::size_t m = vs.size();
  if (keep == 0 || keep > m) {
    throw std::invalid_argument("trimmed_hyperbox: keep must be in [1, m]");
  }
  const std::size_t drop = m - keep;
  if (drop >= keep) {
    // Definition 2.5 requires the lower index (drop+1) to not exceed the
    // upper index (keep); otherwise the interval would be empty.
    if (drop + 1 > keep) {
      throw std::invalid_argument(
          "trimmed_hyperbox: too few vectors kept relative to trimming");
    }
  }
  const std::size_t d = check_same_dimension(vs);
  Vector lo(d);
  Vector hi(d);
  std::vector<double> column(m);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < m; ++i) column[i] = vs[i][k];
    std::sort(column.begin(), column.end());
    lo[k] = column[drop];          // (drop+1)-th smallest, 0-indexed
    hi[k] = column[keep - 1];      // (m-drop)-th smallest = keep-th
  }
  return Hyperbox(std::move(lo), std::move(hi));
}

MeanStd mean_std(const std::vector<double>& values) {
  MeanStd r;
  if (values.empty()) return r;
  double s = 0.0;
  for (double v : values) s += v;
  r.mean = s / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - r.mean) * (v - r.mean);
  r.std = std::sqrt(var / static_cast<double>(values.size()));
  return r;
}

}  // namespace bcl
