#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl {

double kth_smallest(std::vector<double> values, std::size_t k) {
  if (k >= values.size()) {
    throw std::invalid_argument("kth_smallest: k out of range");
  }
  std::nth_element(values.begin(), values.begin() + static_cast<long>(k),
                   values.end());
  return values[k];
}

double median(std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("median of empty set");
  const std::size_t n = values.size();
  std::sort(values.begin(), values.end());
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double trimmed_mean(std::vector<double> values, std::size_t trim) {
  if (2 * trim >= values.size()) {
    throw std::invalid_argument("trimmed_mean: trim too large");
  }
  std::sort(values.begin(), values.end());
  double s = 0.0;
  for (std::size_t i = trim; i < values.size() - trim; ++i) s += values[i];
  return s / static_cast<double>(values.size() - 2 * trim);
}

Vector coordinatewise_median(const VectorList& vs) {
  if (vs.empty()) throw std::invalid_argument("median of empty list");
  const std::size_t d = check_same_dimension(vs);
  Vector r(d);
  std::vector<double> column(vs.size());
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < vs.size(); ++i) column[i] = vs[i][k];
    r[k] = median(column);
  }
  return r;
}

Vector coordinatewise_trimmed_mean(const VectorList& vs, std::size_t trim) {
  if (vs.empty()) throw std::invalid_argument("trimmed mean of empty list");
  const std::size_t d = check_same_dimension(vs);
  Vector r(d);
  std::vector<double> column(vs.size());
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < vs.size(); ++i) column[i] = vs[i][k];
    r[k] = trimmed_mean(column, trim);
  }
  return r;
}

Hyperbox trimmed_hyperbox(const VectorList& vs, std::size_t keep) {
  const std::size_t m = vs.size();
  if (keep == 0 || keep > m) {
    throw std::invalid_argument("trimmed_hyperbox: keep must be in [1, m]");
  }
  const std::size_t drop = m - keep;
  if (drop >= keep) {
    // Definition 2.5 requires the lower index (drop+1) to not exceed the
    // upper index (keep); otherwise the interval would be empty.
    if (drop + 1 > keep) {
      throw std::invalid_argument(
          "trimmed_hyperbox: too few vectors kept relative to trimming");
    }
  }
  const std::size_t d = check_same_dimension(vs);
  Vector lo(d);
  Vector hi(d);
  std::vector<double> column(m);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < m; ++i) column[i] = vs[i][k];
    std::sort(column.begin(), column.end());
    lo[k] = column[drop];          // (drop+1)-th smallest, 0-indexed
    hi[k] = column[keep - 1];      // (m-drop)-th smallest = keep-th
  }
  return Hyperbox(std::move(lo), std::move(hi));
}

MeanStd mean_std(const std::vector<double>& values) {
  MeanStd r;
  if (values.empty()) return r;
  double s = 0.0;
  for (double v : values) s += v;
  r.mean = s / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - r.mean) * (v - r.mean);
  r.std = std::sqrt(var / static_cast<double>(values.size()));
  return r;
}

}  // namespace bcl
