#pragma once
// Axis-aligned hyperboxes (Cartesian products of closed intervals).
//
// Hyperboxes are the central geometric object of the paper's Algorithm 2:
// the locally trusted hyperbox TH_i (Definition 2.5), the geometric-median
// hyperbox GH_i (Definition 3.5), their intersection, its midpoint
// (Definition 3.6) and its maximum edge length E_max (Definition 3.7).

#include <optional>

#include "linalg/vector_ops.hpp"

namespace bcl {

/// A closed axis-aligned box [lo[0], hi[0]] x ... x [lo[d-1], hi[d-1]].
/// Invariant: lo.size() == hi.size() and lo[k] <= hi[k] for all k.
class Hyperbox {
 public:
  /// Constructs the box with the given corner vectors.  Throws if the
  /// invariant is violated.
  Hyperbox(Vector lo, Vector hi);

  /// Degenerate box containing exactly one point.
  static Hyperbox point(const Vector& p);

  /// Smallest hyperbox containing all points (their coordinate-wise
  /// bounding box).  Throws on an empty list.
  static Hyperbox bounding(const VectorList& points);

  std::size_t dimension() const { return lo_.size(); }
  const Vector& lo() const { return lo_; }
  const Vector& hi() const { return hi_; }

  /// True if p lies in the box (within tolerance `tol` per coordinate).
  bool contains(const Vector& p, double tol = 0.0) const;

  /// True if `other` is a subset of this box (within tolerance).
  bool contains_box(const Hyperbox& other, double tol = 0.0) const;

  /// Midpoint of the box (Definition 3.6).
  Vector midpoint() const;

  /// Length of the longest edge (Definition 3.7).  0 for a point.
  double max_edge() const;

  /// Euclidean length of the main diagonal.
  double diagonal() const;

  /// Intersection, or std::nullopt when empty.  The intersection of
  /// axis-aligned boxes is the per-coordinate interval intersection.
  static std::optional<Hyperbox> intersect(const Hyperbox& a,
                                           const Hyperbox& b);

  /// Smallest box containing both.
  static Hyperbox merge(const Hyperbox& a, const Hyperbox& b);

  /// Grows every interval by `eps` on both ends (used for tolerant
  /// containment checks in tests).
  Hyperbox inflated(double eps) const;

  bool operator==(const Hyperbox& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  Vector lo_;
  Vector hi_;
};

}  // namespace bcl
