#include "linalg/distance_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "linalg/kernels.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

namespace {

// Parallel work unit for the Gram build: one packed column block of G's
// upper triangle (kernels::gram_upper_columns).  Column block j costs ~j
// row sweeps — exactly the imbalanced triangular shape the dynamic
// schedule exists for.
constexpr std::size_t kGramColBlock = 8;

// ||a - b||^2 over contiguous rows with two interleaved chains (keeps the
// FP pipeline full); the difference form subtracts coordinates first, so
// it is immune to the common-offset cancellation of the Gram identity.
// Serves both the offset-vs-spread check and the cancellation-guard
// recompute below.
double diff_norm2(const double* a, const double* b, std::size_t d) {
  double s0 = 0.0, s1 = 0.0;
  std::size_t k = 0;
  for (; k + 2 <= d; k += 2) {
    const double d0 = a[k] - b[k];
    const double d1 = a[k + 1] - b[k + 1];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  if (k < d) {
    const double d0 = a[k] - b[k];
    s0 += d0 * d0;
  }
  return s0 + s1;
}

// Flat row-major rows of a batch for the Gram build: the owned buffer
// directly, or — for a borrowed view batch (arena payload spans) — the rows
// gathered once into a per-thread scratch recycled across builds and
// rounds.  One O(m * d) gather per *build* (with cross-node sharing, one
// per sub-round) replaces the per-node O(m * d) inbox copy the protocol
// used to pay before the Gram build even started.  The scratch outlives
// the delegated constructor call, which copies nothing but reads the rows
// only during construction.
const double* contiguous_rows(const GradientBatch& batch) {
  if (batch.contiguous()) return batch.data();
  static thread_local std::vector<double> gathered;
  const std::size_t m = batch.rows();
  const std::size_t d = batch.dim();
  if (gathered.size() < m * d) gathered.resize(m * d);
  for (std::size_t i = 0; i < m; ++i) {
    std::memcpy(gathered.data() + i * d, batch.row(i), d * sizeof(double));
  }
  return gathered.data();
}

}  // namespace

DistanceMatrix::DistanceMatrix(const VectorList& points, ThreadPool* pool)
    : m_(points.size()) {
  check_same_dimension(points);
  d2_.assign(m_ * m_, 0.0);
  if (m_ < 2) return;
  // Row i fills entries (i, j) and (j, i) for j > i, so every pair is
  // written by exactly one task and the parallel build is race-free.
  auto fill_row = [&](std::size_t i) {
    for (std::size_t j = i + 1; j < m_; ++j) {
      const double s = distance_squared(points[i], points[j]);
      d2_[i * m_ + j] = d2_[j * m_ + i] = s;
    }
  };
  if (pool != nullptr && m_ > 2) {
    // Dynamic schedule: row i costs (m - 1 - i) pair evaluations, so a
    // static slab assignment leaves the worker holding the first rows with
    // ~m/2 times the work of the last one.
    pool->parallel_for_dynamic(0, m_ - 1, fill_row);
  } else {
    for (std::size_t i = 0; i + 1 < m_; ++i) fill_row(i);
  }
}

DistanceMatrix::DistanceMatrix(const GradientBatch& batch, ThreadPool* pool)
    : DistanceMatrix(contiguous_rows(batch), batch.rows(), batch.dim(),
                     pool) {}

DistanceMatrix::DistanceMatrix(const double* rows, std::size_t m,
                               std::size_t d, ThreadPool* pool)
    : m_(m) {
  d2_.assign(m_ * m_, 0.0);
  if (m_ < 2) return;

  // The Gram identity ni + nj - 2*Gij cancels catastrophically when the
  // points share a large common offset (tightly clustered gradients late
  // in training are exactly that regime — G entries ~ ||offset||^2 with
  // ulp error dwarfing the true squared distance).  Distances are
  // translation-invariant, so when one cheap streaming pass detects that
  // the offset dominates the spread, the rows are re-based against row 0
  // before the product: the Gram entries then scale with the spread
  // itself, and for coordinates within a factor of two of the reference
  // the subtraction is exact (Sterbenz), so near-duplicates keep full
  // precision.  Well-spread data (the common case) skips the copy
  // entirely.  Bitwise-equal rows stay bitwise equal either way, and the
  // deterministic check keeps serial and parallel builds identical.
  std::vector<double> centered;
  {
    const double offset2 = kernels::dot_seq(rows, rows, d);
    double spread2_max = 0.0;
    for (std::size_t i = 1; i < m_; ++i) {
      spread2_max = std::max(spread2_max, diff_norm2(rows + i * d, rows, d));
    }
    constexpr double kOffsetDominates = 1.0e4;
    if (offset2 > kOffsetDominates * spread2_max) {
      centered.resize(m_ * d);
      for (std::size_t i = 0; i < m_; ++i) {
        const double* src = rows + i * d;
        double* dst = centered.data() + i * d;
        for (std::size_t k = 0; k < d; ++k) dst[k] = src[k] - rows[k];
      }
      rows = centered.data();
    }
  }

  // Upper-triangular Gram matrix G = X * X^T via the column-block kernel.
  // Column blocks write disjoint output ranges and the kernel's per-entry
  // arithmetic is independent of blocking and scheduling, so the
  // self-scheduled parallel build is race-free and bitwise identical to
  // the serial one.
  std::vector<double> gram(m_ * m_, 0.0);
  const std::size_t blocks = (m_ + kGramColBlock - 1) / kGramColBlock;
  auto fill_block = [&](std::size_t b) {
    const std::size_t col0 = b * kGramColBlock;
    const std::size_t col1 = std::min(m_, col0 + kGramColBlock);
    kernels::gram_upper_columns(rows, m_, d, gram.data(), col0, col1);
  };
  if (pool != nullptr && blocks > 1) {
    pool->parallel_for_dynamic(0, blocks, fill_block);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) fill_block(b);
  }

  // ||x_i - x_j||^2 = G_ii + G_jj - 2 G_ij.  Norms come off the Gram
  // diagonal (same kernel, same summation order), so bitwise-equal rows get
  // exactly zero; rounding can still drive near-zero results slightly
  // negative, which the clamp removes before any sqrt.
  //
  // Cancellation guard: the identity's absolute error is ~ulp(ni + nj), so
  // a result far smaller than the norms has lost most of its digits —
  // e.g. a tight cluster whose rebase was suppressed because one Byzantine
  // outlier sat at row 0 or dominated the spread estimate.  Such pairs are
  // recomputed from the (possibly re-based) rows directly; the difference
  // form subtracts coordinates first, which is immune to the common-offset
  // cancellation.  Benign geometries trigger no recomputes; a fully
  // clustered inbox with a suppressed rebase degrades to the per-pair cost
  // for its tiny pairs but never to garbage selections.
  constexpr double kCancelGuard = 1.0e-6;
  for (std::size_t i = 0; i < m_; ++i) {
    const double ni = gram[i * m_ + i];
    for (std::size_t j = i + 1; j < m_; ++j) {
      const double nj = gram[j * m_ + j];
      double s = std::max(0.0, ni + nj - 2.0 * gram[i * m_ + j]);
      if (s < kCancelGuard * (ni + nj)) {
        s = diff_norm2(rows + i * d, rows + j * d, d);
      }
      d2_[i * m_ + j] = d2_[j * m_ + i] = s;
    }
  }
}

DistanceMatrix::DistanceMatrix(const SparseRows& rows, ThreadPool* pool)
    : m_(rows.rows()) {
  d2_.assign(m_ * m_, 0.0);
  if (m_ < 2) return;

  // Self dots off the "diagonal" first (each row's squared norm: the same
  // increasing-index chain the SpGEMM diagonal would produce, kept as a
  // cheap O(nnz) upfront pass because row i's Gram pass needs norms[j] of
  // rows j > i it has not visited yet).
  std::vector<double> norms(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    norms[i] = kernels::sparse_dot_sparse(
        rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
        rows.row_indices(i), rows.row_values(i), rows.row_nnz(i));
  }

  // Row-merge SpGEMM: one CSC transpose up front, then each output row i
  // scatters its Gram entries G_ij (j >= i) through the columns of row i's
  // stored coordinates.  Cost per row is nnz_i * (average column length)
  // — zeros never meet — versus the pairwise merge's sum_j (nnz_i +
  // nnz_j), which re-walks both rows for every pair whether or not they
  // share a coordinate.  Each accumulator receives its common coordinates
  // in increasing-k order, so every G entry is bitwise identical to the
  // sparse_dot_sparse merge it replaces.  Row i writes entries (i, j) and
  // (j, i) for j > i, so the parallel build is race-free; the triangular
  // row loop is the imbalanced shape the dynamic schedule handles.
  const SparseColumns cols(rows);
  constexpr double kCancelGuard = 1.0e-6;
  auto fill_row = [&](std::size_t i) {
    // Per-worker dense scratch row for the sparse accumulator, zeroed on
    // first use and re-zeroed behind every row, so reuse across rows (and
    // DistanceMatrix builds) on the same worker is clean.
    static thread_local std::vector<double> acc;
    if (acc.size() < m_) acc.assign(m_, 0.0);
    kernels::spgemm_gram_row(rows.row_indices(i), rows.row_values(i),
                             rows.row_nnz(i), cols.colptr(), cols.row_ids(),
                             cols.values(), static_cast<std::uint32_t>(i),
                             acc.data());
    const std::uint32_t* ia = rows.row_indices(i);
    const double* va = rows.row_values(i);
    const std::size_t na = rows.row_nnz(i);
    for (std::size_t j = i + 1; j < m_; ++j) {
      const double g = acc[j];
      acc[j] = 0.0;
      double s = std::max(0.0, norms[i] + norms[j] - 2.0 * g);
      // Same cancellation guard as the dense Gram path: a result far
      // smaller than the norms has lost most of its digits to the
      // identity's subtraction, so recompute through the difference form.
      if (s < kCancelGuard * (norms[i] + norms[j])) {
        s = kernels::sparse_diff_norm2(ia, va, na, rows.row_indices(j),
                                       rows.row_values(j), rows.row_nnz(j));
      }
      d2_[i * m_ + j] = d2_[j * m_ + i] = s;
    }
    acc[i] = 0.0;  // diagonal entry: norms[] already holds it
  };
  if (pool != nullptr && m_ > 2) {
    pool->parallel_for_dynamic(0, m_ - 1, fill_row);
  } else {
    for (std::size_t i = 0; i + 1 < m_; ++i) fill_row(i);
  }
}

double DistanceMatrix::row_sum(std::size_t i) const {
  double s = 0.0;
  const double* row = d2_.data() + i * m_;
  for (std::size_t j = 0; j < m_; ++j) s += std::sqrt(row[j]);
  return s;
}

double DistanceMatrix::diameter() const {
  // Maximize over the squared entries and take one sqrt at the end, exactly
  // as bcl::diameter() does, so the two agree bitwise.
  double best = 0.0;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = i + 1; j < m_; ++j) {
      best = std::max(best, d2_[i * m_ + j]);
    }
  }
  return std::sqrt(best);
}

double DistanceMatrix::subset_diameter(
    const std::vector<std::size_t>& indices) const {
  double best = 0.0;
  for (std::size_t a = 0; a < indices.size(); ++a) {
    for (std::size_t b = a + 1; b < indices.size(); ++b) {
      best = std::max(best, d2_[indices[a] * m_ + indices[b]]);
    }
  }
  return std::sqrt(best);
}

}  // namespace bcl
