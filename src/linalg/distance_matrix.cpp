#include "linalg/distance_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.hpp"

namespace bcl {

DistanceMatrix::DistanceMatrix(const VectorList& points, ThreadPool* pool)
    : m_(points.size()) {
  check_same_dimension(points);
  d_.assign(m_ * m_, 0.0);
  d2_.assign(m_ * m_, 0.0);
  if (m_ < 2) return;
  // Row i fills entries (i, j) and (j, i) for j > i, so every pair is
  // written by exactly one task and the parallel build is race-free.
  auto fill_row = [&](std::size_t i) {
    for (std::size_t j = i + 1; j < m_; ++j) {
      const double s = distance_squared(points[i], points[j]);
      const double e = std::sqrt(s);
      d2_[i * m_ + j] = d2_[j * m_ + i] = s;
      d_[i * m_ + j] = d_[j * m_ + i] = e;
    }
  };
  if (pool != nullptr && m_ > 2) {
    pool->parallel_for(0, m_ - 1, fill_row);
  } else {
    for (std::size_t i = 0; i + 1 < m_; ++i) fill_row(i);
  }
}

double DistanceMatrix::row_sum(std::size_t i) const {
  double s = 0.0;
  const double* row = d_.data() + i * m_;
  for (std::size_t j = 0; j < m_; ++j) s += row[j];
  return s;
}

double DistanceMatrix::diameter() const {
  // Maximize over the squared entries and take one sqrt at the end, exactly
  // as bcl::diameter() does, so the two agree bitwise.
  double best = 0.0;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = i + 1; j < m_; ++j) {
      best = std::max(best, d2_[i * m_ + j]);
    }
  }
  return std::sqrt(best);
}

double DistanceMatrix::subset_diameter(
    const std::vector<std::size_t>& indices) const {
  double best = 0.0;
  for (std::size_t a = 0; a < indices.size(); ++a) {
    for (std::size_t b = a + 1; b < indices.size(); ++b) {
      best = std::max(best, d2_[indices[a] * m_ + indices[b]]);
    }
  }
  return std::sqrt(best);
}

}  // namespace bcl
