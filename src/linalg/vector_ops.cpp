#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl {

std::size_t check_same_dimension(const VectorList& vs, std::size_t dim) {
  if (vs.empty()) {
    if (dim != 0) throw std::invalid_argument("empty vector list");
    return 0;
  }
  std::size_t d = dim == 0 ? vs.front().size() : dim;
  for (const auto& v : vs) {
    if (v.size() != d) {
      throw std::invalid_argument("vector dimension mismatch");
    }
  }
  return d;
}

namespace {
void check_dims(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector dimension mismatch");
  }
}
}  // namespace

Vector add(const Vector& a, const Vector& b) {
  check_dims(a, b);
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vector sub(const Vector& a, const Vector& b) {
  check_dims(a, b);
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vector scale(const Vector& a, double s) {
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = s * a[i];
  return r;
}

void axpy(Vector& y, double alpha, const Vector& x) {
  check_dims(y, x);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

double dot(const Vector& a, const Vector& b) {
  check_dims(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2_squared(const Vector& a) {
  double s = 0.0;
  for (double x : a) s += x * x;
  return s;
}

double norm2(const Vector& a) { return std::sqrt(norm2_squared(a)); }

double distance_squared(const Vector& a, const Vector& b) {
  check_dims(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

double distance(const Vector& a, const Vector& b) {
  return std::sqrt(distance_squared(a, b));
}

Vector mean(const VectorList& vs) {
  if (vs.empty()) throw std::invalid_argument("mean of empty list");
  const std::size_t d = check_same_dimension(vs);
  Vector r = zeros(d);
  for (const auto& v : vs) {
    for (std::size_t i = 0; i < d; ++i) r[i] += v[i];
  }
  const double inv = 1.0 / static_cast<double>(vs.size());
  for (double& x : r) x *= inv;
  return r;
}

double diameter(const VectorList& vs) {
  check_same_dimension(vs);
  double best = 0.0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      best = std::max(best, distance_squared(vs[i], vs[j]));
    }
  }
  return std::sqrt(best);
}

Vector zeros(std::size_t d) { return Vector(d, 0.0); }

Vector constant(std::size_t d, double value) { return Vector(d, value); }

Vector unit(std::size_t d, std::size_t j, double s) {
  if (j >= d) throw std::invalid_argument("unit: index out of range");
  Vector r(d, 0.0);
  r[j] = s;
  return r;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace bcl
