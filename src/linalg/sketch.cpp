#include "linalg/sketch.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {
// Salt for the sign-matrix stream; mixed with the caller's sketch seed so
// two sketches with different seeds are independent.
constexpr std::uint64_t kSketchSalt = 0x5E7C4B1D9A03F6E5ull;
}  // namespace

RademacherSketch::RademacherSketch(std::size_t dim, std::size_t k,
                                   std::uint64_t seed)
    : dim_(dim),
      k_(k),
      words_per_row_((k + 63) / 64),
      scale_(1.0 / std::sqrt(static_cast<double>(k))) {
  if (dim == 0 || k == 0) {
    throw std::invalid_argument("RademacherSketch: dim and k must be > 0");
  }
  signs_.resize(dim_ * words_per_row_);
  Rng rng(splitmix64(seed ^ kSketchSalt));
  for (auto& word : signs_) word = rng.next_u64();
}

void RademacherSketch::apply_row(const double* row, double* out) const {
  for (std::size_t j = 0; j < k_; ++j) out[j] = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double x = row[i];
    if (x == 0.0) continue;  // sparse-ish gradients skip the inner loop
    const std::uint64_t* bits = signs_.data() + i * words_per_row_;
    for (std::size_t j = 0; j < k_; ++j) {
      const bool plus = (bits[j >> 6] >> (j & 63)) & 1u;
      out[j] += plus ? x : -x;
    }
  }
  for (std::size_t j = 0; j < k_; ++j) out[j] *= scale_;
}

GradientBatch RademacherSketch::apply(const GradientBatch& batch,
                                      ThreadPool* pool) const {
  if (batch.dim() != dim_) {
    throw std::invalid_argument("RademacherSketch::apply: dimension mismatch");
  }
  GradientBatch out(batch.rows(), k_);
  const auto sketch_row = [&](std::size_t i) {
    apply_row(batch.row(i), out.row(i));
  };
  if (pool != nullptr && batch.rows() > 1) {
    pool->parallel_for(0, batch.rows(), sketch_row);
  } else {
    for (std::size_t i = 0; i < batch.rows(); ++i) sketch_row(i);
  }
  return out;
}

double RademacherSketch::relative_error(std::size_t m) const {
  const double logm = std::log(static_cast<double>(m < 2 ? 2 : m));
  return std::sqrt(8.0 * logm / static_cast<double>(k_));
}

DistanceMatrix sketched_distances(const GradientBatch& batch,
                                  const RademacherSketch& sketch,
                                  ThreadPool* pool) {
  const GradientBatch projected = sketch.apply(batch, pool);
  return DistanceMatrix(projected, pool);
}

}  // namespace bcl
