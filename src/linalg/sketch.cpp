#include "linalg/sketch.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {
// Salt for the sign-matrix stream; mixed with the caller's sketch seed so
// two sketches with different seeds are independent.
constexpr std::uint64_t kSketchSalt = 0x5E7C4B1D9A03F6E5ull;
}  // namespace

RademacherSketch::RademacherSketch(std::size_t dim, std::size_t k,
                                   std::uint64_t seed)
    : dim_(dim),
      k_(k),
      scale_(1.0 / std::sqrt(static_cast<double>(k))) {
  if (dim == 0 || k == 0) {
    throw std::invalid_argument("RademacherSketch: dim and k must be > 0");
  }
  // The sign stream is drawn bit-packed (one u64 per 64 signs, in
  // input-dimension-major order) and expanded to +-1.0 doubles stored
  // k x d — one d-length sign row per sketch coordinate — so that
  // projection is exactly the A * B^T product the tiled matmul_abt
  // kernel computes at full SIMD throughput.  The double form costs
  // dim * k * 8 bytes (~1 MiB at d=1842, k=64); any per-bit extraction
  // at apply time ran scalar and cost as much as the exact O(m^2 * d)
  // Gram build the sketch is supposed to displace.
  signs_.resize(dim_ * k_);
  Rng rng(splitmix64(seed ^ kSketchSalt));
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) {
      if (j % 64 == 0) word = rng.next_u64();
      signs_[j * dim_ + i] = (word >> (j % 64)) & 1ull ? 1.0 : -1.0;
    }
  }
}

// Both application paths compute out[j] = scale * (row . sign_j) through
// kernels::dot_rows — the two-chain SIMD Gram kernel, whose per-entry
// arithmetic is documented to be independent of kernel width, blocking,
// and threading — so per-row and batch application are bit-identical to
// each other.  (The strict-order gemm kernel is ~4x slower per flop here:
// one sequential chain per entry leaves SIMD on the table, and a sketch
// coordinate has no bitwise-legacy contract to honour.)
void RademacherSketch::apply_row(const double* row, double* out) const {
  for (std::size_t j = 0; j < k_; ++j) out[j] = 0.0;
  kernels::dot_rows(row, signs_.data(), k_, dim_, out);
  for (std::size_t j = 0; j < k_; ++j) out[j] *= scale_;
}

GradientBatch RademacherSketch::apply(const GradientBatch& batch,
                                      ThreadPool* pool) const {
  if (batch.dim() != dim_) {
    throw std::invalid_argument("RademacherSketch::apply: dimension mismatch");
  }
  GradientBatch out(batch.rows(), k_);
  // Sketching every row against the full sign matrix in one sweep would
  // stream all dim * k * 8 sign bytes (~1 MiB at d=1842, k=64) per batch
  // row.  Instead the j-loop tiles the sign matrix into kSignTile-row
  // slabs that stay cache-resident while every batch row in the block
  // passes over them.  dot_rows' per-entry arithmetic is tile-width
  // independent, so tiled and untiled application agree bitwise.
  constexpr std::size_t kSignTile = 8;
  const auto sketch_rows = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      double* const o = out.row(r);
      for (std::size_t j = 0; j < k_; ++j) o[j] = 0.0;
    }
    for (std::size_t j0 = 0; j0 < k_; j0 += kSignTile) {
      const std::size_t jw = std::min(kSignTile, k_ - j0);
      for (std::size_t r = r0; r < r1; ++r) {
        kernels::dot_rows(batch.row(r), signs_.data() + j0 * dim_, jw, dim_,
                          out.row(r) + j0);
      }
    }
    for (std::size_t r = r0; r < r1; ++r) {
      double* const o = out.row(r);
      for (std::size_t j = 0; j < k_; ++j) o[j] *= scale_;
    }
  };
  if (pool != nullptr && batch.rows() > 1) {
    const std::size_t chunk = 64;
    const std::size_t chunks = (batch.rows() + chunk - 1) / chunk;
    pool->parallel_for(0, chunks, [&](std::size_t c) {
      const std::size_t r0 = c * chunk;
      sketch_rows(r0, std::min(r0 + chunk, batch.rows()));
    });
  } else {
    sketch_rows(0, batch.rows());
  }
  return out;
}

double RademacherSketch::relative_error(std::size_t m) const {
  const double logm = std::log(static_cast<double>(m < 2 ? 2 : m));
  return std::sqrt(8.0 * logm / static_cast<double>(k_));
}

DistanceMatrix sketched_distances(const GradientBatch& batch,
                                  const RademacherSketch& sketch,
                                  ThreadPool* pool) {
  const GradientBatch projected = sketch.apply(batch, pool);
  return DistanceMatrix(projected, pool);
}

}  // namespace bcl
