#pragma once
// Dense d-dimensional vector operations.
//
// Input vectors, gradients and aggregation outputs are all plain
// std::vector<double>; these free functions provide the small set of BLAS-1
// style kernels the library needs, with dimension checking at the API
// boundary.

#include <cstddef>
#include <vector>

namespace bcl {

using Vector = std::vector<double>;
using VectorList = std::vector<Vector>;

/// Throws std::invalid_argument unless all vectors in `vs` share dimension
/// `dim` (or, with dim == 0, the dimension of the first vector).  Returns the
/// common dimension (0 for an empty list with dim == 0).
std::size_t check_same_dimension(const VectorList& vs, std::size_t dim = 0);

/// a + b (element-wise).
Vector add(const Vector& a, const Vector& b);

/// a - b (element-wise).
Vector sub(const Vector& a, const Vector& b);

/// s * a.
Vector scale(const Vector& a, double s);

/// In-place y += alpha * x.
void axpy(Vector& y, double alpha, const Vector& x);

/// Dot product.
double dot(const Vector& a, const Vector& b);

/// Squared Euclidean norm.
double norm2_squared(const Vector& a);

/// Euclidean norm.
double norm2(const Vector& a);

/// Euclidean distance.
double distance(const Vector& a, const Vector& b);

/// Squared Euclidean distance (no sqrt; used in hot loops).
double distance_squared(const Vector& a, const Vector& b);

/// Arithmetic mean of a non-empty list (Definition 2.1 of the paper).
Vector mean(const VectorList& vs);

/// Maximum pairwise Euclidean distance of a list (its diameter).
double diameter(const VectorList& vs);

/// All-zero vector of dimension d.
Vector zeros(std::size_t d);

/// Vector of dimension d filled with `value`.
Vector constant(std::size_t d, double value);

/// j-th standard basis vector of dimension d, scaled by `s`.
Vector unit(std::size_t d, std::size_t j, double s = 1.0);

/// True if max |a[k] - b[k]| <= tol.
bool approx_equal(const Vector& a, const Vector& b, double tol);

}  // namespace bcl
