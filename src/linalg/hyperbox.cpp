#include "linalg/hyperbox.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl {

Hyperbox::Hyperbox(Vector lo, Vector hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_.size() != hi_.size()) {
    throw std::invalid_argument("Hyperbox: corner dimension mismatch");
  }
  for (std::size_t k = 0; k < lo_.size(); ++k) {
    if (lo_[k] > hi_[k]) {
      throw std::invalid_argument("Hyperbox: lo > hi in some coordinate");
    }
  }
}

Hyperbox Hyperbox::point(const Vector& p) { return Hyperbox(p, p); }

Hyperbox Hyperbox::bounding(const VectorList& points) {
  if (points.empty()) {
    throw std::invalid_argument("Hyperbox::bounding: empty point list");
  }
  const std::size_t d = check_same_dimension(points);
  Vector lo = points.front();
  Vector hi = points.front();
  for (const auto& p : points) {
    for (std::size_t k = 0; k < d; ++k) {
      lo[k] = std::min(lo[k], p[k]);
      hi[k] = std::max(hi[k], p[k]);
    }
  }
  return Hyperbox(std::move(lo), std::move(hi));
}

bool Hyperbox::contains(const Vector& p, double tol) const {
  if (p.size() != dimension()) return false;
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (p[k] < lo_[k] - tol || p[k] > hi_[k] + tol) return false;
  }
  return true;
}

bool Hyperbox::contains_box(const Hyperbox& other, double tol) const {
  if (other.dimension() != dimension()) return false;
  for (std::size_t k = 0; k < dimension(); ++k) {
    if (other.lo_[k] < lo_[k] - tol || other.hi_[k] > hi_[k] + tol) {
      return false;
    }
  }
  return true;
}

Vector Hyperbox::midpoint() const {
  Vector m(dimension());
  for (std::size_t k = 0; k < dimension(); ++k) {
    m[k] = 0.5 * (lo_[k] + hi_[k]);
  }
  return m;
}

double Hyperbox::max_edge() const {
  double e = 0.0;
  for (std::size_t k = 0; k < dimension(); ++k) {
    e = std::max(e, hi_[k] - lo_[k]);
  }
  return e;
}

double Hyperbox::diagonal() const {
  double s = 0.0;
  for (std::size_t k = 0; k < dimension(); ++k) {
    const double e = hi_[k] - lo_[k];
    s += e * e;
  }
  return std::sqrt(s);
}

std::optional<Hyperbox> Hyperbox::intersect(const Hyperbox& a,
                                            const Hyperbox& b) {
  if (a.dimension() != b.dimension()) {
    throw std::invalid_argument("Hyperbox::intersect: dimension mismatch");
  }
  Vector lo(a.dimension());
  Vector hi(a.dimension());
  for (std::size_t k = 0; k < a.dimension(); ++k) {
    lo[k] = std::max(a.lo_[k], b.lo_[k]);
    hi[k] = std::min(a.hi_[k], b.hi_[k]);
    if (lo[k] > hi[k]) return std::nullopt;
  }
  return Hyperbox(std::move(lo), std::move(hi));
}

Hyperbox Hyperbox::merge(const Hyperbox& a, const Hyperbox& b) {
  if (a.dimension() != b.dimension()) {
    throw std::invalid_argument("Hyperbox::merge: dimension mismatch");
  }
  Vector lo(a.dimension());
  Vector hi(a.dimension());
  for (std::size_t k = 0; k < a.dimension(); ++k) {
    lo[k] = std::min(a.lo_[k], b.lo_[k]);
    hi[k] = std::max(a.hi_[k], b.hi_[k]);
  }
  return Hyperbox(std::move(lo), std::move(hi));
}

Hyperbox Hyperbox::inflated(double eps) const {
  Vector lo = lo_;
  Vector hi = hi_;
  for (std::size_t k = 0; k < dimension(); ++k) {
    lo[k] -= eps;
    hi[k] += eps;
  }
  return Hyperbox(std::move(lo), std::move(hi));
}

}  // namespace bcl
