#pragma once
// Order statistics and coordinate-wise trimming.
//
// The locally trusted hyperbox (Definition 2.5) is built by sorting the
// received values in every coordinate and discarding m-(n-t) of them on each
// side; these helpers implement that trimming plus the coordinate-wise
// median / trimmed-mean aggregation primitives.

#include <cstddef>

#include "linalg/gradient_batch.hpp"
#include "linalg/hyperbox.hpp"
#include "linalg/vector_ops.hpp"

namespace bcl {

/// k-th smallest of a copy of `values` (0-indexed).  Throws if out of range.
double kth_smallest(std::vector<double> values, std::size_t k);

/// Median of a copy of `values` (average of the two middle elements for
/// even sizes).
double median(std::vector<double> values);

/// Mean after removing the `trim` smallest and `trim` largest values.
/// Throws if 2*trim >= size.
double trimmed_mean(std::vector<double> values, std::size_t trim);

/// Coordinate-wise median vector of a non-empty list.
Vector coordinatewise_median(const VectorList& vs);

/// Coordinate-wise trimmed mean with `trim` values removed per side in each
/// coordinate independently.
Vector coordinatewise_trimmed_mean(const VectorList& vs, std::size_t trim);

/// Batch forms of the coordinate-wise reductions: a blocked column pass
/// transposes tiles of columns into a small scratch buffer (one strided
/// sweep per tile instead of one per coordinate), then applies the same
/// order statistics per column.  Outputs are bitwise identical to the
/// VectorList forms on the same values.
Vector coordinatewise_median(const GradientBatch& batch);
Vector coordinatewise_trimmed_mean(const GradientBatch& batch,
                                   std::size_t trim);

/// The locally trusted hyperbox of Definition 2.5: in each coordinate,
/// interval from the (drop+1)-th smallest to the (m-drop)-th smallest value
/// (1-indexed), where drop = m - keep and m = vs.size().
///
/// `keep` is the paper's n - t.  Requires n - t <= m and drop*2 may exceed
/// the interval only when keep <= drop, which is rejected.
Hyperbox trimmed_hyperbox(const VectorList& vs, std::size_t keep);

/// Sample mean and (population) standard deviation of values.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd mean_std(const std::vector<double>& values);

}  // namespace bcl
