#include "linalg/kernels.hpp"

#include <algorithm>

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define BCL_KERNELS_SSE2 1
#else
#define BCL_KERNELS_SSE2 0
#endif

namespace bcl::kernels {

namespace {

// Register block width shared by the gemm and Gram kernels: number of B
// rows (output columns) accumulated per pass over k.  Eight independent
// accumulator chains are enough to cover the FP latency on current cores
// without spilling.
constexpr std::size_t kColBlock = 8;

// --- strict-order gemm micro-kernel ---------------------------------------
//
// cvals[q] += arow . brow_q for W consecutive B rows starting at b (each
// `bstride` apart), k in [k0, k1).  W is a compile-time constant so the q
// loop fully unrolls and acc[] lives in registers; each acc[q] is a single
// sequential chain in increasing k — the bitwise-determinism contract
// matmul_abt documents (this is what lets the im2col Conv2D and the gemm
// Dense match the direct implementations exactly).
template <std::size_t W>
void abt_kernel(const double* arow, const double* b, std::size_t bstride,
                double* cvals, std::size_t k0, std::size_t k1) {
  const double* brow[W];
  for (std::size_t q = 0; q < W; ++q) brow[q] = b + q * bstride;
  double acc[W];
  for (std::size_t q = 0; q < W; ++q) acc[q] = cvals[q];
  for (std::size_t kk = k0; kk < k1; ++kk) {
    const double av = arow[kk];
    for (std::size_t q = 0; q < W; ++q) acc[q] += av * brow[q][kk];
  }
  for (std::size_t q = 0; q < W; ++q) cvals[q] = acc[q];
}

// Width dispatch for one A row against B rows [j0, j1) over k in [k0, k1).
void abt_row_range(const double* arow, const double* b, std::size_t k,
                   double* crow, std::size_t j0, std::size_t j1,
                   std::size_t k0, std::size_t k1) {
  std::size_t j = j0;
  for (; j + kColBlock <= j1; j += kColBlock) {
    abt_kernel<kColBlock>(arow, b + j * k, k, crow + j, k0, k1);
  }
  if (j + 4 <= j1) {
    abt_kernel<4>(arow, b + j * k, k, crow + j, k0, k1);
    j += 4;
  }
  if (j + 2 <= j1) {
    abt_kernel<2>(arow, b + j * k, k, crow + j, k0, k1);
    j += 2;
  }
  if (j < j1) abt_kernel<1>(arow, b + j * k, k, crow + j, k0, k1);
}

// --- Gram micro-kernel ----------------------------------------------------
//
// The Gram build tolerates (documented) reassociation, so its kernel uses
// two interleaved k-chains per entry — even and odd k indices — which map
// onto one 2-lane SIMD accumulator per output column.  The per-entry
// arithmetic is fixed by this definition alone:
//
//     G_ij = (sum_{k even} a_k b_k + sum_{k odd} a_k b_k) + tail
//
// (tail = the last product when k is odd), and never depends on the kernel
// width W, on how columns are grouped into blocks, or on which thread runs
// the block.  Consequences: serial and pool-parallel builds are bitwise
// identical, and bitwise-equal rows produce bitwise-equal entries (the
// DistanceMatrix diagonal-norm trick then yields exactly zero distances).
// The scalar twin below replicates the lane arithmetic exactly, so builds
// agree bitwise across the SSE2 and fallback paths too.

#if BCL_KERNELS_SSE2
template <std::size_t W>
void gram_kernel(const double* arow, const double* const* brow, double* cvals,
                 std::size_t d) {
  __m128d acc[W];
  for (std::size_t q = 0; q < W; ++q) acc[q] = _mm_setzero_pd();
  std::size_t kk = 0;
  for (; kk + 2 <= d; kk += 2) {
    const __m128d av = _mm_loadu_pd(arow + kk);
    for (std::size_t q = 0; q < W; ++q) {
      acc[q] = _mm_add_pd(acc[q], _mm_mul_pd(av, _mm_loadu_pd(brow[q] + kk)));
    }
  }
  for (std::size_t q = 0; q < W; ++q) {
    double lanes[2];
    _mm_storeu_pd(lanes, acc[q]);
    double value = lanes[0] + lanes[1];
    if (kk < d) value += arow[kk] * brow[q][kk];
    cvals[q] += value;
  }
}
#else
template <std::size_t W>
void gram_kernel(const double* arow, const double* const* brow, double* cvals,
                 std::size_t d) {
  double even[W];
  double odd[W];
  for (std::size_t q = 0; q < W; ++q) even[q] = odd[q] = 0.0;
  std::size_t kk = 0;
  for (; kk + 2 <= d; kk += 2) {
    const double a0 = arow[kk];
    const double a1 = arow[kk + 1];
    for (std::size_t q = 0; q < W; ++q) {
      even[q] += a0 * brow[q][kk];
      odd[q] += a1 * brow[q][kk + 1];
    }
  }
  for (std::size_t q = 0; q < W; ++q) {
    double value = even[q] + odd[q];
    if (kk < d) value += arow[kk] * brow[q][kk];
    cvals[q] += value;
  }
}
#endif

// One A row against columns [j0, j1) of X, decomposed into 8/4/2/1 widths.
void gram_row_range(const double* arow, const double* x, std::size_t k,
                    double* crow, std::size_t j0, std::size_t j1) {
  const double* brow[kColBlock];
  std::size_t j = j0;
  for (; j + kColBlock <= j1; j += kColBlock) {
    for (std::size_t q = 0; q < kColBlock; ++q) brow[q] = x + (j + q) * k;
    gram_kernel<kColBlock>(arow, brow, crow + j, k);
  }
  if (j + 4 <= j1) {
    for (std::size_t q = 0; q < 4; ++q) brow[q] = x + (j + q) * k;
    gram_kernel<4>(arow, brow, crow + j, k);
    j += 4;
  }
  if (j + 2 <= j1) {
    for (std::size_t q = 0; q < 2; ++q) brow[q] = x + (j + q) * k;
    gram_kernel<2>(arow, brow, crow + j, k);
    j += 2;
  }
  if (j < j1) {
    brow[0] = x + j * k;
    gram_kernel<1>(arow, brow, crow + j, k);
  }
}

}  // namespace

double dot_seq(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void axpy(double* y, double alpha, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void add_inplace(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void scale_inplace(double* y, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

void matmul_abt(const double* a, std::size_t ma, const double* b,
                std::size_t mb, std::size_t k, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < ma; ++i) {
    abt_row_range(a + i * k, b, k, c + i * ldc, 0, mb, 0, k);
  }
}

void gram_upper_columns(const double* x, std::size_t m, std::size_t k,
                        double* c, std::size_t col0, std::size_t col1) {
  std::size_t j0 = col0;
  while (j0 < col1) {
    const std::size_t jw = std::min(kColBlock, col1 - j0);
    // Full-width rows: every column j in [j0, j0 + jw) has j >= i.
    for (std::size_t i = 0; i < j0; ++i) {
      gram_row_range(x + i * k, x, k, c + i * m, j0, j0 + jw);
    }
    // Diagonal fringe: row i only takes columns j >= i.
    for (std::size_t i = j0; i < j0 + jw; ++i) {
      gram_row_range(x + i * k, x, k, c + i * m, i, j0 + jw);
    }
    j0 += jw;
  }
}

void gram_upper(const double* x, std::size_t m, std::size_t k, double* c) {
  gram_upper_columns(x, m, k, c, 0, m);
}

void dot_rows(const double* a, const double* b, std::size_t rows,
              std::size_t k, double* out) {
  gram_row_range(a, b, k, out, 0, rows);
}

void col_sum(const double* x, std::size_t m, std::size_t k, double* out) {
  for (std::size_t i = 0; i < m; ++i) add_inplace(out, x + i * k, k);
}

double sparse_dot_dense(const std::uint32_t* idx, const double* val,
                        std::size_t nnz, const double* dense) {
  double s = 0.0;
  for (std::size_t j = 0; j < nnz; ++j) s += val[j] * dense[idx[j]];
  return s;
}

double sparse_dot_sparse(const std::uint32_t* ia, const double* va,
                         std::size_t na, const std::uint32_t* ib,
                         const double* vb, std::size_t nb) {
  double s = 0.0;
  std::size_t a = 0, b = 0;
  while (a < na && b < nb) {
    if (ia[a] < ib[b]) {
      ++a;
    } else if (ib[b] < ia[a]) {
      ++b;
    } else {
      s += va[a] * vb[b];
      ++a;
      ++b;
    }
  }
  return s;
}

double sparse_diff_norm2(const std::uint32_t* ia, const double* va,
                         std::size_t na, const std::uint32_t* ib,
                         const double* vb, std::size_t nb) {
  double s = 0.0;
  std::size_t a = 0, b = 0;
  while (a < na && b < nb) {
    double d;
    if (ia[a] < ib[b]) {
      d = va[a++];
    } else if (ib[b] < ia[a]) {
      d = vb[b++];
    } else {
      d = va[a++] - vb[b++];
    }
    s += d * d;
  }
  for (; a < na; ++a) s += va[a] * va[a];
  for (; b < nb; ++b) s += vb[b] * vb[b];
  return s;
}

void spgemm_gram_row(const std::uint32_t* idx, const double* val,
                     std::size_t nnz, const std::size_t* colptr,
                     const std::uint32_t* colrow, const double* colval,
                     std::uint32_t i, double* acc) {
  for (std::size_t p = 0; p < nnz; ++p) {
    const std::uint32_t k = idx[p];
    const double v = val[p];
    const std::uint32_t* lo = colrow + colptr[k];
    const std::uint32_t* hi = colrow + colptr[k + 1];
    // Columns list rows in increasing order; skip the strictly-lower
    // triangle in one binary search (row i itself stays — it feeds the
    // diagonal / squared norm).
    const std::uint32_t* at = std::lower_bound(lo, hi, i);
    const double* cv = colval + (at - colrow);
    for (; at != hi; ++at, ++cv) acc[*at] += v * *cv;
  }
}

}  // namespace bcl::kernels
