#pragma once
// Johnson-Lindenstrauss distance sketches for sub-quadratic robust
// aggregation.
//
// The exact pairwise-distance build is O(m^2 * d); at production cohort
// sizes d dominates.  A Rademacher (random-sign) JL projection maps each
// row x in R^d to (1/sqrt(k)) * S^T x in R^k, and pairwise distances of
// the sketched rows estimate the exact ones within relative error
// ~sqrt(log m / k) with high probability.  Distance-based rules (Krum,
// Multi-Krum, MD-*) then run over the k-dimensional Gram build —
// O(m * d * k + m^2 * k) — and fall back to the exact matrix only when
// the sketch cannot separate the decision (see aggregation/sketched.hpp).
//
// The sign matrix is derived deterministically from the sketch seed
// (bit-packed, one splitmix64-seeded stream), so sketched runs replay
// bitwise like everything else in the library.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/distance_matrix.hpp"
#include "linalg/gradient_batch.hpp"

namespace bcl {

class ThreadPool;

/// A fixed d -> k Rademacher projection: out = (1/sqrt(k)) * signs^T * x.
class RademacherSketch {
 public:
  /// Builds the d x k sign matrix from `seed` (drawn bit-packed, stored
  /// as +-1.0 doubles so application vectorizes).  Throws
  /// std::invalid_argument when dim or k is 0.
  RademacherSketch(std::size_t dim, std::size_t k, std::uint64_t seed);

  std::size_t dim() const { return dim_; }
  std::size_t k() const { return k_; }

  /// Sketches one row (`row` has dim() entries, `out` has k() entries).
  void apply_row(const double* row, double* out) const;

  /// Sketches every row of `batch` (whose dim must match) into an m x k
  /// batch; rows are independent, so a non-null pool splits them across
  /// workers with a bitwise-identical result.
  GradientBatch apply(const GradientBatch& batch, ThreadPool* pool) const;

  /// The default JL error bound carried by this sketch: an estimate of
  /// the relative error of sketched distances over m points,
  /// sqrt(8 ln(max(m, 2)) / k).  Consumers treat any decision margin
  /// below ~2x this as unresolved and fall back to exact distances.
  double relative_error(std::size_t m) const;

 private:
  std::size_t dim_ = 0;
  std::size_t k_ = 0;
  double scale_ = 1.0;         // 1 / sqrt(k)
  std::vector<double> signs_;  // dim_ x k_ entries in {-1.0, +1.0}
};

/// Approximate pairwise distances: sketch the batch, then run the exact
/// Gram-trick build over the k-dimensional rows.
DistanceMatrix sketched_distances(const GradientBatch& batch,
                                  const RademacherSketch& sketch,
                                  ThreadPool* pool);

}  // namespace bcl
