#pragma once
// CSR-layout batch of sparse rows sharing one dimension.
//
// Top-k/rand-k compressed inboxes are mostly zeros; densifying them into a
// GradientBatch makes the O(m^2 * d) distance build pay full dense cost on
// ~1% occupancy.  SparseRows keeps the (index, value) pairs of each row
// contiguously (one shared indices/values arena indexed by row offsets),
// which is the layout the sparse kernels (kernels::sparse_dot_sparse and
// friends) consume, and DistanceMatrix gains a constructor over it that
// builds the same Gram-trick pairwise matrix in O(sum_i sum_j (nnz_i +
// nnz_j)) instead of O(m^2 * d).
//
// Rows may mix sparsities: a dense row (a Byzantine submission, say) is
// just a row with nnz == dim.  Indices within a row are strictly
// increasing — push_row validates, since the merge kernels silently
// mis-multiply on unsorted input.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

class SparseRows {
 public:
  /// Empty batch of `dim`-dimensional rows.
  explicit SparseRows(std::size_t dim = 0) : dim_(dim), rowptr_{0} {}

  std::size_t rows() const { return rowptr_.size() - 1; }
  std::size_t dim() const { return dim_; }
  std::size_t nnz() const { return values_.size(); }
  std::size_t row_nnz(std::size_t i) const {
    return rowptr_[i + 1] - rowptr_[i];
  }
  const std::uint32_t* row_indices(std::size_t i) const {
    return indices_.data() + rowptr_[i];
  }
  const double* row_values(std::size_t i) const {
    return values_.data() + rowptr_[i];
  }

  /// Fraction of stored to dense entries (1.0 for an all-dense batch).
  double density() const;

  /// Appends a row from parallel index/value arrays (indices strictly
  /// increasing and < dim; throws std::invalid_argument otherwise).
  void push_row(const std::uint32_t* indices, const double* values,
                std::size_t nnz);

  /// Appends a dense row, gathering its nonzero coordinates.  (Encoded
  /// gradients append themselves via CompressedGradient::append_row_to —
  /// the compression layer sits above this one.)
  void push_dense_row(const double* values, std::size_t dim);

  /// Scatters row i into out[0..dim) (zero-filled first).
  void decode_row_into(std::size_t i, double* out) const;

 private:
  std::size_t dim_ = 0;
  std::vector<std::size_t> rowptr_;  // rows() + 1 offsets into the arenas
  std::vector<std::uint32_t> indices_;
  std::vector<double> values_;
};

/// CSC transpose of a SparseRows batch: the same (row, column, value)
/// triples regrouped by column, rows within a column in increasing order
/// (the build is a counting sort over the CSR arenas, O(nnz + dim)).
///
/// This is the second operand layout of the row-merge SpGEMM Gram build
/// (kernels::spgemm_gram_row): for each stored entry (i, k, v) of row i,
/// column k lists every row j that also holds coordinate k — exactly the
/// rows whose dot with row i picks up a contribution v * x[j][k].  Walking
/// the columns of row i's indices in order therefore visits, per output
/// pair (i, j), the common coordinates in increasing-k order: the same
/// accumulation order as the pairwise sparse_dot_sparse merge, which is
/// what keeps the SpGEMM Gram bitwise identical to the pairwise build.
class SparseColumns {
 public:
  /// Transposes `rows` (which it does not retain).
  explicit SparseColumns(const SparseRows& rows);

  std::size_t dim() const { return colptr_.size() - 1; }
  std::size_t col_nnz(std::size_t k) const {
    return colptr_[k + 1] - colptr_[k];
  }
  /// Row ids holding coordinate k, strictly increasing.
  const std::uint32_t* col_rows(std::size_t k) const {
    return rows_.data() + colptr_[k];
  }
  /// Values parallel to col_rows(k).
  const double* col_values(std::size_t k) const {
    return values_.data() + colptr_[k];
  }
  const std::size_t* colptr() const { return colptr_.data(); }
  const std::uint32_t* row_ids() const { return rows_.data(); }
  const double* values() const { return values_.data(); }

 private:
  std::vector<std::size_t> colptr_;  // dim() + 1 offsets into the arenas
  std::vector<std::uint32_t> rows_;
  std::vector<double> values_;
};

}  // namespace bcl
