#pragma once
// CSR-layout batch of sparse rows sharing one dimension.
//
// Top-k/rand-k compressed inboxes are mostly zeros; densifying them into a
// GradientBatch makes the O(m^2 * d) distance build pay full dense cost on
// ~1% occupancy.  SparseRows keeps the (index, value) pairs of each row
// contiguously (one shared indices/values arena indexed by row offsets),
// which is the layout the sparse kernels (kernels::sparse_dot_sparse and
// friends) consume, and DistanceMatrix gains a constructor over it that
// builds the same Gram-trick pairwise matrix in O(sum_i sum_j (nnz_i +
// nnz_j)) instead of O(m^2 * d).
//
// Rows may mix sparsities: a dense row (a Byzantine submission, say) is
// just a row with nnz == dim.  Indices within a row are strictly
// increasing — push_row validates, since the merge kernels silently
// mis-multiply on unsorted input.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace bcl {

class SparseRows {
 public:
  /// Empty batch of `dim`-dimensional rows.
  explicit SparseRows(std::size_t dim = 0) : dim_(dim), rowptr_{0} {}

  std::size_t rows() const { return rowptr_.size() - 1; }
  std::size_t dim() const { return dim_; }
  std::size_t nnz() const { return values_.size(); }
  std::size_t row_nnz(std::size_t i) const {
    return rowptr_[i + 1] - rowptr_[i];
  }
  const std::uint32_t* row_indices(std::size_t i) const {
    return indices_.data() + rowptr_[i];
  }
  const double* row_values(std::size_t i) const {
    return values_.data() + rowptr_[i];
  }

  /// Fraction of stored to dense entries (1.0 for an all-dense batch).
  double density() const;

  /// Appends a row from parallel index/value arrays (indices strictly
  /// increasing and < dim; throws std::invalid_argument otherwise).
  void push_row(const std::uint32_t* indices, const double* values,
                std::size_t nnz);

  /// Appends a dense row, gathering its nonzero coordinates.  (Encoded
  /// gradients append themselves via CompressedGradient::append_row_to —
  /// the compression layer sits above this one.)
  void push_dense_row(const double* values, std::size_t dim);

  /// Scatters row i into out[0..dim) (zero-filled first).
  void decode_row_into(std::size_t i, double* out) const;

 private:
  std::size_t dim_ = 0;
  std::vector<std::size_t> rowptr_;  // rows() + 1 offsets into the arenas
  std::vector<std::uint32_t> indices_;
  std::vector<double> values_;
};

}  // namespace bcl
