#include "linalg/gradient_batch.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "linalg/kernels.hpp"

namespace bcl {

GradientBatch GradientBatch::from(const VectorList& vs) {
  const std::size_t d = check_same_dimension(vs);
  GradientBatch batch(vs.size(), d);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    std::memcpy(batch.row(i), vs[i].data(), d * sizeof(double));
  }
  return batch;
}

GradientBatch GradientBatch::view(const double* const* rows, std::size_t m,
                                  std::size_t dim) {
  if (m > 0 && rows == nullptr) {
    throw std::invalid_argument("GradientBatch::view: null row table");
  }
  GradientBatch batch;
  batch.m_ = m;
  batch.d_ = dim;
  batch.view_rows_ = rows;
  return batch;
}

void GradientBatch::set_row(std::size_t i, const Vector& v) {
  if (i >= m_) throw std::invalid_argument("GradientBatch: row out of range");
  if (v.size() != d_) {
    throw std::invalid_argument("GradientBatch: dimension mismatch");
  }
  std::memcpy(row(i), v.data(), d_ * sizeof(double));
}

VectorList GradientBatch::to_vectors() const {
  VectorList out;
  out.reserve(m_);
  for (std::size_t i = 0; i < m_; ++i) out.push_back(row_copy(i));
  return out;
}

Vector mean(const GradientBatch& batch) {
  if (batch.empty()) throw std::invalid_argument("mean of empty batch");
  Vector r(batch.dim(), 0.0);
  if (batch.contiguous()) {
    kernels::col_sum(batch.data(), batch.rows(), batch.dim(), r.data());
  } else {
    // View batches have no flat buffer; the per-row accumulation visits the
    // same values in the same per-coordinate row order as col_sum (its
    // documented contract), so both branches are bitwise identical.
    for (std::size_t i = 0; i < batch.rows(); ++i) {
      kernels::add_inplace(r.data(), batch.row(i), batch.dim());
    }
  }
  kernels::scale_inplace(r.data(), 1.0 / static_cast<double>(batch.rows()),
                         r.size());
  return r;
}

Vector mean_of_rows(const GradientBatch& batch,
                    const std::vector<std::size_t>& indices) {
  if (indices.empty()) {
    throw std::invalid_argument("mean_of_rows: empty selection");
  }
  Vector r(batch.dim(), 0.0);
  for (std::size_t i : indices) {
    kernels::add_inplace(r.data(), batch.row(i), batch.dim());
  }
  kernels::scale_inplace(r.data(), 1.0 / static_cast<double>(indices.size()),
                         r.size());
  return r;
}

}  // namespace bcl
