#include "linalg/sparse_rows.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcl {

double SparseRows::density() const {
  const std::size_t dense = rows() * dim_;
  if (dense == 0) return 1.0;
  return static_cast<double>(nnz()) / static_cast<double>(dense);
}

void SparseRows::push_row(const std::uint32_t* indices, const double* values,
                          std::size_t nnz) {
  for (std::size_t j = 0; j < nnz; ++j) {
    if (indices[j] >= dim_ || (j > 0 && indices[j] <= indices[j - 1])) {
      throw std::invalid_argument(
          "SparseRows: indices must be strictly increasing and < dim");
    }
  }
  indices_.insert(indices_.end(), indices, indices + nnz);
  values_.insert(values_.end(), values, values + nnz);
  rowptr_.push_back(values_.size());
}

void SparseRows::push_dense_row(const double* values, std::size_t dim) {
  if (dim != dim_) {
    throw std::invalid_argument("SparseRows: dense row dimension mismatch");
  }
  for (std::size_t j = 0; j < dim; ++j) {
    if (values[j] != 0.0) {
      indices_.push_back(static_cast<std::uint32_t>(j));
      values_.push_back(values[j]);
    }
  }
  rowptr_.push_back(values_.size());
}

void SparseRows::decode_row_into(std::size_t i, double* out) const {
  std::fill(out, out + dim_, 0.0);
  const std::uint32_t* idx = row_indices(i);
  const double* val = row_values(i);
  for (std::size_t j = 0; j < row_nnz(i); ++j) out[idx[j]] = val[j];
}

SparseColumns::SparseColumns(const SparseRows& rows) {
  const std::size_t dim = rows.dim();
  const std::size_t m = rows.rows();
  colptr_.assign(dim + 1, 0);
  rows_.resize(rows.nnz());
  values_.resize(rows.nnz());
  // Counting sort by column: count, prefix-sum, scatter.  Scattering rows
  // in increasing row order fills each column's slice in increasing row
  // order, which the SpGEMM kernel's >= i lower bound relies on.
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t* idx = rows.row_indices(i);
    const std::size_t nnz = rows.row_nnz(i);
    for (std::size_t j = 0; j < nnz; ++j) ++colptr_[idx[j] + 1];
  }
  for (std::size_t k = 0; k < dim; ++k) colptr_[k + 1] += colptr_[k];
  std::vector<std::size_t> cursor(colptr_.begin(), colptr_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t* idx = rows.row_indices(i);
    const double* val = rows.row_values(i);
    const std::size_t nnz = rows.row_nnz(i);
    for (std::size_t j = 0; j < nnz; ++j) {
      const std::size_t at = cursor[idx[j]]++;
      rows_[at] = static_cast<std::uint32_t>(i);
      values_[at] = val[j];
    }
  }
}

}  // namespace bcl
