#include "linalg/sparse_rows.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcl {

double SparseRows::density() const {
  const std::size_t dense = rows() * dim_;
  if (dense == 0) return 1.0;
  return static_cast<double>(nnz()) / static_cast<double>(dense);
}

void SparseRows::push_row(const std::uint32_t* indices, const double* values,
                          std::size_t nnz) {
  for (std::size_t j = 0; j < nnz; ++j) {
    if (indices[j] >= dim_ || (j > 0 && indices[j] <= indices[j - 1])) {
      throw std::invalid_argument(
          "SparseRows: indices must be strictly increasing and < dim");
    }
  }
  indices_.insert(indices_.end(), indices, indices + nnz);
  values_.insert(values_.end(), values, values + nnz);
  rowptr_.push_back(values_.size());
}

void SparseRows::push_dense_row(const double* values, std::size_t dim) {
  if (dim != dim_) {
    throw std::invalid_argument("SparseRows: dense row dimension mismatch");
  }
  for (std::size_t j = 0; j < dim; ++j) {
    if (values[j] != 0.0) {
      indices_.push_back(static_cast<std::uint32_t>(j));
      values_.push_back(values[j]);
    }
  }
  rowptr_.push_back(values_.size());
}

void SparseRows::decode_row_into(std::size_t i, double* out) const {
  std::fill(out, out + dim_, 0.0);
  const std::uint32_t* idx = row_indices(i);
  const double* val = row_values(i);
  for (std::size_t j = 0; j < row_nnz(i); ++j) out[idx[j]] = val[j];
}

}  // namespace bcl
