#include "ml/dense.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "linalg/kernels.hpp"

namespace bcl::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_(in_features * out_features, 0.0),
      bias_(out_features, 0.0),
      grad_weight_(in_features * out_features, 0.0),
      grad_bias_(out_features, 0.0) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

void Dense::initialize(Rng& rng) {
  // Glorot / Xavier uniform: U(-limit, limit) with limit = sqrt(6/(in+out)).
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (double& w : weight_) w = rng.uniform(-limit, limit);
  for (double& b : bias_) b = 0.0;
  weight_t_valid_ = false;
}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [N, in] input");
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor output({batch, out_});
  // y = b + x W: each y[n][o] is bias plus one dot against W^T row o; the
  // cached transpose makes the weight rows contiguous for the multi-row
  // dot kernel.
  if (!weight_t_valid_) {
    weight_t_.resize(out_ * in_);
    for (std::size_t i = 0; i < in_; ++i) {
      for (std::size_t o = 0; o < out_; ++o) {
        weight_t_[o * in_ + i] = weight_[i * out_ + o];
      }
    }
    weight_t_valid_ = true;
  }
  for (std::size_t n = 0; n < batch; ++n) {
    double* y = output.data() + n * out_;
    for (std::size_t o = 0; o < out_; ++o) y[o] = bias_[o];
  }
  // Output-row blocks outer, samples inner: a block of W^T rows stays
  // cache-resident while the whole batch sweeps it, so the weights stream
  // from memory once per batch instead of once per sample.
  constexpr std::size_t kOutBlock = 8;
  for (std::size_t o0 = 0; o0 < out_; o0 += kOutBlock) {
    const std::size_t ow = std::min(kOutBlock, out_ - o0);
    const double* wt = weight_t_.data() + o0 * in_;
    for (std::size_t n = 0; n < batch; ++n) {
      kernels::dot_rows(input.data() + n * in_, wt, ow, in_,
                        output.data() + n * out_ + o0);
    }
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: expected [N, out] grad");
  }
  const std::size_t batch = grad_output.dim(0);
  if (cached_input_.size() != batch * in_) {
    throw std::logic_error("Dense::backward: no matching forward pass");
  }
  // grad_bias += column sums of gy (ascending batch index per output,
  // exactly the legacy order).
  kernels::col_sum(grad_output.data(), batch, out_, grad_bias_.data());

  // Same blocking as forward: weight rows (and grad-weight rows) stay
  // cache-resident while the batch sweeps them.
  Tensor grad_input({batch, in_});
  constexpr std::size_t kInBlock = 8;
  for (std::size_t i0 = 0; i0 < in_; i0 += kInBlock) {
    const std::size_t iw = std::min(kInBlock, in_ - i0);
    for (std::size_t n = 0; n < batch; ++n) {
      // gx[n][i] = gy[n] . W_i: the stored [in, out] rows are already
      // contiguous for the multi-row dot kernel.
      kernels::dot_rows(grad_output.data() + n * out_,
                        weight_.data() + i0 * out_, iw, out_,
                        grad_input.data() + n * in_ + i0);
    }
    // gW_i += x[n][i] * gy[n]: outer product, ascending n per entry —
    // exactly the legacy accumulation order.
    for (std::size_t i = i0; i < i0 + iw; ++i) {
      double* gw = grad_weight_.data() + i * out_;
      for (std::size_t n = 0; n < batch; ++n) {
        kernels::axpy(gw, cached_input_.data()[n * in_ + i],
                      grad_output.data() + n * out_, out_);
      }
    }
  }
  return grad_input;
}

void Dense::read_parameters(double* dst) const {
  std::memcpy(dst, weight_.data(), weight_.size() * sizeof(double));
  std::memcpy(dst + weight_.size(), bias_.data(), bias_.size() * sizeof(double));
}

void Dense::write_parameters(const double* src) {
  std::memcpy(weight_.data(), src, weight_.size() * sizeof(double));
  std::memcpy(bias_.data(), src + weight_.size(), bias_.size() * sizeof(double));
  weight_t_valid_ = false;
}

void Dense::read_gradients(double* dst) const {
  std::memcpy(dst, grad_weight_.data(), grad_weight_.size() * sizeof(double));
  std::memcpy(dst + grad_weight_.size(), grad_bias_.data(),
              grad_bias_.size() * sizeof(double));
}

void Dense::zero_gradients() {
  std::fill(grad_weight_.begin(), grad_weight_.end(), 0.0);
  std::fill(grad_bias_.begin(), grad_bias_.end(), 0.0);
}

}  // namespace bcl::ml
