#include "ml/dense.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace bcl::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_(in_features * out_features, 0.0),
      bias_(out_features, 0.0),
      grad_weight_(in_features * out_features, 0.0),
      grad_bias_(out_features, 0.0) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

void Dense::initialize(Rng& rng) {
  // Glorot / Xavier uniform: U(-limit, limit) with limit = sqrt(6/(in+out)).
  const double limit = std::sqrt(6.0 / static_cast<double>(in_ + out_));
  for (double& w : weight_) w = rng.uniform(-limit, limit);
  for (double& b : bias_) b = 0.0;
}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [N, in] input");
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor output({batch, out_});
  for (std::size_t n = 0; n < batch; ++n) {
    const double* x = input.data() + n * in_;
    double* y = output.data() + n * out_;
    for (std::size_t o = 0; o < out_; ++o) y[o] = bias_[o];
    for (std::size_t i = 0; i < in_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      const double* wrow = weight_.data() + i * out_;
      for (std::size_t o = 0; o < out_; ++o) y[o] += xi * wrow[o];
    }
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: expected [N, out] grad");
  }
  const std::size_t batch = grad_output.dim(0);
  if (cached_input_.size() != batch * in_) {
    throw std::logic_error("Dense::backward: no matching forward pass");
  }
  Tensor grad_input({batch, in_});
  for (std::size_t n = 0; n < batch; ++n) {
    const double* x = cached_input_.data() + n * in_;
    const double* gy = grad_output.data() + n * out_;
    double* gx = grad_input.data() + n * in_;
    for (std::size_t o = 0; o < out_; ++o) grad_bias_[o] += gy[o];
    for (std::size_t i = 0; i < in_; ++i) {
      const double xi = x[i];
      double* gw = grad_weight_.data() + i * out_;
      const double* wrow = weight_.data() + i * out_;
      double acc = 0.0;
      for (std::size_t o = 0; o < out_; ++o) {
        gw[o] += xi * gy[o];
        acc += wrow[o] * gy[o];
      }
      gx[i] = acc;
    }
  }
  return grad_input;
}

void Dense::read_parameters(double* dst) const {
  std::memcpy(dst, weight_.data(), weight_.size() * sizeof(double));
  std::memcpy(dst + weight_.size(), bias_.data(), bias_.size() * sizeof(double));
}

void Dense::write_parameters(const double* src) {
  std::memcpy(weight_.data(), src, weight_.size() * sizeof(double));
  std::memcpy(bias_.data(), src + weight_.size(), bias_.size() * sizeof(double));
}

void Dense::read_gradients(double* dst) const {
  std::memcpy(dst, grad_weight_.data(), grad_weight_.size() * sizeof(double));
  std::memcpy(dst + grad_weight_.size(), grad_bias_.data(),
              grad_bias_.size() * sizeof(double));
}

void Dense::zero_gradients() {
  std::fill(grad_weight_.begin(), grad_weight_.end(), 0.0);
  std::fill(grad_bias_.begin(), grad_bias_.end(), 0.0);
}

}  // namespace bcl::ml
