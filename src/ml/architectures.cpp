#include "ml/architectures.hpp"

#include <memory>
#include <stdexcept>

#include "ml/activations.hpp"
#include "ml/conv2d.hpp"
#include "ml/dense.hpp"
#include "ml/pooling.hpp"
#include "ml/reshape.hpp"

namespace bcl::ml {

Model make_mlp(std::size_t input_dim, std::size_t hidden1,
               std::size_t hidden2, std::size_t num_classes) {
  Model model;
  model.add(std::make_unique<Dense>(input_dim, hidden1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(hidden1, hidden2))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(hidden2, num_classes));
  return model;
}

Model make_cifarnet(std::size_t channels, std::size_t height,
                    std::size_t width, std::size_t num_classes,
                    std::size_t width1, std::size_t width2, std::size_t fc) {
  if (height % 4 != 0 || width % 4 != 0) {
    throw std::invalid_argument(
        "make_cifarnet: spatial dims must be divisible by 4");
  }
  Model model;
  model.add(std::make_unique<Reshape>(
          std::vector<std::size_t>{channels, height, width}))
      .add(std::make_unique<Conv2D>(channels, width1, 5, 2))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Conv2D>(width1, width2, 5, 2))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(width2 * (height / 4) * (width / 4), fc))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(fc, num_classes));
  return model;
}

Model make_linear(std::size_t input_dim, std::size_t num_classes) {
  Model model;
  model.add(std::make_unique<Dense>(input_dim, num_classes));
  return model;
}

}  // namespace bcl::ml
