#pragma once
// SGD update and the paper's learning-rate schedule.
//
// The evaluation uses eta = 0.01 decayed over *global* communication rounds
// (following Zhao et al.): lr(round) = eta / (1 + decay * round) with
// decay = eta / total_rounds (Section 5.1).

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace bcl::ml {

/// Learning-rate schedule decaying over the global round index.
class LearningRateSchedule {
 public:
  /// `initial` is eta; `decay` the per-round decay constant.  decay == 0
  /// gives a constant rate.
  LearningRateSchedule(double initial, double decay)
      : initial_(initial), decay_(decay) {}

  /// The paper's configuration: eta = 0.01, decay = eta / total_rounds.
  static LearningRateSchedule paper_default(std::size_t total_rounds);

  double rate(std::size_t round) const {
    return initial_ / (1.0 + decay_ * static_cast<double>(round));
  }

  double initial() const { return initial_; }

 private:
  double initial_;
  double decay_;
};

/// In-place SGD step: theta -= lr * gradient.
void sgd_step(Vector& theta, const Vector& gradient, double learning_rate);

}  // namespace bcl::ml
