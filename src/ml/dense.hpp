#pragma once
// Fully connected layer: y = x W + b, with x [N, in], W [in, out], b [out].
//
// The dot-shaped products (forward activations and grad-input) run on the
// shared two-chain SIMD kernel (kernels::dot_rows, the same arithmetic as
// the Gram-trick distance build): deterministic and reproducible, agreeing
// with the historical per-row loops to rounding (exactly on
// exactly-representable inputs).  The outer-product updates (grad-weight,
// grad-bias) keep the historical accumulation order via kernels::axpy /
// col_sum and are bitwise identical.  The parameter layout (row-major
// [in, out] plus bias) is unchanged, so checkpoints round-trip.

#include "ml/layer.hpp"

namespace bcl::ml {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  std::string name() const override { return "Dense"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::size_t parameter_count() const override {
    return in_ * out_ + out_;
  }
  void read_parameters(double* dst) const override;
  void write_parameters(const double* src) override;
  void read_gradients(double* dst) const override;
  void zero_gradients() override;

  /// Glorot-uniform weights, zero bias.
  void initialize(Rng& rng) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::vector<double> weight_;       // [in, out], row-major
  std::vector<double> bias_;         // [out]
  std::vector<double> grad_weight_;  // accumulated over the batch
  std::vector<double> grad_bias_;
  Tensor cached_input_;
  // W^T [out, in], rebuilt lazily after a weight mutation so forward's
  // contiguous row sweeps do not pay a transpose per call.
  std::vector<double> weight_t_;
  bool weight_t_valid_ = false;
};

}  // namespace bcl::ml
