#include "ml/model.hpp"

#include <stdexcept>

namespace bcl::ml {

Model& Model::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Model::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

std::size_t Model::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  return total;
}

void Model::initialize(Rng& rng) {
  for (auto& layer : layers_) layer->initialize(rng);
}

Vector Model::parameters() const {
  Vector theta(parameter_count());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    layer->read_parameters(theta.data() + offset);
    offset += layer->parameter_count();
  }
  return theta;
}

void Model::set_parameters(const Vector& theta) {
  if (theta.size() != parameter_count()) {
    throw std::invalid_argument("Model::set_parameters: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    layer->write_parameters(theta.data() + offset);
    offset += layer->parameter_count();
  }
}

Vector Model::gradients() const {
  Vector grad(parameter_count());
  read_gradients(grad.data());
  return grad;
}

void Model::read_gradients(double* dst) const {
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    layer->read_gradients(dst + offset);
    offset += layer->parameter_count();
  }
}

void Model::zero_gradients() {
  for (auto& layer : layers_) layer->zero_gradients();
}

Tensor Model::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

void Model::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

double Model::compute_loss_and_gradient(
    const Tensor& batch, const std::vector<std::uint8_t>& labels) {
  zero_gradients();
  const Tensor logits = forward(batch);
  LossResult loss = softmax_cross_entropy(logits, labels);
  backward(loss.grad_logits);
  return loss.loss;
}

double Model::compute_loss(const Tensor& batch,
                           const std::vector<std::uint8_t>& labels) {
  const Tensor logits = forward(batch);
  return softmax_cross_entropy(logits, labels).loss;
}

double Model::accuracy(const Tensor& batch,
                       const std::vector<std::uint8_t>& labels) {
  const Tensor logits = forward(batch);
  const auto predictions = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return predictions.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(predictions.size());
}

}  // namespace bcl::ml
