#include "ml/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcl::ml {

std::size_t shape_volume(const std::vector<std::size_t>& shape) {
  std::size_t volume = 1;
  for (std::size_t extent : shape) volume *= extent;
  return shape.empty() ? 0 : volume;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_volume(shape_), 0.0) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_volume(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw std::out_of_range("Tensor::dim: axis out of range");
  }
  return shape_[axis];
}

double& Tensor::at2(std::size_t row, std::size_t col) {
  return data_[row * shape_[1] + col];
}

double Tensor::at2(std::size_t row, std::size_t col) const {
  return data_[row * shape_[1] + col];
}

double& Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                    std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

double Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_volume(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: volume mismatch");
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace bcl::ml
