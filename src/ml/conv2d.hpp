#pragma once
// 2-D convolution layer (stride 1, symmetric zero padding), the workhorse of
// the CifarNet architecture used for the Figure 2b experiment.
//
// Input [N, C_in, H, W], kernel [C_out, C_in, K, K], output
// [N, C_out, H_out, W_out] with H_out = H + 2*pad - K + 1.

#include "ml/layer.hpp"

namespace bcl::ml {

class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t padding = 0);

  std::string name() const override { return "Conv2D"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::size_t parameter_count() const override {
    return out_c_ * in_c_ * k_ * k_ + out_c_;
  }
  void read_parameters(double* dst) const override;
  void write_parameters(const double* src) override;
  void read_gradients(double* dst) const override;
  void zero_gradients() override;
  void initialize(Rng& rng) override;

 private:
  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t k_;
  std::size_t pad_;
  std::vector<double> weight_;       // [out_c, in_c, k, k]
  std::vector<double> bias_;         // [out_c]
  std::vector<double> grad_weight_;
  std::vector<double> grad_bias_;
  Tensor cached_input_;
};

}  // namespace bcl::ml
