#pragma once
// 2-D convolution layer (stride 1, symmetric zero padding), the workhorse of
// the CifarNet architecture used for the Figure 2b experiment.
//
// Input [N, C_in, H, W], kernel [C_out, C_in, K, K], output
// [N, C_out, H_out, W_out] with H_out = H + 2*pad - K + 1.
//
// Two execution modes share one weight layout:
//  - Im2col (default): patches are lowered to a row-major matrix and the
//    forward/backward products run on the shared register-blocked gemm
//    (kernels::matmul_abt), which replaces the six-deep scalar loop nest
//    with cache-blocked streaming over contiguous buffers.  Because the
//    gemm accumulates each output entry sequentially over the patch in the
//    same (C_in, kh, kw) order the direct loops use, forward outputs are
//    bitwise identical to Direct mode (zero-padding contributes exact
//    +-0.0 terms).
//  - Direct: the original loop nest, kept as the reference implementation
//    the equivalence tests compare against.

#include "ml/layer.hpp"

namespace bcl::ml {

class Conv2D final : public Layer {
 public:
  /// Execution mode; Im2col is the fast default, Direct the reference.
  enum class Mode { Im2col, Direct };

  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t padding = 0,
         Mode mode = Mode::Im2col);

  std::string name() const override { return "Conv2D"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::size_t parameter_count() const override {
    return out_c_ * in_c_ * k_ * k_ + out_c_;
  }
  void read_parameters(double* dst) const override;
  void write_parameters(const double* src) override;
  void read_gradients(double* dst) const override;
  void zero_gradients() override;
  void initialize(Rng& rng) override;

  Mode mode() const { return mode_; }

 private:
  Tensor forward_direct(const Tensor& input);
  Tensor forward_im2col(const Tensor& input);
  Tensor backward_direct(const Tensor& grad_output);
  Tensor backward_im2col(const Tensor& grad_output);

  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t k_;
  std::size_t pad_;
  Mode mode_;
  std::vector<double> weight_;       // [out_c, in_c, k, k]
  std::vector<double> bias_;         // [out_c]
  std::vector<double> grad_weight_;
  std::vector<double> grad_bias_;
  Tensor cached_input_;
};

}  // namespace bcl::ml
