#pragma once
// Loader for the IDX binary format (the distribution format of MNIST), so
// users with local copies of the real datasets can swap them in for the
// synthetic substitutes: load_idx_dataset("train-images-idx3-ubyte",
// "train-labels-idx1-ubyte").
//
// Format (big-endian): magic 0x00000803 (ubyte, rank 3) for images with
// dims [count, rows, cols]; magic 0x00000801 (ubyte, rank 1) for labels.
// Pixels are scaled to [0, 1].

#include <string>

#include "ml/dataset.hpp"

namespace bcl::ml {

/// Parses IDX image + label byte buffers into a Dataset (grayscale,
/// channels = 1).  Throws std::runtime_error on malformed input or a
/// count mismatch between the two files.
Dataset parse_idx(const std::string& image_bytes,
                  const std::string& label_bytes);

/// Reads the two IDX files from disk and parses them.
Dataset load_idx_dataset(const std::string& image_path,
                         const std::string& label_path);

/// Serializes a (grayscale) Dataset back to IDX byte buffers — used by
/// round-trip tests and to export synthetic data for external tooling.
struct IdxBytes {
  std::string images;
  std::string labels;
};
IdxBytes to_idx(const Dataset& dataset);

}  // namespace bcl::ml
