#include "ml/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "linalg/kernels.hpp"

namespace bcl::ml {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t padding, Mode mode)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel_size),
      pad_(padding),
      mode_(mode),
      weight_(out_channels * in_channels * kernel_size * kernel_size, 0.0),
      bias_(out_channels, 0.0),
      grad_weight_(weight_.size(), 0.0),
      grad_bias_(out_channels, 0.0) {
  if (in_c_ == 0 || out_c_ == 0 || k_ == 0) {
    throw std::invalid_argument("Conv2D: zero-sized layer");
  }
}

void Conv2D::initialize(Rng& rng) {
  // He-style fan-in scaling suits the following ReLU.
  const double fan_in = static_cast<double>(in_c_ * k_ * k_);
  const double limit = std::sqrt(6.0 / fan_in);
  for (double& w : weight_) w = rng.uniform(-limit, limit);
  for (double& b : bias_) b = 0.0;
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2D::forward: expected [N, C_in, H, W]");
  }
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  if (h + 2 * pad_ < k_ || w + 2 * pad_ < k_) {
    throw std::invalid_argument("Conv2D::forward: kernel larger than input");
  }
  cached_input_ = input;
  return mode_ == Mode::Im2col ? forward_im2col(input)
                               : forward_direct(input);
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.rank() != 4) {
    throw std::logic_error("Conv2D::backward: no matching forward pass");
  }
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_c_ || grad_output.dim(2) != out_h ||
      grad_output.dim(3) != out_w) {
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  }
  return mode_ == Mode::Im2col ? backward_im2col(grad_output)
                               : backward_direct(grad_output);
}

// --- im2col path -----------------------------------------------------------
//
// Forward lowers each sample to a patch matrix P [npos x ckk] (row p =
// output position (oh, ow), column c = (ic, kh, kw), zero-filled where the
// receptive field leaves the padded input) and computes the whole sample as
// one gemm: out = bias + W * P^T with W [out_c x ckk].  The gemm accumulates
// each output entry sequentially over the patch in the same (ic, kh, kw)
// order as the direct loop nest, starting from the bias, so the result is
// bitwise identical to Direct mode.
//
// Backward rebuilds the patches transposed (Pt [ckk x npos]) and reuses the
// same kernel for both products:
//   grad_W   += GY * Pt^T            (GY [out_c x npos])
//   grad_P    = GY^T * W             (via transposes, then col2im scatter)

Tensor Conv2D::forward_im2col(const Tensor& input) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  const std::size_t npos = out_h * out_w;
  const std::size_t ckk = in_c_ * k_ * k_;

  Tensor output({batch, out_c_, out_h, out_w});
  std::vector<double> patches(npos * ckk);
  for (std::size_t n = 0; n < batch; ++n) {
    // Lower sample n: row p of `patches` is the receptive field at output
    // position p in (ic, kh, kw) order.
    std::fill(patches.begin(), patches.end(), 0.0);
    for (std::size_t oh = 0; oh < out_h; ++oh) {
      for (std::size_t ow = 0; ow < out_w; ++ow) {
        double* patch = patches.data() + (oh * out_w + ow) * ckk;
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t kh = 0; kh < k_; ++kh) {
            const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kw = 0; kw < k_; ++kw) {
              const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow + kw) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
              patch[(ic * k_ + kh) * k_ + kw] =
                  input.at4(n, ic, static_cast<std::size_t>(ih),
                            static_cast<std::size_t>(iw));
            }
          }
        }
      }
    }
    // Sample slab [out_c x npos] is contiguous in the output tensor.
    double* out = output.data() + n * out_c_ * npos;
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      std::fill(out + oc * npos, out + (oc + 1) * npos, bias_[oc]);
    }
    kernels::matmul_abt(weight_.data(), out_c_, patches.data(), npos, ckk,
                        out, npos);
  }
  return output;
}

Tensor Conv2D::backward_im2col(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  const std::size_t npos = out_h * out_w;
  const std::size_t ckk = in_c_ * k_ * k_;

  // W^T [ckk x out_c], shared by every sample's grad-input product.
  std::vector<double> weight_t(ckk * out_c_);
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t c = 0; c < ckk; ++c) {
      weight_t[c * out_c_ + oc] = weight_[oc * ckk + c];
    }
  }

  Tensor grad_input({batch, in_c_, h, w});
  std::vector<double> patches_t(ckk * npos);  // Pt [ckk x npos]
  std::vector<double> gy_t(npos * out_c_);    // GY^T [npos x out_c]
  std::vector<double> grad_cols(npos * ckk);  // grad of P [npos x ckk]
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gy = grad_output.data() + n * out_c_ * npos;

    // grad_bias[oc] += sum over positions.
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      double s = 0.0;
      const double* row = gy + oc * npos;
      for (std::size_t p = 0; p < npos; ++p) s += row[p];
      grad_bias_[oc] += s;
    }

    // Transposed im2col of sample n: Pt[c][p].
    std::fill(patches_t.begin(), patches_t.end(), 0.0);
    for (std::size_t ic = 0; ic < in_c_; ++ic) {
      for (std::size_t kh = 0; kh < k_; ++kh) {
        for (std::size_t kw = 0; kw < k_; ++kw) {
          double* prow = patches_t.data() + ((ic * k_ + kh) * k_ + kw) * npos;
          for (std::size_t oh = 0; oh < out_h; ++oh) {
            const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t ow = 0; ow < out_w; ++ow) {
              const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow + kw) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
              prow[oh * out_w + ow] =
                  cached_input_.at4(n, ic, static_cast<std::size_t>(ih),
                                    static_cast<std::size_t>(iw));
            }
          }
        }
      }
    }

    // grad_W += GY * Pt^T  (accumulates across samples and backward calls).
    kernels::matmul_abt(gy, out_c_, patches_t.data(), ckk, npos,
                        grad_weight_.data(), ckk);

    // grad_P = GY^T * W, then col2im scatter-add into grad_input.
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t p = 0; p < npos; ++p) {
        gy_t[p * out_c_ + oc] = gy[oc * npos + p];
      }
    }
    std::fill(grad_cols.begin(), grad_cols.end(), 0.0);
    kernels::matmul_abt(gy_t.data(), npos, weight_t.data(), ckk, out_c_,
                        grad_cols.data(), ckk);
    for (std::size_t oh = 0; oh < out_h; ++oh) {
      for (std::size_t ow = 0; ow < out_w; ++ow) {
        const double* col = grad_cols.data() + (oh * out_w + ow) * ckk;
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t kh = 0; kh < k_; ++kh) {
            const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kw = 0; kw < k_; ++kw) {
              const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow + kw) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
              grad_input.at4(n, ic, static_cast<std::size_t>(ih),
                             static_cast<std::size_t>(iw)) +=
                  col[(ic * k_ + kh) * k_ + kw];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// --- direct path (reference) ----------------------------------------------

Tensor Conv2D::forward_direct(const Tensor& input) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  Tensor output({batch, out_c_, out_h, out_w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          double acc = bias_[oc];
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            for (std::size_t kh = 0; kh < k_; ++kh) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh + kh) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kw = 0; kw < k_; ++kw) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow + kw) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += weight_[((oc * in_c_ + ic) * k_ + kh) * k_ + kw] *
                       input.at4(n, ic, static_cast<std::size_t>(ih),
                                 static_cast<std::size_t>(iw));
              }
            }
          }
          output.at4(n, oc, oh, ow) = acc;
        }
      }
    }
  }
  return output;
}

Tensor Conv2D::backward_direct(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  Tensor grad_input({batch, in_c_, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          const double gy = grad_output.at4(n, oc, oh, ow);
          if (gy == 0.0) continue;
          grad_bias_[oc] += gy;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            for (std::size_t kh = 0; kh < k_; ++kh) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh + kh) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kw = 0; kw < k_; ++kw) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow + kw) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t widx =
                    ((oc * in_c_ + ic) * k_ + kh) * k_ + kw;
                grad_weight_[widx] +=
                    gy * cached_input_.at4(n, ic, static_cast<std::size_t>(ih),
                                           static_cast<std::size_t>(iw));
                grad_input.at4(n, ic, static_cast<std::size_t>(ih),
                               static_cast<std::size_t>(iw)) +=
                    gy * weight_[widx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2D::read_parameters(double* dst) const {
  std::memcpy(dst, weight_.data(), weight_.size() * sizeof(double));
  std::memcpy(dst + weight_.size(), bias_.data(), bias_.size() * sizeof(double));
}

void Conv2D::write_parameters(const double* src) {
  std::memcpy(weight_.data(), src, weight_.size() * sizeof(double));
  std::memcpy(bias_.data(), src + weight_.size(), bias_.size() * sizeof(double));
}

void Conv2D::read_gradients(double* dst) const {
  std::memcpy(dst, grad_weight_.data(), grad_weight_.size() * sizeof(double));
  std::memcpy(dst + grad_weight_.size(), grad_bias_.data(),
              grad_bias_.size() * sizeof(double));
}

void Conv2D::zero_gradients() {
  std::fill(grad_weight_.begin(), grad_weight_.end(), 0.0);
  std::fill(grad_bias_.begin(), grad_bias_.end(), 0.0);
}

}  // namespace bcl::ml
