#include "ml/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace bcl::ml {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t padding)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel_size),
      pad_(padding),
      weight_(out_channels * in_channels * kernel_size * kernel_size, 0.0),
      bias_(out_channels, 0.0),
      grad_weight_(weight_.size(), 0.0),
      grad_bias_(out_channels, 0.0) {
  if (in_c_ == 0 || out_c_ == 0 || k_ == 0) {
    throw std::invalid_argument("Conv2D: zero-sized layer");
  }
}

void Conv2D::initialize(Rng& rng) {
  // He-style fan-in scaling suits the following ReLU.
  const double fan_in = static_cast<double>(in_c_ * k_ * k_);
  const double limit = std::sqrt(6.0 / fan_in);
  for (double& w : weight_) w = rng.uniform(-limit, limit);
  for (double& b : bias_) b = 0.0;
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2D::forward: expected [N, C_in, H, W]");
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  if (h + 2 * pad_ < k_ || w + 2 * pad_ < k_) {
    throw std::invalid_argument("Conv2D::forward: kernel larger than input");
  }
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  Tensor output({batch, out_c_, out_h, out_w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          double acc = bias_[oc];
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            for (std::size_t kh = 0; kh < k_; ++kh) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh + kh) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kw = 0; kw < k_; ++kw) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow + kw) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += weight_[((oc * in_c_ + ic) * k_ + kh) * k_ + kw] *
                       input.at4(n, ic, static_cast<std::size_t>(ih),
                                 static_cast<std::size_t>(iw));
              }
            }
          }
          output.at4(n, oc, oh, ow) = acc;
        }
      }
    }
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.rank() != 4) {
    throw std::logic_error("Conv2D::backward: no matching forward pass");
  }
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2);
  const std::size_t w = cached_input_.dim(3);
  const std::size_t out_h = h + 2 * pad_ - k_ + 1;
  const std::size_t out_w = w + 2 * pad_ - k_ + 1;
  if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_c_ || grad_output.dim(2) != out_h ||
      grad_output.dim(3) != out_w) {
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  }
  Tensor grad_input({batch, in_c_, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow) {
          const double gy = grad_output.at4(n, oc, oh, ow);
          if (gy == 0.0) continue;
          grad_bias_[oc] += gy;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            for (std::size_t kh = 0; kh < k_; ++kh) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh + kh) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kw = 0; kw < k_; ++kw) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow + kw) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t widx =
                    ((oc * in_c_ + ic) * k_ + kh) * k_ + kw;
                grad_weight_[widx] +=
                    gy * cached_input_.at4(n, ic, static_cast<std::size_t>(ih),
                                           static_cast<std::size_t>(iw));
                grad_input.at4(n, ic, static_cast<std::size_t>(ih),
                               static_cast<std::size_t>(iw)) +=
                    gy * weight_[widx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2D::read_parameters(double* dst) const {
  std::memcpy(dst, weight_.data(), weight_.size() * sizeof(double));
  std::memcpy(dst + weight_.size(), bias_.data(), bias_.size() * sizeof(double));
}

void Conv2D::write_parameters(const double* src) {
  std::memcpy(weight_.data(), src, weight_.size() * sizeof(double));
  std::memcpy(bias_.data(), src + weight_.size(), bias_.size() * sizeof(double));
}

void Conv2D::read_gradients(double* dst) const {
  std::memcpy(dst, grad_weight_.data(), grad_weight_.size() * sizeof(double));
  std::memcpy(dst + grad_weight_.size(), grad_bias_.data(),
              grad_bias_.size() * sizeof(double));
}

void Conv2D::zero_gradients() {
  std::fill(grad_weight_.begin(), grad_weight_.end(), 0.0);
  std::fill(grad_bias_.begin(), grad_bias_.end(), 0.0);
}

}  // namespace bcl::ml
