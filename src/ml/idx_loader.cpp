#include "ml/idx_loader.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bcl::ml {

namespace {

constexpr std::uint32_t kImageMagic = 0x00000803;  // ubyte, rank 3
constexpr std::uint32_t kLabelMagic = 0x00000801;  // ubyte, rank 1

std::uint32_t read_u32_be(const std::string& bytes, std::size_t offset) {
  if (offset + 4 > bytes.size()) {
    throw std::runtime_error("IDX: truncated header");
  }
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 3]));
}

void append_u32_be(std::string& bytes, std::uint32_t value) {
  bytes.push_back(static_cast<char>((value >> 24) & 0xFF));
  bytes.push_back(static_cast<char>((value >> 16) & 0xFF));
  bytes.push_back(static_cast<char>((value >> 8) & 0xFF));
  bytes.push_back(static_cast<char>(value & 0xFF));
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("IDX: cannot open " + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

Dataset parse_idx(const std::string& image_bytes,
                  const std::string& label_bytes) {
  if (read_u32_be(image_bytes, 0) != kImageMagic) {
    throw std::runtime_error("IDX: bad image magic (want 0x00000803)");
  }
  if (read_u32_be(label_bytes, 0) != kLabelMagic) {
    throw std::runtime_error("IDX: bad label magic (want 0x00000801)");
  }
  const std::size_t count = read_u32_be(image_bytes, 4);
  const std::size_t rows = read_u32_be(image_bytes, 8);
  const std::size_t cols = read_u32_be(image_bytes, 12);
  const std::size_t label_count = read_u32_be(label_bytes, 4);
  if (count != label_count) {
    throw std::runtime_error("IDX: image/label count mismatch");
  }
  const std::size_t pixels = rows * cols;
  if (image_bytes.size() != 16 + count * pixels) {
    throw std::runtime_error("IDX: image payload size mismatch");
  }
  if (label_bytes.size() != 8 + count) {
    throw std::runtime_error("IDX: label payload size mismatch");
  }

  Dataset data;
  data.channels = 1;
  data.height = rows;
  data.width = cols;
  data.images.reserve(count);
  data.labels.reserve(count);
  std::uint8_t max_label = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Vector img(pixels);
    const std::size_t base = 16 + i * pixels;
    for (std::size_t p = 0; p < pixels; ++p) {
      img[p] =
          static_cast<unsigned char>(image_bytes[base + p]) / 255.0;
    }
    data.images.push_back(std::move(img));
    const auto label =
        static_cast<std::uint8_t>(static_cast<unsigned char>(label_bytes[8 + i]));
    max_label = std::max(max_label, label);
    data.labels.push_back(label);
  }
  data.num_classes = static_cast<std::size_t>(max_label) + 1;
  return data;
}

Dataset load_idx_dataset(const std::string& image_path,
                         const std::string& label_path) {
  return parse_idx(read_file(image_path), read_file(label_path));
}

IdxBytes to_idx(const Dataset& dataset) {
  if (dataset.channels != 1) {
    throw std::invalid_argument("to_idx: only grayscale datasets supported");
  }
  IdxBytes out;
  append_u32_be(out.images, kImageMagic);
  append_u32_be(out.images, static_cast<std::uint32_t>(dataset.size()));
  append_u32_be(out.images, static_cast<std::uint32_t>(dataset.height));
  append_u32_be(out.images, static_cast<std::uint32_t>(dataset.width));
  for (const auto& img : dataset.images) {
    for (double v : img) {
      const double clamped = std::clamp(v, 0.0, 1.0);
      out.images.push_back(
          static_cast<char>(std::lround(clamped * 255.0)));
    }
  }
  append_u32_be(out.labels, kLabelMagic);
  append_u32_be(out.labels, static_cast<std::uint32_t>(dataset.size()));
  for (std::uint8_t label : dataset.labels) {
    out.labels.push_back(static_cast<char>(label));
  }
  return out;
}

}  // namespace bcl::ml
