#include "ml/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace bcl::ml {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0) output[i] = 0.0;
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (grad_output.size() != cached_input_.size()) {
    throw std::logic_error("ReLU::backward: no matching forward pass");
  }
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (cached_input_[i] <= 0.0) grad_input[i] = 0.0;
  }
  return grad_input;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    output[i] = std::tanh(output[i]);
  }
  cached_output_ = output;
  return output;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (grad_output.size() != cached_output_.size()) {
    throw std::logic_error("Tanh::backward: no matching forward pass");
  }
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    grad_input[i] *= 1.0 - cached_output_[i] * cached_output_[i];
  }
  return grad_input;
}

}  // namespace bcl::ml
