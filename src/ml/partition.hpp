#pragma once
// Non-i.i.d. data partitioning across clients (Section 5.1).
//
// Three schemes from the paper:
//  - Uniform: every client receives an equal share of every class.
//  - Mild heterogeneity: per class, 8 clients get 10% of the class, one
//    gets 5% and one gets 15% (the under/over-weighted client rotates per
//    class).  Generalized to n clients as shares {low, high, equal...}.
//  - Extreme (2-class) heterogeneity: the dataset is sorted by label and
//    cut into 2n shards; each client receives 2 random shards, hence at
//    most 2 classes.

#include <cstddef>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace bcl::ml {

enum class Heterogeneity { Uniform, Mild, Extreme };

/// Human-readable scheme name for tables ("uniform", "mild", "extreme").
const char* heterogeneity_name(Heterogeneity h);

/// Parses "uniform" / "mild" / "extreme".
Heterogeneity parse_heterogeneity(const std::string& name);

/// Assigns every training example to exactly one client; result[c] holds
/// the example indices of client c.  Deterministic in `rng`.
std::vector<std::vector<std::size_t>> partition_dataset(
    const Dataset& train, std::size_t num_clients, Heterogeneity scheme,
    Rng& rng);

/// Number of distinct labels present in a client's shard.
std::size_t distinct_labels(const Dataset& train,
                            const std::vector<std::size_t>& shard);

}  // namespace bcl::ml
