#pragma once
// Synthetic image classification datasets.
//
// The paper evaluates on MNIST and CIFAR10, which are not available in this
// offline environment; we substitute deterministic synthetic datasets with
// the same shape and the same role in the experiments (see DESIGN.md).
// Each class has a smooth random prototype image (a sum of low-frequency
// cosine waves); samples are the prototype blended toward mid-gray plus
// pixel noise.  `class_separation` and `noise` tune task difficulty so the
// MNIST-like task saturates high (~9x% on an MLP) and the CIFAR-like task
// saturates lower, matching the figures' dynamics.

#include <cstdint>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace bcl::ml {

/// A labelled set of flattened images with values in [0, 1].
struct Dataset {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t num_classes = 0;
  std::vector<Vector> images;        ///< each of size channels*height*width
  std::vector<std::uint8_t> labels;  ///< class index per image

  std::size_t feature_dim() const { return channels * height * width; }
  std::size_t size() const { return images.size(); }

  /// Assembles a flat [N, d] batch from the given example indices.
  Tensor batch(const std::vector<std::size_t>& indices) const;

  /// Labels aligned with batch().
  std::vector<std::uint8_t> batch_labels(
      const std::vector<std::size_t>& indices) const;

  /// Indices of all examples with the given label.
  std::vector<std::size_t> indices_of_class(std::uint8_t label) const;
};

/// Generation parameters.
struct SyntheticSpec {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t num_classes = 10;
  std::size_t train_per_class = 100;
  std::size_t test_per_class = 20;
  /// Standard deviation of per-pixel Gaussian noise.
  double noise = 0.15;
  /// 1.0 keeps prototypes fully distinct; smaller values blend them toward
  /// mid-gray, making the task harder.
  double class_separation = 1.0;
  /// Fraction of every class prototype shared with a common base image.
  /// 0 keeps classes independent; values near 1 make them nearly
  /// indistinguishable (the CIFAR-like hardness knob).
  double class_overlap = 0.0;
  std::uint64_t seed = 42;

  /// MNIST-like: 28x28 grayscale, easily separable.
  static SyntheticSpec mnist_like(std::uint64_t seed = 42);
  /// Reduced-resolution MNIST-like profile for fast benchmarks.
  static SyntheticSpec mnist_small(std::uint64_t seed = 42);
  /// CIFAR-like: 32x32x3, noisier and less separable.
  static SyntheticSpec cifar_like(std::uint64_t seed = 43);
  /// Reduced CIFAR-like profile (16x16x3).
  static SyntheticSpec cifar_small(std::uint64_t seed = 43);
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generates a train/test pair.  Fully deterministic in spec.seed.
TrainTestSplit make_synthetic_dataset(const SyntheticSpec& spec);

}  // namespace bcl::ml
