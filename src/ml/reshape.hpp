#pragma once
// Shape adapters: Flatten ([N, ...] -> [N, features]) and Reshape
// ([N, features] -> [N, ...]).  The dataset hands batches to models as flat
// [N, d] tensors; convolutional models start with a Reshape.

#include "ml/layer.hpp"

namespace bcl::ml {

class Flatten final : public Layer {
 public:
  std::string name() const override { return "Flatten"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::vector<std::size_t> input_shape_;
};

class Reshape final : public Layer {
 public:
  /// `per_example_shape` excludes the batch dimension, e.g. {3, 32, 32}.
  explicit Reshape(std::vector<std::size_t> per_example_shape);
  std::string name() const override { return "Reshape"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::vector<std::size_t> per_example_shape_;
  std::vector<std::size_t> input_shape_;
};

}  // namespace bcl::ml
