#pragma once
// Layer interface of the sequential neural-network substrate.
//
// Layers own their parameters and per-batch gradient accumulators, exposed
// through a flat read/write interface so the whole model's parameters and
// gradients can be (de)serialized into the single flat vectors the
// aggregation rules operate on.

#include <cstddef>
#include <string>

#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace bcl::ml {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Forward pass.  Layers cache whatever they need for backward();
  /// forward()/backward() pairs must not interleave across batches.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backward pass: receives dLoss/dOutput, accumulates parameter
  /// gradients, returns dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Number of trainable scalars (0 for activations / pooling).
  virtual std::size_t parameter_count() const { return 0; }

  /// Copies parameters into dst[0..parameter_count()).
  virtual void read_parameters(double* dst) const { (void)dst; }

  /// Overwrites parameters from src[0..parameter_count()).
  virtual void write_parameters(const double* src) { (void)src; }

  /// Copies accumulated gradients into dst[0..parameter_count()).
  virtual void read_gradients(double* dst) const { (void)dst; }

  /// Clears the gradient accumulators.
  virtual void zero_gradients() {}

  /// Re-initializes parameters (layers with none ignore this).
  virtual void initialize(Rng& rng) { (void)rng; }
};

}  // namespace bcl::ml
