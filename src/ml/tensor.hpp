#pragma once
// Dense row-major tensor used by the neural-network substrate.
//
// Shapes follow the batch-major convention: [N, features] for dense layers,
// [N, C, H, W] for convolutional layers.  Storage is double precision so
// that analytic gradients can be validated against central finite
// differences to tight tolerances in the test suite.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace bcl::ml {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Tensor with explicit contents; data.size() must match the shape volume.
  Tensor(std::vector<std::size_t> shape, std::vector<double> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  double& operator[](std::size_t flat_index) { return data_[flat_index]; }
  double operator[](std::size_t flat_index) const { return data_[flat_index]; }

  /// 2-D accessors (dense layers): element (row, col) of an [R, C] tensor.
  double& at2(std::size_t row, std::size_t col);
  double at2(std::size_t row, std::size_t col) const;

  /// 4-D accessors (conv layers): element (n, c, h, w) of an [N, C, H, W]
  /// tensor.
  double& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  double at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterprets the tensor with a new shape of identical volume.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(double value);

 private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

/// Product of the shape extents.
std::size_t shape_volume(const std::vector<std::size_t>& shape);

}  // namespace bcl::ml
