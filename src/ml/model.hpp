#pragma once
// Sequential model with a flat parameter/gradient vector interface.
//
// The collaborative-learning layer treats a model as a point theta in R^d
// and a gradient as a vector in R^d (Section 2.1): Model bridges the layer
// stack and that flat view, so aggregation rules stay oblivious to the
// architecture.

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "ml/layer.hpp"
#include "ml/loss.hpp"

namespace bcl::ml {

class Model {
 public:
  Model() = default;

  /// Appends a layer (builder style).
  Model& add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }

  /// Total trainable parameter count d.
  std::size_t parameter_count() const;

  /// Initializes all layers from the rng (deterministic per seed).
  void initialize(Rng& rng);

  /// Flat parameter vector theta in layer order.
  Vector parameters() const;

  /// Overwrites all parameters from a flat vector (size must equal
  /// parameter_count()).
  void set_parameters(const Vector& theta);

  /// Flat gradient accumulated by the last backward pass.
  Vector gradients() const;

  /// Writes the flat gradient into dst[0..parameter_count()) — the
  /// zero-intermediate path clients use to deposit gradients directly into
  /// a shared GradientBatch row.
  void read_gradients(double* dst) const;

  void zero_gradients();

  /// Forward pass through all layers.
  Tensor forward(const Tensor& input);

  /// Backward pass from dLoss/dOutput.
  void backward(const Tensor& grad_output);

  /// One-shot loss + gradient on a batch: zeroes gradients, runs forward,
  /// softmax cross-entropy, backward; returns the mean loss.  Afterwards
  /// gradients() holds dLoss/dtheta.
  double compute_loss_and_gradient(const Tensor& batch,
                                   const std::vector<std::uint8_t>& labels);

  /// Mean loss without touching gradients.
  double compute_loss(const Tensor& batch,
                      const std::vector<std::uint8_t>& labels);

  /// Fraction of correctly classified rows.
  double accuracy(const Tensor& batch, const std::vector<std::uint8_t>& labels);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace bcl::ml
