#pragma once
// Elementwise activation layers.

#include "ml/layer.hpp"

namespace bcl::ml {

/// max(0, x).
class ReLU final : public Layer {
 public:
  std::string name() const override { return "ReLU"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

/// tanh(x); used by the smaller test models where a smooth activation makes
/// finite-difference gradient checks tighter.
class Tanh final : public Layer {
 public:
  std::string name() const override { return "Tanh"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

}  // namespace bcl::ml
