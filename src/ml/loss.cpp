#include "ml/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl::ml {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected [N, K] logits");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor probs({batch, classes});
  for (std::size_t n = 0; n < batch; ++n) {
    const double* row = logits.data() + n * classes;
    double* out = probs.data() + n * classes;
    const double row_max = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t k = 0; k < classes; ++k) {
      out[k] = std::exp(row[k] - row_max);
      denom += out[k];
    }
    for (std::size_t k = 0; k < classes; ++k) out[k] /= denom;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint8_t>& labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: expected [N, K]");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: labels size mismatch");
  }
  LossResult result;
  result.grad_logits = softmax(logits);
  const double inv_batch = 1.0 / static_cast<double>(batch);
  double loss = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t y = labels[n];
    if (y >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const double p = result.grad_logits.at2(n, y);
    loss -= std::log(std::max(p, 1e-300));
    // dLoss/dlogits = (softmax - onehot) / N
    result.grad_logits.at2(n, y) -= 1.0;
  }
  for (std::size_t i = 0; i < result.grad_logits.size(); ++i) {
    result.grad_logits[i] *= inv_batch;
  }
  result.loss = loss * inv_batch;
  return result;
}

std::vector<std::uint8_t> argmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("argmax_rows: expected [N, K]");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::vector<std::uint8_t> out(batch, 0);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* row = logits.data() + n * classes;
    out[n] = static_cast<std::uint8_t>(
        std::max_element(row, row + classes) - row);
  }
  return out;
}

}  // namespace bcl::ml
