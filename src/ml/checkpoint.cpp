#include "ml/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace bcl::ml {

namespace {
constexpr char kMagic[4] = {'B', 'C', 'L', 'P'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_parameters(const std::string& path, const Vector& parameters) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_parameters: cannot open " + path);
  f.write(kMagic, sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = parameters.size();
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(parameters.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!f) throw std::runtime_error("save_parameters: write failed: " + path);
}

Vector load_parameters(const std::string& path,
                       std::size_t expected_dimension) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_parameters: cannot open " + path);
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  std::uint32_t version = 0;
  f.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!f || version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version");
  }
  std::uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!f) throw std::runtime_error("load_parameters: truncated header");
  if (expected_dimension > 0 && count != expected_dimension) {
    throw std::runtime_error("load_parameters: dimension mismatch");
  }
  Vector parameters(count);
  f.read(reinterpret_cast<char*>(parameters.data()),
         static_cast<std::streamsize>(count * sizeof(double)));
  if (!f) throw std::runtime_error("load_parameters: truncated payload");
  return parameters;
}

}  // namespace bcl::ml
