#include "ml/partition.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

namespace bcl::ml {

const char* heterogeneity_name(Heterogeneity h) {
  switch (h) {
    case Heterogeneity::Uniform: return "uniform";
    case Heterogeneity::Mild: return "mild";
    case Heterogeneity::Extreme: return "extreme";
  }
  return "?";
}

Heterogeneity parse_heterogeneity(const std::string& name) {
  if (name == "uniform") return Heterogeneity::Uniform;
  if (name == "mild") return Heterogeneity::Mild;
  if (name == "extreme") return Heterogeneity::Extreme;
  throw std::invalid_argument("parse_heterogeneity: unknown scheme " + name);
}

namespace {

// Splits `class_indices` (already shuffled) into `shares.size()` contiguous
// chunks proportional to `shares` and appends chunk c to result[c].
void distribute_class(const std::vector<std::size_t>& class_indices,
                      const std::vector<double>& shares,
                      std::vector<std::vector<std::size_t>>& result) {
  const std::size_t total = class_indices.size();
  std::size_t cursor = 0;
  double cumulative = 0.0;
  for (std::size_t c = 0; c < shares.size(); ++c) {
    cumulative += shares[c];
    const std::size_t end = c + 1 == shares.size()
                                ? total
                                : static_cast<std::size_t>(cumulative * total);
    for (; cursor < end && cursor < total; ++cursor) {
      result[c].push_back(class_indices[cursor]);
    }
  }
}

}  // namespace

std::vector<std::vector<std::size_t>> partition_dataset(
    const Dataset& train, std::size_t num_clients, Heterogeneity scheme,
    Rng& rng) {
  if (num_clients == 0) {
    throw std::invalid_argument("partition_dataset: need at least one client");
  }
  std::vector<std::vector<std::size_t>> result(num_clients);

  if (scheme == Heterogeneity::Extreme) {
    // Sort by label, cut into 2n shards, hand each client 2 random shards.
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return train.labels[a] < train.labels[b];
                     });
    const std::size_t num_shards = 2 * num_clients;
    std::vector<std::size_t> shard_of = rng.permutation(num_shards);
    const std::size_t shard_size = train.size() / num_shards;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t client = shard_of[s] / 2;
      const std::size_t begin = s * shard_size;
      const std::size_t end =
          s + 1 == num_shards ? train.size() : begin + shard_size;
      for (std::size_t i = begin; i < end; ++i) {
        result[client].push_back(order[i]);
      }
    }
    return result;
  }

  // Class-proportional schemes.
  std::vector<double> base_shares(num_clients,
                                  1.0 / static_cast<double>(num_clients));
  if (scheme == Heterogeneity::Mild && num_clients >= 3) {
    // One under-weighted (5%) and one over-weighted (15%) client per class;
    // the remaining clients split the rest equally (10% each for n = 10,
    // matching the paper).
    const double low = 0.05;
    const double high = 0.15;
    const double equal =
        (1.0 - low - high) / static_cast<double>(num_clients - 2);
    base_shares.assign(num_clients, equal);
    base_shares[0] = low;
    base_shares[1] = high;
  }

  for (std::size_t cls = 0; cls < train.num_classes; ++cls) {
    std::vector<std::size_t> class_indices =
        train.indices_of_class(static_cast<std::uint8_t>(cls));
    rng.shuffle(class_indices);
    std::vector<double> shares = base_shares;
    if (scheme == Heterogeneity::Mild && num_clients >= 3) {
      // Rotate which client is under/over-weighted so totals stay balanced
      // ("clients have the same amount of data" assumption of the paper).
      std::rotate(shares.begin(),
                  shares.begin() + static_cast<long>(cls % num_clients),
                  shares.end());
    }
    distribute_class(class_indices, shares, result);
  }
  return result;
}

std::size_t distinct_labels(const Dataset& train,
                            const std::vector<std::size_t>& shard) {
  std::set<std::uint8_t> seen;
  for (std::size_t i : shard) seen.insert(train.labels.at(i));
  return seen.size();
}

}  // namespace bcl::ml
