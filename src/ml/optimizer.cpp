#include "ml/optimizer.hpp"

#include <stdexcept>

namespace bcl::ml {

LearningRateSchedule LearningRateSchedule::paper_default(
    std::size_t total_rounds) {
  const double eta = 0.01;
  if (total_rounds == 0) return LearningRateSchedule(eta, 0.0);
  return LearningRateSchedule(eta, eta / static_cast<double>(total_rounds));
}

void sgd_step(Vector& theta, const Vector& gradient, double learning_rate) {
  if (theta.size() != gradient.size()) {
    throw std::invalid_argument("sgd_step: dimension mismatch");
  }
  axpy(theta, -learning_rate, gradient);
}

}  // namespace bcl::ml
