#pragma once
// The two model architectures of the evaluation (Section 5.1): a 3-layer
// MLP for the MNIST-like task and CifarNet, a medium-sized convolutional
// network, for the CIFAR-like task.

#include "ml/model.hpp"

namespace bcl::ml {

/// 3-layer MLP: input -> Dense(h1) -> ReLU -> Dense(h2) -> ReLU ->
/// Dense(classes).  The paper's MLP for MNIST.
Model make_mlp(std::size_t input_dim, std::size_t hidden1,
               std::size_t hidden2, std::size_t num_classes);

/// CifarNet: Reshape -> Conv(k5, pad2) -> ReLU -> MaxPool2 ->
/// Conv(k5, pad2) -> ReLU -> MaxPool2 -> Flatten -> Dense(fc) -> ReLU ->
/// Dense(classes).  `width1`/`width2` are the conv channel counts.
/// Height and width must be divisible by 4.
Model make_cifarnet(std::size_t channels, std::size_t height,
                    std::size_t width, std::size_t num_classes,
                    std::size_t width1 = 6, std::size_t width2 = 12,
                    std::size_t fc = 32);

/// Tiny linear softmax model used by fast tests.
Model make_linear(std::size_t input_dim, std::size_t num_classes);

}  // namespace bcl::ml
