#pragma once
// Model checkpointing: save / load flat parameter vectors in a small
// self-describing binary format, so long training runs (the --full figure
// benches) can be resumed and final models exported.
//
// Format: magic "BCLP", format version u32, parameter count u64, then the
// raw little-endian doubles.  The loader validates magic, version and
// (optionally) the expected dimension.

#include <cstdint>
#include <string>

#include "linalg/vector_ops.hpp"

namespace bcl::ml {

/// Writes `parameters` to `path`.  Throws std::runtime_error on I/O
/// failure.
void save_parameters(const std::string& path, const Vector& parameters);

/// Reads a parameter vector from `path`.  If expected_dimension > 0, the
/// stored count must match it.  Throws std::runtime_error on malformed
/// files or dimension mismatch.
Vector load_parameters(const std::string& path,
                       std::size_t expected_dimension = 0);

}  // namespace bcl::ml
