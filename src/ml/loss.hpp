#pragma once
// Categorical cross-entropy over softmax logits — the loss of both
// evaluation models in the paper (Section 5.1).

#include <cstdint>
#include <vector>

#include "ml/tensor.hpp"

namespace bcl::ml {

struct LossResult {
  double loss = 0.0;          ///< mean cross-entropy over the batch
  Tensor grad_logits;         ///< dLoss/dLogits, already divided by N
};

/// logits: [N, K]; labels: N class indices in [0, K).  Numerically stable
/// (log-sum-exp with max subtraction).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint8_t>& labels);

/// Softmax probabilities of a logits tensor (row-wise).
Tensor softmax(const Tensor& logits);

/// Row-wise argmax of [N, K] logits.
std::vector<std::uint8_t> argmax_rows(const Tensor& logits);

}  // namespace bcl::ml
