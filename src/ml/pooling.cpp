#include "ml/pooling.hpp"

#include <stdexcept>

namespace bcl::ml {

MaxPool2D::MaxPool2D(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("MaxPool2D: window must be > 0");
}

Tensor MaxPool2D::forward(const Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2D::forward: expected [N, C, H, W]");
  }
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  if (h % window_ != 0 || w % window_ != 0) {
    throw std::invalid_argument(
        "MaxPool2D::forward: spatial dims must be divisible by the window");
  }
  const std::size_t out_h = h / window_;
  const std::size_t out_w = w / window_;
  input_shape_ = input.shape();
  Tensor output({batch, channels, out_h, out_w});
  argmax_.assign(output.size(), 0);
  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          double best = input.at4(n, c, oh * window_, ow * window_);
          std::size_t best_idx =
              ((n * channels + c) * h + oh * window_) * w + ow * window_;
          for (std::size_t dh = 0; dh < window_; ++dh) {
            for (std::size_t dw = 0; dw < window_; ++dw) {
              const std::size_t ih = oh * window_ + dh;
              const std::size_t iw = ow * window_ + dw;
              const double v = input.at4(n, c, ih, iw);
              if (v > best) {
                best = v;
                best_idx = ((n * channels + c) * h + ih) * w + iw;
              }
            }
          }
          output[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::logic_error("MaxPool2D::backward: no matching forward pass");
  }
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace bcl::ml
