#pragma once
// 2x2 (or k x k) max pooling with stride equal to the window size.

#include "ml/layer.hpp"

namespace bcl::ml {

class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::size_t window = 2);

  std::string name() const override { return "MaxPool2D"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index of each output cell
  std::vector<std::size_t> input_shape_;
};

}  // namespace bcl::ml
