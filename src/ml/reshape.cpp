#include "ml/reshape.hpp"

#include <stdexcept>

namespace bcl::ml {

Tensor Flatten::forward(const Tensor& input) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank must be >= 2");
  }
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("Flatten::backward: no matching forward pass");
  }
  return grad_output.reshaped(input_shape_);
}

Reshape::Reshape(std::vector<std::size_t> per_example_shape)
    : per_example_shape_(std::move(per_example_shape)) {
  if (per_example_shape_.empty()) {
    throw std::invalid_argument("Reshape: empty target shape");
  }
}

Tensor Reshape::forward(const Tensor& input) {
  input_shape_ = input.shape();
  std::vector<std::size_t> shape;
  shape.push_back(input.dim(0));
  shape.insert(shape.end(), per_example_shape_.begin(),
               per_example_shape_.end());
  return input.reshaped(std::move(shape));
}

Tensor Reshape::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("Reshape::backward: no matching forward pass");
  }
  return grad_output.reshaped(input_shape_);
}

}  // namespace bcl::ml
