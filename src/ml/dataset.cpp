#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bcl::ml {

Tensor Dataset::batch(const std::vector<std::size_t>& indices) const {
  Tensor out({indices.size(), feature_dim()});
  for (std::size_t row = 0; row < indices.size(); ++row) {
    const Vector& img = images.at(indices[row]);
    std::copy(img.begin(), img.end(), out.data() + row * feature_dim());
  }
  return out;
}

std::vector<std::uint8_t> Dataset::batch_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::uint8_t> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(labels.at(i));
  return out;
}

std::vector<std::size_t> Dataset::indices_of_class(std::uint8_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) out.push_back(i);
  }
  return out;
}

SyntheticSpec SyntheticSpec::mnist_like(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.channels = 1;
  spec.height = 28;
  spec.width = 28;
  spec.train_per_class = 200;
  spec.test_per_class = 40;
  spec.noise = 0.15;
  spec.class_separation = 1.0;
  spec.seed = seed;
  return spec;
}

SyntheticSpec SyntheticSpec::mnist_small(std::uint64_t seed) {
  SyntheticSpec spec = mnist_like(seed);
  spec.height = 14;
  spec.width = 14;
  spec.train_per_class = 120;
  spec.test_per_class = 30;
  return spec;
}

SyntheticSpec SyntheticSpec::cifar_like(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.channels = 3;
  spec.height = 32;
  spec.width = 32;
  spec.train_per_class = 150;
  spec.test_per_class = 30;
  // Tuned so a small CNN saturates around the paper's <= 70% CIFAR10
  // ceiling while a linear model does clearly worse than on mnist_like.
  spec.noise = 0.25;
  spec.class_separation = 0.6;
  spec.class_overlap = 0.5;
  spec.seed = seed;
  return spec;
}

SyntheticSpec SyntheticSpec::cifar_small(std::uint64_t seed) {
  SyntheticSpec spec = cifar_like(seed);
  spec.height = 16;
  spec.width = 16;
  spec.train_per_class = 100;
  spec.test_per_class = 25;
  return spec;
}

namespace {

/// Smooth class prototype in [0, 1]: per channel, a sum of three random
/// low-frequency cosine waves rescaled to the unit interval.
Vector make_prototype(const SyntheticSpec& spec, Rng& rng) {
  Vector proto(spec.channels * spec.height * spec.width, 0.0);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    struct Wave {
      double fx, fy, phase, amp;
    };
    std::vector<Wave> waves(3);
    for (auto& wave : waves) {
      wave.fx = static_cast<double>(rng.uniform_int(1, 3));
      wave.fy = static_cast<double>(rng.uniform_int(1, 3));
      wave.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      wave.amp = rng.uniform(0.5, 1.0);
    }
    double lo = 1e300;
    double hi = -1e300;
    std::vector<double> plane(spec.height * spec.width);
    for (std::size_t i = 0; i < spec.height; ++i) {
      for (std::size_t j = 0; j < spec.width; ++j) {
        double v = 0.0;
        for (const auto& wave : waves) {
          v += wave.amp *
               std::cos(2.0 * std::numbers::pi *
                            (wave.fx * static_cast<double>(i) /
                                 static_cast<double>(spec.height) +
                             wave.fy * static_cast<double>(j) /
                                 static_cast<double>(spec.width)) +
                        wave.phase);
        }
        plane[i * spec.width + j] = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    const double span = hi - lo > 0.0 ? hi - lo : 1.0;
    for (std::size_t p = 0; p < plane.size(); ++p) {
      proto[c * plane.size() + p] = (plane[p] - lo) / span;
    }
  }
  return proto;
}

Vector sample_from_prototype(const Vector& proto, const SyntheticSpec& spec,
                             Rng& rng) {
  Vector img(proto.size());
  for (std::size_t p = 0; p < proto.size(); ++p) {
    // Blend toward mid-gray (lower separation = harder task), add noise,
    // clamp to the valid pixel range.
    const double base =
        spec.class_separation * proto[p] + (1.0 - spec.class_separation) * 0.5;
    img[p] = std::clamp(base + rng.gaussian(0.0, spec.noise), 0.0, 1.0);
  }
  return img;
}

void fill_split(Dataset& split, std::size_t per_class,
                const std::vector<Vector>& prototypes,
                const SyntheticSpec& spec, Rng& rng) {
  split.channels = spec.channels;
  split.height = spec.height;
  split.width = spec.width;
  split.num_classes = spec.num_classes;
  for (std::size_t c = 0; c < spec.num_classes; ++c) {
    for (std::size_t s = 0; s < per_class; ++s) {
      split.images.push_back(sample_from_prototype(prototypes[c], spec, rng));
      split.labels.push_back(static_cast<std::uint8_t>(c));
    }
  }
  // Shuffle examples so class blocks do not leak ordering assumptions; the
  // permutation is drawn from the same deterministic stream.
  std::vector<std::size_t> perm = rng.permutation(split.size());
  std::vector<Vector> images(split.size());
  std::vector<std::uint8_t> labels(split.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    images[i] = std::move(split.images[perm[i]]);
    labels[i] = split.labels[perm[i]];
  }
  split.images = std::move(images);
  split.labels = std::move(labels);
}

}  // namespace

TrainTestSplit make_synthetic_dataset(const SyntheticSpec& spec) {
  if (spec.num_classes == 0 || spec.num_classes > 256) {
    throw std::invalid_argument("make_synthetic_dataset: bad class count");
  }
  Rng root(spec.seed);
  Rng proto_rng = root.split(0);
  Rng train_rng = root.split(1);
  Rng test_rng = root.split(2);

  // Shared base image blended into every class prototype (class_overlap).
  Rng shared_rng = proto_rng.split(0xBA5E);
  const Vector shared = make_prototype(spec, shared_rng);

  std::vector<Vector> prototypes;
  prototypes.reserve(spec.num_classes);
  for (std::size_t c = 0; c < spec.num_classes; ++c) {
    Rng class_rng = proto_rng.split(c);
    Vector proto = make_prototype(spec, class_rng);
    for (std::size_t p = 0; p < proto.size(); ++p) {
      proto[p] = spec.class_overlap * shared[p] +
                 (1.0 - spec.class_overlap) * proto[p];
    }
    prototypes.push_back(std::move(proto));
  }

  TrainTestSplit split;
  fill_split(split.train, spec.train_per_class, prototypes, spec, train_rng);
  fill_split(split.test, spec.test_per_class, prototypes, spec, test_rng);
  return split;
}

}  // namespace bcl::ml
