#pragma once
// Deterministic, splittable random number generation.
//
// Everything random in this library flows through bcl::Rng so that
// experiments are exactly reproducible from a single root seed, regardless
// of thread scheduling.  Each client / node / dataset derives its own
// independent stream via Rng::split(), following the "splittable PRNG"
// discipline: a stream never depends on how many draws a sibling stream
// made.

#include <cstdint>
#include <vector>

namespace bcl {

/// One SplitMix64 step: advances `state` by the golden-ratio increment and
/// applies the bijective finalizer.  The shared building block for
/// hash-derived seed streams (Rng::split, the network's message_stream):
/// chain it over the key components to get an independent stream seed.
std::uint64_t splitmix64(std::uint64_t state);

/// Counter-based deterministic PRNG (SplitMix64 core, xorshift-style
/// finalizer).  Satisfies the needs of simulation workloads: fast, good
/// statistical quality, trivially splittable, no global state.
class Rng {
 public:
  /// Seeds the stream.  Two Rng objects with the same seed produce the same
  /// sequence of draws.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.  Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller, no cached spare so that the draw
  /// count per call is deterministic).
  double gaussian();

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Derive an independent child stream.  The i-th split of a given stream
  /// is a pure function of (parent seed, i): the parent's subsequent draws
  /// are unaffected.
  Rng split(std::uint64_t stream_index) const;

  /// Fisher-Yates shuffle of an index container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Current internal state (useful for checkpointing tests).
  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace bcl
