#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace bcl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::fork_join(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();
    return;
  }
  std::exception_ptr local_error;
  std::mutex err_mu;
  std::atomic<std::size_t> done{0};
  // Submit all but the first task; run the first on the calling thread.
  for (std::size_t p = 1; p < tasks.size(); ++p) {
    const std::function<void()>* task_p = &tasks[p];
    submit([&, task_p] {
      try {
        (*task_p)();
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!local_error) local_error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  try {
    tasks.front()();
  } catch (...) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!local_error) local_error = std::current_exception();
  }
  // Wait for the submitted tasks (not the whole pool, so nested use from
  // multiple callers does not deadlock on unrelated work).  While waiting,
  // help drain the queue so nested fork-joins from worker threads cannot
  // deadlock when all workers are busy.
  while (done.load(std::memory_order_acquire) != tasks.size() - 1) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (task) {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    } else {
      std::this_thread::yield();
    }
  }
  if (local_error) std::rethrow_exception(local_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, workers_.size() + 1);
  if (parts <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Static chunking: chunk p covers [begin + p*chunk, ...), remainder spread
  // over the first `rem` chunks.
  const std::size_t chunk = n / parts;
  const std::size_t rem = n % parts;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(parts);
  std::size_t lo = begin;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = chunk + (p < rem ? 1 : 0);
    const std::size_t a = lo;
    const std::size_t b = lo + len;
    tasks.push_back([&fn, a, b] {
      for (std::size_t i = a; i < b; ++i) fn(i);
    });
    lo += len;
  }
  fork_join(tasks);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& fn, std::size_t chunk) {
  if (begin >= end) return;
  if (chunk == 0) chunk = 1;
  const std::size_t n = end - begin;
  // One shared cursor; every participant (workers + the calling thread)
  // repeatedly claims the next `chunk` indices until the range is drained.
  std::atomic<std::size_t> cursor{begin};
  auto drain = [&cursor, end, chunk, &fn] {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  };
  const std::size_t participants =
      1 + std::min(workers_.size(), (n + chunk - 1) / chunk - 1);
  fork_join(std::vector<std::function<void()>>(participants, drain));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bcl
