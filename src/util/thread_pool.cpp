#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace bcl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, workers_.size() + 1);
  if (parts <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Static chunking: chunk p covers [begin + p*chunk, ...), remainder spread
  // over the first `rem` chunks.
  const std::size_t chunk = n / parts;
  const std::size_t rem = n % parts;
  std::exception_ptr local_error;
  std::mutex err_mu;
  std::atomic<std::size_t> done{0};
  std::size_t lo = begin;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = chunk + (p < rem ? 1 : 0);
    ranges.emplace_back(lo, lo + len);
    lo += len;
  }
  // Submit all but the first range; run the first on the calling thread.
  for (std::size_t p = 1; p < parts; ++p) {
    const auto [a, b] = ranges[p];
    submit([&, a, b] {
      try {
        for (std::size_t i = a; i < b; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!local_error) local_error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  try {
    for (std::size_t i = ranges[0].first; i < ranges[0].second; ++i) fn(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!local_error) local_error = std::current_exception();
  }
  // Wait for the submitted chunks (not the whole pool, so nested use from
  // multiple callers does not deadlock on unrelated work).  While waiting,
  // help drain the queue so nested parallel_for calls from worker threads
  // cannot deadlock when all workers are busy.
  while (done.load(std::memory_order_acquire) != parts - 1) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (task) {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    } else {
      std::this_thread::yield();
    }
  }
  if (local_error) std::rethrow_exception(local_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bcl
