#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bcl {

namespace {
// SplitMix64 finalizer: bijective mixing of a 64-bit counter.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
}  // namespace

std::uint64_t splitmix64(std::uint64_t state) { return mix(state + kGolden); }

std::uint64_t Rng::next_u64() {
  state_ += kGolden;
  return mix(state_);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_u64: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::gaussian() {
  // Box-Muller; always consumes exactly two uniforms.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

Rng Rng::split(std::uint64_t stream_index) const {
  // Child seed is a mix of the parent seed and the stream index; does not
  // advance the parent.
  return Rng(mix(state_ ^ mix(stream_index + 0x632BE59BD9B4E019ull)));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace bcl
