#pragma once
// Fork-join thread pool with a static-chunked parallel_for.
//
// Design follows the explicit-parallelism discipline of the HPC guides:
// workers never share mutable state implicitly; parallel_for partitions the
// index space into disjoint contiguous chunks (like an OpenMP static
// schedule), so per-index work touches only its own data.  Exceptions thrown
// by workers are captured and rethrown on the calling thread.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bcl {

/// A fixed-size pool of worker threads executing submitted tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers.  0 means hardware_concurrency (at least
  /// one).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Fire-and-forget; use wait_idle() or parallel_for for
  /// synchronization.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.  Rethrows the first
  /// captured worker exception, if any.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool (the calling thread also works).  Blocks until done;
  /// rethrows the first worker exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Self-scheduling variant for imbalanced iterations (an OpenMP "dynamic"
  /// schedule): indices are handed out `chunk` at a time from a shared
  /// atomic cursor, so a worker that draws cheap iterations immediately
  /// comes back for more.  The static parallel_for assigns each worker one
  /// contiguous slab, which degenerates on triangular loops — the worker
  /// holding the first rows of a pairwise build carries ~m/2 times the work
  /// of the one holding the last rows; this variant keeps all workers busy
  /// to the end.  fn(i) must still touch only its own data.  Blocks until
  /// done; rethrows the first worker exception.
  void parallel_for_dynamic(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& fn,
                            std::size_t chunk = 1);

  /// Process-wide shared pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  /// Shared fork-join core: runs tasks[0] on the calling thread, submits
  /// the rest to the pool, help-drains the queue until the submitted tasks
  /// finish (so nested calls from worker threads cannot deadlock), and
  /// rethrows the first captured exception.
  void fork_join(const std::vector<std::function<void()>>& tasks);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace bcl
