#include "util/arena.hpp"

#include <algorithm>

namespace bcl {

namespace {
constexpr std::size_t kMinChunkDoubles = 4096;  // 32 KiB
}

double* DoubleArena::allocate(std::size_t n) {
  while (active_ < chunks_.size() &&
         chunks_[active_].cursor + n > chunks_[active_].size) {
    ++active_;
  }
  if (active_ == chunks_.size()) {
    // Geometric growth over the arena's total footprint keeps the chunk
    // count logarithmic in the high-water mark.
    const std::size_t grown = std::max(kMinChunkDoubles, capacity());
    Chunk chunk;
    chunk.size = std::max(n, grown);
    chunk.data = std::make_unique<double[]>(chunk.size);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_[active_];
  double* out = chunk.data.get() + chunk.cursor;
  chunk.cursor += n;
  used_ += n;
  return out;
}

void DoubleArena::reset() {
  if (chunks_.size() > 1) {
    // Coalesce: one chunk of the full footprint, so the next fill never
    // chains (and never strands tail space in earlier chunks).
    const std::size_t total = capacity();
    chunks_.clear();
    Chunk chunk;
    chunk.size = total;
    chunk.data = std::make_unique<double[]>(total);
    chunks_.push_back(std::move(chunk));
  } else if (!chunks_.empty()) {
    chunks_.front().cursor = 0;
  }
  active_ = 0;
  used_ = 0;
}

std::size_t DoubleArena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

}  // namespace bcl
