#pragma once
// Minimal leveled logging through a capturable sink.  Thread-safe: each log
// call emits one atomic record.  Default level is Info; benches lower it to
// Warn to keep table output clean.
//
// Every accepted record passes through one sink (stderr by default).  Tests
// swap the sink with ScopedLogCapture to assert on warnings instead of
// scraping stderr; the registry layer reads log_count() deltas to surface
// warning/error counts per scenario.  A small bounded ring of recent records
// is kept regardless of sink, for post-mortem inspection.

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace bcl {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets / reads the global threshold.  Messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

struct LogRecord {
  LogLevel level = LogLevel::Info;
  std::string message;
};

/// Sink invoked (serially, under the log mutex) for every accepted record.
/// Passing nullptr restores the default stderr sink ("[LEVEL] message").
using LogSink = std::function<void(const LogRecord&)>;
void set_log_sink(LogSink sink);

/// Last few hundred accepted records, oldest first (bounded ring — kept even
/// when a custom sink is installed).
std::vector<LogRecord> recent_log_records();
void clear_log_records();

/// Total records accepted at exactly `level` since process start.  Per-cell
/// consumers (the scenario runner) diff this around a run.
std::uint64_t log_count(LogLevel level);

/// Routes a record through threshold, counters, ring, and sink.
void log_message(LogLevel level, const std::string& message);

/// RAII test hook: installs a collecting sink (suppressing stderr) and
/// restores the previous sink on destruction.
class ScopedLogCapture {
 public:
  ScopedLogCapture();
  ~ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  std::vector<LogRecord> records() const;
  /// True when any captured record at `level` contains `needle`.
  bool contains(LogLevel level, const std::string& needle) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
  LogSink previous_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace bcl
