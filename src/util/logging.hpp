#pragma once
// Minimal leveled logging to stderr.  Thread-safe: each log call emits one
// atomic line.  Default level is Info; benches lower it to Warn to keep
// table output clean.

#include <sstream>
#include <string>

namespace bcl {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets / reads the global threshold.  Messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line: "[LEVEL] message".
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace bcl
