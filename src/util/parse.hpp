#pragma once
// Strict numeric string parsing shared by the string-keyed registries and
// the scenario grammar: the whole token must be consumed (no trailing
// garbage, no silent truncation of "1.9" to an integer), and failures
// throw std::invalid_argument with the caller's context prefixed so the
// user sees which key was malformed.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bcl {

/// Parses a non-negative integer; throws std::invalid_argument
/// "<context> expects a non-negative integer, got '<text>'" when the text
/// is not wholly a base-10 unsigned integer.
std::uint64_t parse_strict_u64(const std::string& text,
                               const std::string& context);

/// Parses a floating-point number with the same whole-token contract;
/// throws "<context> expects a number, got '<text>'" otherwise.
double parse_strict_double(const std::string& text,
                           const std::string& context);

/// Comma-joins names for the registries' "valid: ..." error menus.
std::string join_names(const std::vector<std::string>& names);

/// The inverse policy of parse_strict_double for the textual grammars:
/// %.12g round-trips every value the harnesses use and keeps common
/// decimals short ("0.25", not "0.250000000000").
std::string format_double_g(double value);

// --- the registries' "family[:key=value,...]" grammar ----------------------
//
// The attack and codec registries select entries with the same spec
// grammar; these helpers are the single implementation both validate
// against.  `context` is the registry's function name ("make_attack",
// "make_codec") and prefixes every error message.

/// Parsed key->value parameters of one spec.
using SpecParams = std::map<std::string, std::string>;

/// Splits "family:key=val,key=val" into the family name and a parameter
/// map.  Malformed parameter tokens (no '=', empty key or value) throw
/// std::invalid_argument.
void split_spec_grammar(const std::string& spec, const std::string& context,
                        std::string& family, SpecParams& params);

/// Typed parameter lookups with strict parsing, so "target=1.9" fails for
/// an integer key instead of truncating.
double spec_param_double(const SpecParams& params, const std::string& key,
                         double fallback, const std::string& context);
std::uint64_t spec_param_u64(const SpecParams& params, const std::string& key,
                             std::uint64_t fallback,
                             const std::string& context);

/// Validates every supplied key against the family's allowlist so a typo
/// fails with the valid keys listed.
void reject_unknown_spec_params(const std::string& family,
                                const SpecParams& params,
                                const std::vector<std::string>& allowed,
                                const std::string& context);

/// Splits a bare comma-separated "key=val,key=val" list (the tail of the
/// stale= grammar, which leads with a value instead of a family name) into
/// a parameter map, with split_spec_grammar's malformed-token contract.
SpecParams split_param_list(const std::string& text,
                            const std::string& context);

// --- shared range validation ------------------------------------------------
//
// The faults=/stale=/net= grammars all reject out-of-range rates with the
// same message shape; one implementation keeps the wording (and the
// strictness — zero is not a valid rate) identical across registries.

/// Throws "<context>: '<key>' must be > 0, got <value>" unless value > 0.
void check_positive(double value, const std::string& key,
                    const std::string& context);

/// Throws unless value is a probability in [0, 1].
void check_probability(double value, const std::string& key,
                       const std::string& context);

/// Throws unless 0 < value <= 1 (a strictly positive fraction).
void check_positive_fraction(double value, const std::string& key,
                             const std::string& context);

}  // namespace bcl
