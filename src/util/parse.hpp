#pragma once
// Strict numeric string parsing shared by the string-keyed registries and
// the scenario grammar: the whole token must be consumed (no trailing
// garbage, no silent truncation of "1.9" to an integer), and failures
// throw std::invalid_argument with the caller's context prefixed so the
// user sees which key was malformed.

#include <cstdint>
#include <string>
#include <vector>

namespace bcl {

/// Parses a non-negative integer; throws std::invalid_argument
/// "<context> expects a non-negative integer, got '<text>'" when the text
/// is not wholly a base-10 unsigned integer.
std::uint64_t parse_strict_u64(const std::string& text,
                               const std::string& context);

/// Parses a floating-point number with the same whole-token contract;
/// throws "<context> expects a number, got '<text>'" otherwise.
double parse_strict_double(const std::string& text,
                           const std::string& context);

/// Comma-joins names for the registries' "valid: ..." error menus.
std::string join_names(const std::vector<std::string>& names);

/// The inverse policy of parse_strict_double for the textual grammars:
/// %.12g round-trips every value the harnesses use and keeps common
/// decimals short ("0.25", not "0.250000000000").
std::string format_double_g(double value);

}  // namespace bcl
