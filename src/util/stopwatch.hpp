#pragma once
// Monotonic wall-clock stopwatch for coarse phase timing in the harnesses.

#include <chrono>

namespace bcl {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bcl
