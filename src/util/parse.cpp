#include "util/parse.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bcl {

std::uint64_t parse_strict_u64(const std::string& text,
                               const std::string& context) {
  try {
    std::size_t consumed = 0;
    // stoull accepts a leading '-' (wrapping the value); reject it here.
    if (!text.empty() && text[0] == '-') throw std::invalid_argument("sign");
    const unsigned long long value = std::stoull(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trail");
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(context +
                                " expects a non-negative integer, got '" +
                                text + "'");
  }
}

double parse_strict_double(const std::string& text,
                           const std::string& context) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trail");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context + " expects a number, got '" + text +
                                "'");
  }
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

std::string format_double_g(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void split_spec_grammar(const std::string& spec, const std::string& context,
                        std::string& family, SpecParams& params) {
  const std::size_t colon = spec.find(':');
  family = spec.substr(0, colon);
  if (colon == std::string::npos) return;
  std::stringstream rest(spec.substr(colon + 1));
  std::string token;
  while (std::getline(rest, token, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      throw std::invalid_argument(context + ": malformed parameter '" +
                                  token + "' in '" + spec +
                                  "' (expected key=value)");
    }
    params[token.substr(0, eq)] = token.substr(eq + 1);
  }
}

double spec_param_double(const SpecParams& params, const std::string& key,
                         double fallback, const std::string& context) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return parse_strict_double(it->second,
                             context + ": parameter '" + key + "'");
}

std::uint64_t spec_param_u64(const SpecParams& params, const std::string& key,
                             std::uint64_t fallback,
                             const std::string& context) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return parse_strict_u64(it->second, context + ": parameter '" + key + "'");
}

SpecParams split_param_list(const std::string& text,
                            const std::string& context) {
  SpecParams params;
  std::stringstream rest(text);
  std::string token;
  while (std::getline(rest, token, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      throw std::invalid_argument(context + ": malformed parameter '" + token +
                                  "' in '" + text + "' (expected key=value)");
    }
    params[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return params;
}

void check_positive(double value, const std::string& key,
                    const std::string& context) {
  if (!(value > 0.0)) {
    throw std::invalid_argument(context + ": '" + key + "' must be > 0, got " +
                                format_double_g(value));
  }
}

void check_probability(double value, const std::string& key,
                       const std::string& context) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(context + ": '" + key +
                                "' must be a probability in [0, 1], got " +
                                format_double_g(value));
  }
}

void check_positive_fraction(double value, const std::string& key,
                             const std::string& context) {
  if (!(value > 0.0 && value <= 1.0)) {
    throw std::invalid_argument(context + ": '" + key +
                                "' must be a fraction in (0, 1], got " +
                                format_double_g(value));
  }
}

void reject_unknown_spec_params(const std::string& family,
                                const SpecParams& params,
                                const std::vector<std::string>& allowed,
                                const std::string& context) {
  for (const auto& [key, value] : params) {
    (void)value;
    bool ok = false;
    for (const auto& a : allowed) ok = ok || a == key;
    if (!ok) {
      throw std::invalid_argument(
          context + ": unknown parameter '" + key + "' for '" + family +
          "'" +
          (allowed.empty() ? std::string(" (takes no parameters)")
                           : " (valid: " + join_names(allowed) + ")"));
    }
  }
}

}  // namespace bcl
