#include "util/parse.hpp"

#include <cstdio>
#include <stdexcept>

namespace bcl {

std::uint64_t parse_strict_u64(const std::string& text,
                               const std::string& context) {
  try {
    std::size_t consumed = 0;
    // stoull accepts a leading '-' (wrapping the value); reject it here.
    if (!text.empty() && text[0] == '-') throw std::invalid_argument("sign");
    const unsigned long long value = std::stoull(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trail");
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(context +
                                " expects a non-negative integer, got '" +
                                text + "'");
  }
}

double parse_strict_double(const std::string& text,
                           const std::string& context) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trail");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context + " expects a number, got '" + text +
                                "'");
  }
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

std::string format_double_g(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace bcl
