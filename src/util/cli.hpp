#pragma once
// Tiny command-line flag parser used by the bench harnesses and examples.
// Supports "--name=value" and "--name value"; unknown flags are an error so
// typos do not silently fall back to defaults.

#include <map>
#include <string>
#include <vector>

namespace bcl {

/// Parsed command-line flags with typed getters and defaults.
class CliArgs {
 public:
  /// Parses argv.  `allowed` lists the accepted flag names (without "--");
  /// passing a flag not in the list throws std::invalid_argument.
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bcl
