#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bcl {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) new_row();
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("Table: row has more cells than header columns");
  }
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add_num(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add_int(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c])) << s;
    }
    os << " |\n";
  };
  line(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) line(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ',';
      f << csv_escape(cells[c]);
    }
    f << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace bcl
