#pragma once
// Monotonic chunked arena for double payload storage.
//
// The event engine stores every in-flight round value exactly once and
// hands receivers read-only spans into that storage (network/message.hpp),
// so the per-round allocation pattern is: many variable-length payload
// writes while the round is open, then one bulk release when every honest
// node has sealed the round.  A general-purpose allocator pays a
// malloc/free pair per payload for that pattern; this arena pays one
// pointer bump per payload and recycles its chunks across rounds, so a
// steady-state simulation stops allocating entirely after the first few
// rounds.
//
// Not thread-safe: allocation happens on the engine's driving thread (the
// serial value-commit phase); worker threads only read through previously
// returned pointers, which stay stable until reset() — chunks are never
// moved or grown in place.

#include <cstddef>
#include <memory>
#include <vector>

namespace bcl {

class DoubleArena {
 public:
  /// Bump-allocates `n` doubles (uninitialized).  The block stays valid
  /// until reset(); n == 0 returns a non-null one-past pointer so empty
  /// payloads still get a distinct "present" address.
  double* allocate(std::size_t n);

  /// Releases every allocation at once and recycles the storage: chunks
  /// are kept (coalesced into one when the arena had to chain several), so
  /// the next fill of similar size allocates nothing.
  void reset();

  /// Doubles handed out since the last reset().
  std::size_t used() const { return used_; }
  /// Doubles of backing storage currently held.
  std::size_t capacity() const;

 private:
  struct Chunk {
    std::unique_ptr<double[]> data;
    std::size_t size = 0;
    std::size_t cursor = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunks_[active_] is the one being bumped
  std::size_t used_ = 0;
};

}  // namespace bcl
