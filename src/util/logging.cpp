#include "util/logging.hpp"

#include <atomic>
#include <deque>
#include <iostream>
#include <mutex>

namespace bcl {

namespace {

constexpr std::size_t kLogRingCapacity = 256;

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::atomic<std::uint64_t> g_counts[4] = {};

std::mutex g_io_mu;
// Guarded by g_io_mu.  Heap-allocated so process teardown order is benign.
LogSink& sink_slot() {
  static auto* sink = new LogSink();
  return *sink;
}
std::deque<LogRecord>& ring() {
  static auto* records = new std::deque<LogRecord>();
  return *records;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_io_mu);
  sink_slot() = std::move(sink);
}

std::vector<LogRecord> recent_log_records() {
  std::lock_guard<std::mutex> lock(g_io_mu);
  return {ring().begin(), ring().end()};
}

void clear_log_records() {
  std::lock_guard<std::mutex> lock(g_io_mu);
  ring().clear();
}

std::uint64_t log_count(LogLevel level) {
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return 0;
  return g_counts[idx].load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const int idx = static_cast<int>(level);
  if (idx >= 0 && idx <= 3) {
    g_counts[idx].fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(g_io_mu);
  ring().push_back(LogRecord{level, message});
  if (ring().size() > kLogRingCapacity) ring().pop_front();
  if (sink_slot()) {
    sink_slot()(ring().back());
  } else {
    std::cerr << '[' << level_name(level) << "] " << message << '\n';
  }
}

struct ScopedLogCapture::State {
  mutable std::mutex mu;
  std::vector<LogRecord> records;
};

ScopedLogCapture::ScopedLogCapture() : state_(std::make_shared<State>()) {
  std::lock_guard<std::mutex> lock(g_io_mu);
  previous_ = sink_slot();
  auto state = state_;
  sink_slot() = [state](const LogRecord& record) {
    std::lock_guard<std::mutex> state_lock(state->mu);
    state->records.push_back(record);
  };
}

ScopedLogCapture::~ScopedLogCapture() {
  std::lock_guard<std::mutex> lock(g_io_mu);
  sink_slot() = std::move(previous_);
}

std::vector<LogRecord> ScopedLogCapture::records() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->records;
}

bool ScopedLogCapture::contains(LogLevel level,
                                const std::string& needle) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  for (const LogRecord& r : state_->records) {
    if (r.level == level && r.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace bcl
