#pragma once
// Tabular result output: aligned console tables and CSV files.
//
// All benchmark harnesses in bench/ report their rows through Table so the
// paper-figure data can be both read in the terminal and re-plotted from the
// CSV artifacts.

#include <iosfwd>
#include <string>
#include <vector>

namespace bcl {

/// A simple column-oriented table.  Cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row.  Cells are appended with add()/add_num().
  Table& new_row();
  Table& add(std::string cell);
  Table& add_num(double value, int precision = 4);
  Table& add_int(long long value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders an aligned, pipe-separated table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by Table and logs).
std::string format_double(double value, int precision);

}  // namespace bcl
