#include "agreement/protocol.hpp"

#include <memory>
#include <stdexcept>

#include "linalg/distance_matrix.hpp"
#include "linalg/hyperbox.hpp"
#include "linalg/workspace.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

namespace {

/// Honest participant: holds its current vector, broadcasts it (through
/// the codec when one is configured), applies the round function to each
/// inbox.
class AgreementNode final : public HonestProcess {
 public:
  AgreementNode(std::size_t id, Vector input, RoundFunctionPtr round_function,
                AggregationContext ctx, const Codec* codec,
                std::uint64_t codec_seed, std::size_t input_wire)
      : id_(id),
        current_(std::move(input)),
        round_function_(std::move(round_function)),
        ctx_(ctx),
        codec_(codec != nullptr && !codec->identity() ? codec : nullptr),
        codec_seed_(codec_seed),
        input_wire_(input_wire) {}

  Vector outgoing(std::size_t round) const override {
    // Sub-round 0 ships the input as the trainer encoded it (see
    // AgreementConfig::codec): no re-encode, priced at input_wire_.
    if (codec_ == nullptr || round == 0) return current_;
    // Later sub-rounds encode the mixed vector: what leaves the node is
    // the lossy decode and what the engine prices is the encoded size.
    // The encode is deterministic per (codec_seed, id, round), so replays
    // agree.
    const CompressedGradient encoded = codec_->encode(
        current_.data(), current_.size(), codec_seed_, id_, round);
    wire_round_ = round;
    wire_bytes_ = encoded.wire_bytes();
    return encoded.decode();
  }

  std::size_t outgoing_wire_bytes(std::size_t round) const override {
    if (codec_ == nullptr) return kDenseWire;
    if (round == 0) return input_wire_;
    // The engine asks immediately after outgoing(round); a mismatched
    // round means no encode happened — price dense.
    if (wire_round_ != round) return kDenseWire;
    return wire_bytes_;
  }

  void receive(std::size_t /*round*/, std::vector<Message>&& inbox) override {
    // Under partial synchrony a timeout (or a dropped neighborhood) can
    // resolve a round below the n - t quorum.  The t-resilient round
    // functions are only sound on >= n - t inputs, so the node skips its
    // update and keeps its current vector for this sub-round.
    if (inbox.size() < ctx_.n - ctx_.t) return;
    // One contiguous batch + workspace per inbox: every distance consumer
    // inside the round function (Krum scores, medoid, minimum-diameter
    // search, tie enumeration) shares a single Gram-trick pairwise matrix
    // for this sub-round, and batch-native rules run on the flat layout.
    const GradientBatch received = payload_batch(std::move(inbox));
    AggregationWorkspace workspace(received, ctx_.pool);
    current_ = round_function_->step(received, workspace, current_, ctx_);
  }

  const Vector& current() const { return current_; }

 private:
  std::size_t id_;
  Vector current_;
  RoundFunctionPtr round_function_;
  AggregationContext ctx_;
  const Codec* codec_;
  std::uint64_t codec_seed_;
  std::size_t input_wire_;
  // outgoing() is const in the HonestProcess contract but the wire size of
  // the encode it just performed must reach outgoing_wire_bytes(); cached
  // per round (the engine is single-threaded across these two calls).
  mutable std::size_t wire_round_ = static_cast<std::size_t>(-1);
  mutable std::size_t wire_bytes_ = 0;
};

VectorList honest_vectors(const std::vector<std::unique_ptr<AgreementNode>>& nodes) {
  VectorList out;
  for (const auto& node : nodes) {
    if (node) out.push_back(node->current());
  }
  return out;
}

AgreementResult run_impl(const VectorList& inputs, Adversary& adversary,
                         const AgreementConfig& config, bool fixed,
                         std::size_t fixed_rounds) {
  if (config.n == 0 || config.n != inputs.size()) {
    throw std::invalid_argument(
        "run_approximate_agreement: inputs.size() must equal config.n");
  }
  if (!config.round_function) {
    throw std::invalid_argument("run_approximate_agreement: no round function");
  }
  const std::size_t f = adversary.count_byzantine(config.n);
  if (f > config.t) {
    throw std::invalid_argument(
        "run_approximate_agreement: adversary controls more than t nodes");
  }

  AggregationContext ctx;
  ctx.n = config.n;
  ctx.t = config.t;
  ctx.pool = nullptr;  // node-level parallelism is across nodes, not subsets

  std::vector<std::unique_ptr<AgreementNode>> nodes(config.n);
  std::vector<HonestProcess*> processes(config.n, nullptr);
  for (std::size_t i = 0; i < config.n; ++i) {
    if (!adversary.is_byzantine(i)) {
      const std::size_t input_wire = i < config.input_wire_bytes.size()
                                         ? config.input_wire_bytes[i]
                                         : HonestProcess::kDenseWire;
      nodes[i] = std::make_unique<AgreementNode>(i, inputs[i],
                                                 config.round_function, ctx,
                                                 config.codec,
                                                 config.codec_seed,
                                                 input_wire);
      processes[i] = nodes[i].get();
    }
  }

  // Delivery floor n - t: a node may resolve a round at n - t messages,
  // and the network honors adversarial delays of honest messages only down
  // to that guaranteed "up to n messages" minimum.  The sync model runs
  // the same event engine with zero delays and timeout 0 (bitwise the
  // lockstep semantics); an async NetConfig plugs in its delay model,
  // loss, round timeout Delta and adversarial scheduling bound.
  std::unique_ptr<DelayModel> delay_model;
  EventNetworkConfig net_config;
  net_config.quorum = config.n - config.t;
  net_config.pool = config.pool;
  if (config.codec != nullptr && !config.codec->identity()) {
    net_config.codec = config.codec;
    net_config.codec_seed = config.codec_seed;
  }
  if (config.faults != nullptr) {
    net_config.faults = config.faults;
    net_config.fault_round_offset = config.fault_round;
    net_config.fault_membership_frozen = true;
  }
  if (config.net.async) {
    delay_model = make_delay_model(config.net, config.n);
    net_config.delay = delay_model.get();
    net_config.timeout = config.net.timeout > 0.0 ? config.net.timeout : -1.0;
    net_config.drop_probability = config.net.drop;
    net_config.bandwidth = config.net.bw;
    net_config.adversary_delay_bound = config.net.adv;
    net_config.seed = config.net.seed;
  }
  EventNetwork network(processes, adversary, net_config);
  AgreementResult result;
  for (std::size_t i = 0; i < config.n; ++i) {
    if (nodes[i]) result.honest_ids.push_back(i);
  }

  auto record_trace = [&] {
    const VectorList current = honest_vectors(nodes);
    // The convergence check is itself a pairwise-distance computation;
    // build it through the Gram-trick kernel over a contiguous copy
    // (pool-parallel when configured).
    result.trace.honest_diameter.push_back(
        DistanceMatrix(GradientBatch::from(current), config.pool).diameter());
    result.trace.honest_max_edge.push_back(
        Hyperbox::bounding(current).max_edge());
  };

  record_trace();
  const std::size_t rounds = fixed ? fixed_rounds : config.max_rounds;
  for (std::size_t r = 0; r < rounds; ++r) {
    if (!fixed && result.trace.honest_diameter.back() < config.epsilon) {
      result.converged = true;
      break;
    }
    network.run_round();
    ++result.rounds;
    result.trace.round_latency.push_back(network.last_round_latency());
    record_trace();
  }
  if (result.trace.honest_diameter.back() < config.epsilon) {
    result.converged = true;
  }

  result.outputs = honest_vectors(nodes);
  result.network = network.stats();
  // The protocol is over when the last round completed; now() can sit past
  // that instant when beyond-quorum stragglers were processed late.
  result.simulated_seconds = network.round_end_times().empty()
                                 ? 0.0
                                 : network.round_end_times().back();
  return result;
}

}  // namespace

AgreementResult run_approximate_agreement(const VectorList& inputs,
                                          Adversary& adversary,
                                          const AgreementConfig& config) {
  return run_impl(inputs, adversary, config, /*fixed=*/false, 0);
}

AgreementResult run_fixed_rounds_agreement(const VectorList& inputs,
                                           Adversary& adversary,
                                           std::size_t rounds,
                                           const AgreementConfig& config) {
  return run_impl(inputs, adversary, config, /*fixed=*/true, rounds);
}

}  // namespace bcl
