#include "agreement/protocol.hpp"

#include "obs/trace.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "linalg/distance_matrix.hpp"
#include "linalg/hyperbox.hpp"
#include "linalg/workspace.hpp"
#include "util/thread_pool.hpp"

namespace bcl {

namespace {

/// Cross-node memoization of one sub-round's expensive work
/// (AgreementConfig::share_subrounds).
///
/// Key: the inbox's exact row identity — the (sender, payload pointer,
/// payload size) triple of every message, in the sender-sorted delivery
/// order.  The event engine commits each sender's round value to the round
/// book's arena exactly once per sub-round (Byzantine values included:
/// fix_byzantine_values stores a single value per sender, rushing only
/// changes *when* it is fixed), and every delivery carries a view into
/// that storage.  Equal key therefore implies bitwise-equal inbox, and any
/// divergence (drops, timeouts, omission faults, honored delays trimming a
/// straggler) changes the key — the per-node fallback is automatic, not a
/// heuristic.
///
/// Entries hold either the full step output (current-independent round
/// functions: the step is a pure function of the inbox, so n Krum-family
/// evaluations collapse to one) or just the shared DistanceMatrix
/// (current-dependent functions like the sticky MD-GEOM tie-break, which
/// still pay per-node selection but share the O(m^2 d) build).  The first
/// node to arrive computes under std::call_once; the rest block briefly
/// and reuse.  advance_ready_nodes() finalizes nodes in parallel on the
/// engine's pool, so every path here is mutex/once-guarded (TSan-clean).
///
/// clear_round() must run between run_round() barriers: the arena recycles
/// payload storage across rounds, so a stale key could alias a fresh
/// payload at the same address.
class SubroundShareCache {
 public:
  struct Entry {
    std::once_flag once;
    Vector output;             ///< current-independent: the shared step result
    DistanceMatrix distances;  ///< current-dependent: the shared build
  };

  /// Returns the (created-if-absent) entry for this inbox.  `key` is
  /// caller-owned scratch, recycled across sub-rounds.
  std::shared_ptr<Entry> lookup(const std::vector<Message>& inbox,
                                std::vector<std::uintptr_t>& key) {
    key.clear();
    key.reserve(inbox.size() * 3);
    for (const Message& msg : inbox) {
      key.push_back(static_cast<std::uintptr_t>(msg.sender));
      key.push_back(reinterpret_cast<std::uintptr_t>(msg.payload.data()));
      key.push_back(static_cast<std::uintptr_t>(msg.payload.size()));
    }
    lookups_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Entry>& slot = entries_[key];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    return slot;
  }

  void count_build() { builds_.fetch_add(1, std::memory_order_relaxed); }

  void clear_round() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  std::size_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }
  std::size_t hits() const {
    return lookups_.load(std::memory_order_relaxed) - builds();
  }

 private:
  std::mutex mutex_;
  std::map<std::vector<std::uintptr_t>, std::shared_ptr<Entry>> entries_;
  std::atomic<std::size_t> lookups_{0};
  std::atomic<std::size_t> builds_{0};
};

/// Honest participant: holds its current vector, broadcasts it (through
/// the codec when one is configured), applies the round function to each
/// inbox.
class AgreementNode final : public HonestProcess {
 public:
  AgreementNode(std::size_t id, Vector input, RoundFunctionPtr round_function,
                AggregationContext ctx, const Codec* codec,
                std::uint64_t codec_seed, std::size_t input_wire,
                bool inbox_views, SubroundShareCache* cache)
      : id_(id),
        current_(std::move(input)),
        round_function_(std::move(round_function)),
        ctx_(ctx),
        codec_(codec != nullptr && !codec->identity() ? codec : nullptr),
        codec_seed_(codec_seed),
        input_wire_(input_wire),
        views_(inbox_views),
        cache_(cache) {}

  Vector outgoing(std::size_t round) const override {
    // Sub-round 0 ships the input as the trainer encoded it (see
    // AgreementConfig::codec): no re-encode, priced at input_wire_.
    if (codec_ == nullptr || round == 0) return current_;
    // Later sub-rounds encode the mixed vector: what leaves the node is
    // the lossy decode and what the engine prices is the encoded size.
    // The encode is deterministic per (codec_seed, id, round), so replays
    // agree.
    const CompressedGradient encoded = codec_->encode(
        current_.data(), current_.size(), codec_seed_, id_, round);
    wire_round_ = round;
    wire_bytes_ = encoded.wire_bytes();
    return encoded.decode();
  }

  std::size_t outgoing_wire_bytes(std::size_t round) const override {
    if (codec_ == nullptr) return kDenseWire;
    if (round == 0) return input_wire_;
    // The engine asks immediately after outgoing(round); a mismatched
    // round means no encode happened — price dense.
    if (wire_round_ != round) return kDenseWire;
    return wire_bytes_;
  }

  void receive(std::size_t /*round*/, std::vector<Message>&& inbox) override {
    // Under partial synchrony a timeout (or a dropped neighborhood) can
    // resolve a round below the n - t quorum.  The t-resilient round
    // functions are only sound on >= n - t inputs, so the node skips its
    // update and keeps its current vector for this sub-round.
    if (inbox.size() < ctx_.n - ctx_.t) return;
    // One batch + workspace per inbox: every distance consumer inside the
    // round function (Krum scores, medoid, minimum-diameter search, tie
    // enumeration) shares a single Gram-trick pairwise matrix for this
    // sub-round.  The view flavour borrows the engine's payload spans
    // through the node's pooled row table — zero copies, zero allocations
    // per receive() after the first — and is finished with before this
    // call returns, per the Message ownership rule.  Both flavours feed
    // identical bytes to identical kernels, so results are bitwise equal.
    const GradientBatch received = [&] {
      BCL_TRACE_SPAN("agreement.inbox_build");
      return views_ ? payload_batch_view(inbox, table_)
                    : payload_batch(inbox);
    }();
    if (cache_ == nullptr) {
      BCL_TRACE_SPAN("agreement.step");
      AggregationWorkspace workspace(received, ctx_.pool);
      current_ = round_function_->step(received, workspace, current_, ctx_);
      return;
    }
    const std::shared_ptr<SubroundShareCache::Entry> entry =
        cache_->lookup(inbox, sig_);
    if (round_function_->current_independent()) {
      // The step ignores current_, so the whole output is shareable: the
      // first node with this inbox computes it, everyone else copies.
      bool built = false;
      std::call_once(entry->once, [&] {
        BCL_TRACE_SPAN("agreement.gram_build");
        AggregationWorkspace workspace(received, ctx_.pool);
        entry->output =
            round_function_->step(received, workspace, current_, ctx_);
        cache_->count_build();
        built = true;
      });
      if (built) {
        current_ = entry->output;
      } else {
        BCL_TRACE_SPAN("agreement.shared_hit");
        current_ = entry->output;
      }
    } else {
      // Current-dependent round function: selection differs per node, but
      // the O(m^2 d) distance build over an identical inbox does not.
      std::call_once(entry->once, [&] {
        BCL_TRACE_SPAN("agreement.gram_build");
        entry->distances = DistanceMatrix(received, ctx_.pool);
        cache_->count_build();
      });
      BCL_TRACE_SPAN("agreement.step");
      AggregationWorkspace workspace(received, &entry->distances, ctx_.pool);
      current_ = round_function_->step(received, workspace, current_, ctx_);
    }
  }

  const Vector& current() const { return current_; }

 private:
  std::size_t id_;
  Vector current_;
  RoundFunctionPtr round_function_;
  AggregationContext ctx_;
  const Codec* codec_;
  std::uint64_t codec_seed_;
  std::size_t input_wire_;
  bool views_;
  SubroundShareCache* cache_;
  // Pooled scratch recycled across sub-rounds: the view batch's row table
  // and the share cache's key buffer never re-allocate after round 0.
  std::vector<const double*> table_;
  std::vector<std::uintptr_t> sig_;
  // outgoing() is const in the HonestProcess contract but the wire size of
  // the encode it just performed must reach outgoing_wire_bytes(); cached
  // per round (the engine is single-threaded across these two calls).
  mutable std::size_t wire_round_ = static_cast<std::size_t>(-1);
  mutable std::size_t wire_bytes_ = 0;
};

VectorList honest_vectors(const std::vector<std::unique_ptr<AgreementNode>>& nodes) {
  VectorList out;
  for (const auto& node : nodes) {
    if (node) out.push_back(node->current());
  }
  return out;
}

AgreementResult run_impl(const VectorList& inputs, Adversary& adversary,
                         const AgreementConfig& config, bool fixed,
                         std::size_t fixed_rounds) {
  if (config.n == 0 || config.n != inputs.size()) {
    throw std::invalid_argument(
        "run_approximate_agreement: inputs.size() must equal config.n");
  }
  if (!config.round_function) {
    throw std::invalid_argument("run_approximate_agreement: no round function");
  }
  const std::size_t f = adversary.count_byzantine(config.n);
  if (f > config.t) {
    throw std::invalid_argument(
        "run_approximate_agreement: adversary controls more than t nodes");
  }

  AggregationContext ctx;
  ctx.n = config.n;
  ctx.t = config.t;
  ctx.pool = nullptr;  // node-level parallelism is across nodes, not subsets
  ctx.metrics = config.metrics;

  SubroundShareCache cache;
  SubroundShareCache* const cache_ptr =
      config.share_subrounds ? &cache : nullptr;

  std::vector<std::unique_ptr<AgreementNode>> nodes(config.n);
  std::vector<HonestProcess*> processes(config.n, nullptr);
  for (std::size_t i = 0; i < config.n; ++i) {
    if (!adversary.is_byzantine(i)) {
      const std::size_t input_wire = i < config.input_wire_bytes.size()
                                         ? config.input_wire_bytes[i]
                                         : HonestProcess::kDenseWire;
      nodes[i] = std::make_unique<AgreementNode>(i, inputs[i],
                                                 config.round_function, ctx,
                                                 config.codec,
                                                 config.codec_seed,
                                                 input_wire,
                                                 config.inbox_views,
                                                 cache_ptr);
      processes[i] = nodes[i].get();
    }
  }

  // Delivery floor n - t: a node may resolve a round at n - t messages,
  // and the network honors adversarial delays of honest messages only down
  // to that guaranteed "up to n messages" minimum.  The sync model runs
  // the same event engine with zero delays and timeout 0 (bitwise the
  // lockstep semantics); an async NetConfig plugs in its delay model,
  // loss, round timeout Delta and adversarial scheduling bound.
  std::unique_ptr<DelayModel> delay_model;
  EventNetworkConfig net_config;
  net_config.quorum = config.n - config.t;
  net_config.pool = config.pool;
  net_config.metrics = config.metrics;
  if (config.codec != nullptr && !config.codec->identity()) {
    net_config.codec = config.codec;
    net_config.codec_seed = config.codec_seed;
  }
  if (config.faults != nullptr) {
    net_config.faults = config.faults;
    net_config.fault_round_offset = config.fault_round;
    net_config.fault_membership_frozen = true;
  }
  if (config.net.async) {
    delay_model = make_delay_model(config.net, config.n);
    net_config.delay = delay_model.get();
    net_config.timeout = config.net.timeout > 0.0 ? config.net.timeout : -1.0;
    net_config.drop_probability = config.net.drop;
    net_config.bandwidth = config.net.bw;
    net_config.adversary_delay_bound = config.net.adv;
    net_config.seed = config.net.seed;
  }
  EventNetwork network(processes, adversary, net_config);
  AgreementResult result;
  for (std::size_t i = 0; i < config.n; ++i) {
    if (nodes[i]) result.honest_ids.push_back(i);
  }

  auto record_trace = [&] {
    const VectorList current = honest_vectors(nodes);
    // The convergence check is itself a pairwise-distance computation;
    // build it through the Gram-trick kernel over a contiguous copy
    // (pool-parallel when configured).
    result.trace.honest_diameter.push_back(
        DistanceMatrix(GradientBatch::from(current), config.pool).diameter());
    result.trace.honest_max_edge.push_back(
        Hyperbox::bounding(current).max_edge());
  };

  record_trace();
  const std::size_t rounds = fixed ? fixed_rounds : config.max_rounds;
  for (std::size_t r = 0; r < rounds; ++r) {
    if (!fixed && result.trace.honest_diameter.back() < config.epsilon) {
      result.converged = true;
      break;
    }
    network.run_round();
    // run_round() is a barrier (no receive() in flight past it); drop the
    // round's keys before the arena recycles the payload storage they
    // point into.
    cache.clear_round();
    ++result.rounds;
    result.trace.round_latency.push_back(network.last_round_latency());
    record_trace();
  }
  if (result.trace.honest_diameter.back() < config.epsilon) {
    result.converged = true;
  }

  result.outputs = honest_vectors(nodes);
  result.network = network.stats();
  result.sharing.gram_builds = cache.builds();
  result.sharing.shared_hits = cache.hits();
  // The protocol is over when the last round completed; now() can sit past
  // that instant when beyond-quorum stragglers were processed late.
  result.simulated_seconds = network.round_end_times().empty()
                                 ? 0.0
                                 : network.round_end_times().back();
  return result;
}

}  // namespace

AgreementResult run_approximate_agreement(const VectorList& inputs,
                                          Adversary& adversary,
                                          const AgreementConfig& config) {
  return run_impl(inputs, adversary, config, /*fixed=*/false, 0);
}

AgreementResult run_fixed_rounds_agreement(const VectorList& inputs,
                                           Adversary& adversary,
                                           std::size_t rounds,
                                           const AgreementConfig& config) {
  return run_impl(inputs, adversary, config, /*fixed=*/true, rounds);
}

}  // namespace bcl
