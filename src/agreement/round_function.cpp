#include "agreement/round_function.hpp"

#include <limits>
#include <stdexcept>

#include "aggregation/registry.hpp"
#include "geometry/min_diameter.hpp"
#include "geometry/subsets.hpp"

namespace bcl {

RuleRound::RuleRound(AggregationRulePtr rule) : rule_(std::move(rule)) {
  if (!rule_) throw std::invalid_argument("RuleRound: null rule");
}

std::string RuleRound::name() const { return rule_->name(); }

Vector RuleRound::step(const VectorList& received, const Vector& /*current*/,
                       const AggregationContext& ctx) const {
  return rule_->aggregate(received, ctx);
}

Vector StickyMinDiameterGeoRound::step(const VectorList& received,
                                       const Vector& current,
                                       const AggregationContext& ctx) const {
  if (received.size() < ctx.keep()) {
    throw std::invalid_argument("StickyMinDiameterGeoRound: too few vectors");
  }
  const auto tied = min_diameter_subsets(received, ctx.keep());
  Vector best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& candidate : tied) {
    const Vector median =
        geometric_median_point(gather(received, candidate.indices), options_);
    const double dist = distance(median, current);
    if (dist < best_dist) {
      best_dist = dist;
      best = median;
    }
  }
  return best;
}

RoundFunctionPtr make_round_function(const std::string& rule_name) {
  if (rule_name == "MD-GEOM-STICKY") {
    return std::make_shared<StickyMinDiameterGeoRound>();
  }
  return std::make_shared<RuleRound>(make_rule(rule_name));
}

}  // namespace bcl
