#include "agreement/round_function.hpp"

#include <limits>
#include <stdexcept>

#include "aggregation/registry.hpp"
#include "geometry/min_diameter.hpp"
#include "geometry/subsets.hpp"

namespace bcl {

Vector RoundFunction::step(const VectorList& received,
                           AggregationWorkspace& workspace,
                           const Vector& current,
                           const AggregationContext& ctx) const {
  if (workspace.size() != received.size()) {
    throw std::invalid_argument(
        "RoundFunction::step: workspace was built over a different inbox");
  }
  return step(received, current, ctx);
}

Vector RoundFunction::step(const GradientBatch& batch,
                           AggregationWorkspace& workspace,
                           const Vector& current,
                           const AggregationContext& ctx) const {
  if (workspace.batch() != &batch) {
    throw std::invalid_argument(
        "RoundFunction::step: workspace was built over a different batch");
  }
  return step(workspace.points(), workspace, current, ctx);
}

RuleRound::RuleRound(AggregationRulePtr rule) : rule_(std::move(rule)) {
  if (!rule_) throw std::invalid_argument("RuleRound: null rule");
}

std::string RuleRound::name() const { return rule_->name(); }

Vector RuleRound::step(const VectorList& received, const Vector& /*current*/,
                       const AggregationContext& ctx) const {
  return rule_->aggregate(received, ctx);
}

Vector RuleRound::step(const VectorList& received,
                       AggregationWorkspace& workspace,
                       const Vector& /*current*/,
                       const AggregationContext& ctx) const {
  return rule_->aggregate(received, workspace, ctx);
}

Vector RuleRound::step(const GradientBatch& batch,
                       AggregationWorkspace& workspace,
                       const Vector& /*current*/,
                       const AggregationContext& ctx) const {
  return rule_->aggregate(batch, workspace, ctx);
}

namespace {

Vector sticky_step(const VectorList& received, const DistanceMatrix& dist,
                   const Vector& current, const AggregationContext& ctx,
                   const WeiszfeldOptions& options) {
  const auto tied = min_diameter_subsets(dist, ctx.keep());
  Vector best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& candidate : tied) {
    const Vector median =
        geometric_median_point(gather(received, candidate.indices), options);
    const double d = distance(median, current);
    if (d < best_dist) {
      best_dist = d;
      best = median;
    }
  }
  return best;
}

}  // namespace

Vector StickyMinDiameterGeoRound::step(const VectorList& received,
                                       const Vector& current,
                                       const AggregationContext& ctx) const {
  AggregationWorkspace workspace(received, ctx.pool);
  return step(received, workspace, current, ctx);
}

Vector StickyMinDiameterGeoRound::step(const VectorList& received,
                                       AggregationWorkspace& workspace,
                                       const Vector& current,
                                       const AggregationContext& ctx) const {
  if (received.size() < ctx.keep()) {
    throw std::invalid_argument("StickyMinDiameterGeoRound: too few vectors");
  }
  return sticky_step(received, workspace.distances(), current, ctx, options_);
}

RoundFunctionPtr make_round_function(const std::string& rule_name) {
  if (rule_name == "MD-GEOM-STICKY") {
    return std::make_shared<StickyMinDiameterGeoRound>();
  }
  return std::make_shared<RuleRound>(make_rule(rule_name));
}

}  // namespace bcl
