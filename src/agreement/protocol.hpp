#pragma once
// Multidimensional approximate agreement protocols (Section 2.3).
//
// Every honest node starts with an input vector; in each synchronous round
// it reliably broadcasts its vector, collects the inbox and applies a round
// function.  The protocol targets epsilon-agreement: any two honest outputs
// within Euclidean distance epsilon.  For the hyperbox round function this
// is Algorithm 2 and Theorem 4.4 guarantees E_max halves every round; for
// MD-GEOM it is Algorithm 1, which Lemma 4.2 shows need not converge.

#include <cstddef>
#include <optional>
#include <vector>

#include "agreement/round_function.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/event_network.hpp"

namespace bcl {

class ThreadPool;

struct AgreementConfig {
  std::size_t n = 0;  ///< nodes in the system (honest + Byzantine)
  std::size_t t = 0;  ///< designed fault tolerance (t < n/3 for hyperbox)
  /// Round function applied by every honest node.
  RoundFunctionPtr round_function;
  /// Stop once the honest vectors have pairwise distance < epsilon
  /// (checked omnisciently by the harness, as usual in the agreement
  /// literature when the round count is not fixed a priori).
  double epsilon = 1e-6;
  /// Hard round cap (also the fixed round count when run_fixed_rounds).
  std::size_t max_rounds = 64;
  /// Optional pool for parallel node execution.
  ThreadPool* pool = nullptr;
  /// Timing model of the rounds: the default (sync) runs the zero-delay
  /// lockstep engine; an async NetConfig runs the same protocol on the
  /// discrete-event engine with that delay/drop/timeout configuration
  /// (net.seed drives the sampled latencies).
  NetConfig net;
};

/// Per-round convergence trace.
struct AgreementTrace {
  /// Diameter of the honest vector set at the start of each round
  /// (index 0 = inputs).
  std::vector<double> honest_diameter;
  /// E_max of the bounding box of honest vectors at the start of each round.
  std::vector<double> honest_max_edge;
  /// Simulated duration of each executed round (empty index 0 offset:
  /// entry r is the latency of round r).  All zeros under the sync model.
  std::vector<double> round_latency;
};

struct AgreementResult {
  /// Final vector of each honest node, ordered by node id.
  VectorList outputs;
  /// Ids of the honest nodes, aligned with `outputs`.
  std::vector<std::size_t> honest_ids;
  std::size_t rounds = 0;
  bool converged = false;  ///< pairwise distance < epsilon reached
  AgreementTrace trace;
  NetworkStats network;
  /// Total simulated time of the run (0 under the sync model).
  double simulated_seconds = 0.0;
};

/// Runs approximate agreement.  `inputs[i]` is the input vector of node i;
/// entries at Byzantine ids (per the adversary) are ignored.  Throws if the
/// adversary controls more than t ids or if fewer than n - t honest nodes
/// remain.
AgreementResult run_approximate_agreement(const VectorList& inputs,
                                          Adversary& adversary,
                                          const AgreementConfig& config);

/// Same protocol but always runs exactly `rounds` rounds (the decentralized
/// learning schedule of the paper uses ceil(log2 t) sub-rounds per learning
/// iteration instead of an epsilon test).
AgreementResult run_fixed_rounds_agreement(const VectorList& inputs,
                                           Adversary& adversary,
                                           std::size_t rounds,
                                           const AgreementConfig& config);

}  // namespace bcl
