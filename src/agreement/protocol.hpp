#pragma once
// Multidimensional approximate agreement protocols (Section 2.3).
//
// Every honest node starts with an input vector; in each synchronous round
// it reliably broadcasts its vector, collects the inbox and applies a round
// function.  The protocol targets epsilon-agreement: any two honest outputs
// within Euclidean distance epsilon.  For the hyperbox round function this
// is Algorithm 2 and Theorem 4.4 guarantees E_max halves every round; for
// MD-GEOM it is Algorithm 1, which Lemma 4.2 shows need not converge.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "agreement/round_function.hpp"
#include "compression/codec.hpp"
#include "network/adversary.hpp"
#include "network/delay_model.hpp"
#include "network/event_network.hpp"

namespace bcl {

class ThreadPool;

struct AgreementConfig {
  std::size_t n = 0;  ///< nodes in the system (honest + Byzantine)
  std::size_t t = 0;  ///< designed fault tolerance (t < n/3 for hyperbox)
  /// Round function applied by every honest node.
  RoundFunctionPtr round_function;
  /// Stop once the honest vectors have pairwise distance < epsilon
  /// (checked omnisciently by the harness, as usual in the agreement
  /// literature when the round count is not fixed a priori).
  double epsilon = 1e-6;
  /// Hard round cap (also the fixed round count when run_fixed_rounds).
  std::size_t max_rounds = 64;
  /// Optional pool for parallel node execution.
  ThreadPool* pool = nullptr;
  /// Timing model of the rounds: the default (sync) runs the zero-delay
  /// lockstep engine; an async NetConfig runs the same protocol on the
  /// discrete-event engine with that delay/drop/timeout configuration
  /// (net.seed drives the sampled latencies).
  NetConfig net;
  /// Optional gradient codec (not owned; must outlive the run).
  /// Sub-round 0 broadcasts each node's input *untransformed* — the
  /// trainers already routed the inputs through the codec (their loss
  /// lives in the error-feedback residuals), and re-encoding a stochastic
  /// codec under a fresh stream would re-sparsify onto a different
  /// support, silently destroying the gradient outside EF's view.  From
  /// sub-round 1 on, the mixed vectors are encoded through the codec: the
  /// payload delivered is the lossy decode and the wire size priced by
  /// the engine is the encoded size.  nullptr or an identity codec =
  /// dense broadcasts, bitwise the uncompressed protocol.
  const Codec* codec = nullptr;
  /// Seed of the codec's per-(sender, round) randomness (the trainers mix
  /// it per learning round, like net.seed).
  std::uint64_t codec_seed = 0;
  /// Wire sizes of the round-0 inputs, indexed by node id (the encoded
  /// sizes the trainer produced).  Empty, or HonestProcess::kDenseWire at
  /// an entry = price that input dense.  Ignored without a codec.
  std::vector<std::size_t> input_wire_bytes;
  /// Liveness schedule (not owned; must outlive the run).  Membership is
  /// frozen at the plan's `fault_round` across every sub-round of this
  /// agreement instance: the decentralized trainer runs one instance per
  /// learning round and advances the plan between them, so the quorum
  /// degrades with the learning round's live set but sub-rounds stay
  /// internally consistent.  nullptr = everyone up.
  const FaultPlan* faults = nullptr;
  std::size_t fault_round = 0;
  /// Zero-copy inboxes: nodes aggregate directly over borrowed views of
  /// the engine's round-book payload spans instead of materializing an
  /// owned n x d copy per node per sub-round (memory O(n^2 d) -> O(n d)).
  /// Same bytes reach the same kernels either way, so results are bitwise
  /// identical; the knob exists for A/B benching and bisection.
  bool inbox_views = true;
  /// Cross-node sub-round sharing: nodes whose inboxes are exactly equal
  /// (same senders delivering the same stored payload spans — the engine
  /// commits each sender's round value exactly once, so pointer identity
  /// is an exact content signature) share one distance build, and for
  /// current-independent round functions the entire step output.  Under
  /// net=sync with no faults every honest node sees the same inbox, so n
  /// O(n^2 d) builds collapse to one; divergent inboxes (drops, timeouts,
  /// omissions) mismatch the signature and fall back per node.  Bitwise
  /// identical to the unshared path by construction.
  bool share_subrounds = true;
  /// Optional per-scenario metrics registry: forwarded to the event
  /// engine (per-message delay histogram) and the aggregation context
  /// (sketch certification counters).  Not owned; nullptr records
  /// nothing.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-round convergence trace.
struct AgreementTrace {
  /// Diameter of the honest vector set at the start of each round
  /// (index 0 = inputs).
  std::vector<double> honest_diameter;
  /// E_max of the bounding box of honest vectors at the start of each round.
  std::vector<double> honest_max_edge;
  /// Simulated duration of each executed round (empty index 0 offset:
  /// entry r is the latency of round r).  All zeros under the sync model.
  std::vector<double> round_latency;
};

/// Cross-node sub-round sharing counters (AgreementConfig::share_subrounds).
struct SharingStats {
  /// Distance/step builds actually executed across all sub-rounds.
  std::size_t gram_builds = 0;
  /// receive() calls that reused another node's build instead of paying
  /// their own (lookups - builds).
  std::size_t shared_hits = 0;
};

struct AgreementResult {
  /// Final vector of each honest node, ordered by node id.
  VectorList outputs;
  /// Ids of the honest nodes, aligned with `outputs`.
  std::vector<std::size_t> honest_ids;
  std::size_t rounds = 0;
  bool converged = false;  ///< pairwise distance < epsilon reached
  AgreementTrace trace;
  NetworkStats network;
  /// Total simulated time of the run (0 under the sync model).
  double simulated_seconds = 0.0;
  /// Cross-node sharing effectiveness (zeros when share_subrounds is off).
  SharingStats sharing;
};

/// Runs approximate agreement.  `inputs[i]` is the input vector of node i;
/// entries at Byzantine ids (per the adversary) are ignored.  Throws if the
/// adversary controls more than t ids or if fewer than n - t honest nodes
/// remain.
AgreementResult run_approximate_agreement(const VectorList& inputs,
                                          Adversary& adversary,
                                          const AgreementConfig& config);

/// Same protocol but always runs exactly `rounds` rounds (the decentralized
/// learning schedule of the paper uses ceil(log2 t) sub-rounds per learning
/// iteration instead of an epsilon test).
AgreementResult run_fixed_rounds_agreement(const VectorList& inputs,
                                           Adversary& adversary,
                                           std::size_t rounds,
                                           const AgreementConfig& config);

}  // namespace bcl
