#pragma once
// Round functions: how an honest node maps its inbox to its next vector.
//
// Most protocols apply a stateless aggregation rule to the received
// multiset.  MD-GEOM additionally depends on tie-breaking among equally
// minimal-diameter subsets (Definition 3.4 notes the set is not unique);
// StickyMinDiameterGeoRound exposes the natural "prefer a subset close to
// my current vector" choice, which is exactly the freedom Lemma 4.2's
// adversary needs to stall convergence.

#include <memory>
#include <string>

#include "aggregation/rule.hpp"
#include "geometry/weiszfeld.hpp"

namespace bcl {

/// Maps (inbox, own current vector) to the node's next vector.
class RoundFunction {
 public:
  virtual ~RoundFunction() = default;
  virtual std::string name() const = 0;
  /// `received` is the round's inbox (>= n - t vectors); `current` is the
  /// node's own vector at the start of the round.
  virtual Vector step(const VectorList& received, const Vector& current,
                      const AggregationContext& ctx) const = 0;
  /// Workspace-aware step: `workspace` was built over `received` by the
  /// protocol, so every distance consumer in the round shares one pairwise
  /// matrix.  Default adapter ignores the workspace and calls the legacy
  /// step.
  virtual Vector step(const VectorList& received,
                      AggregationWorkspace& workspace, const Vector& current,
                      const AggregationContext& ctx) const;

  /// Batch-native step over the contiguous inbox layout (the protocol's
  /// fast path: Gram-trick distances, blocked reductions).  The default
  /// adapter dispatches to the workspace step through the workspace's
  /// cached VectorList view.
  virtual Vector step(const GradientBatch& batch,
                      AggregationWorkspace& workspace, const Vector& current,
                      const AggregationContext& ctx) const;

  /// True when step() ignores `current` (the node's own vector), i.e. the
  /// output is a pure function of the inbox.  The agreement protocol then
  /// memoizes the *entire* step result across nodes whose sub-round
  /// inboxes coincide; current-dependent round functions (the sticky
  /// MD-GEOM tie-break) share only the distance build.  Conservative
  /// default: false.
  virtual bool current_independent() const { return false; }
};

using RoundFunctionPtr = std::shared_ptr<const RoundFunction>;

/// Adapter: apply a stateless aggregation rule, ignoring `current`.
class RuleRound final : public RoundFunction {
 public:
  explicit RuleRound(AggregationRulePtr rule);
  std::string name() const override;
  Vector step(const VectorList& received, const Vector& current,
              const AggregationContext& ctx) const override;
  Vector step(const VectorList& received, AggregationWorkspace& workspace,
              const Vector& current,
              const AggregationContext& ctx) const override;
  Vector step(const GradientBatch& batch, AggregationWorkspace& workspace,
              const Vector& current,
              const AggregationContext& ctx) const override;
  /// A stateless rule never reads `current`: the whole step output can be
  /// shared across nodes with identical inboxes.
  bool current_independent() const override { return true; }

 private:
  AggregationRulePtr rule_;
};

/// MD-GEOM with sticky tie-breaking: among all minimum-diameter
/// (n - t)-subsets, pick the one whose geometric median is closest to the
/// node's current vector.  Deterministic, and a natural implementation
/// choice — which is precisely why Lemma 4.2's non-convergence is a real
/// hazard rather than an adversarial curiosity.
class StickyMinDiameterGeoRound final : public RoundFunction {
 public:
  explicit StickyMinDiameterGeoRound(WeiszfeldOptions options = {})
      : options_(options) {}
  std::string name() const override { return "MD-GEOM-STICKY"; }
  Vector step(const VectorList& received, const Vector& current,
              const AggregationContext& ctx) const override;
  Vector step(const VectorList& received, AggregationWorkspace& workspace,
              const Vector& current,
              const AggregationContext& ctx) const override;

 private:
  WeiszfeldOptions options_;
};

/// Convenience constructors.
RoundFunctionPtr make_round_function(const std::string& rule_name);

}  // namespace bcl
