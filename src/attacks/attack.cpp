#include "attacks/attack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcl {

std::optional<Vector> SignFlipAttack::corrupt(
    const Vector& own_gradient, const VectorList& /*honest_gradients*/,
    std::size_t /*round*/, Rng& /*rng*/) const {
  return scale(own_gradient, -scale_);
}

std::optional<Vector> CrashAttack::corrupt(const Vector& own_gradient,
                                           const VectorList& /*honest*/,
                                           std::size_t round,
                                           Rng& /*rng*/) const {
  if (round >= from_round_) return std::nullopt;
  return own_gradient;
}

std::optional<Vector> RandomGradientAttack::corrupt(
    const Vector& own_gradient, const VectorList& /*honest*/,
    std::size_t /*round*/, Rng& rng) const {
  Vector out(own_gradient.size());
  for (double& x : out) x = rng.gaussian(0.0, sigma_);
  return out;
}

std::optional<Vector> ScaleAttack::corrupt(const Vector& own_gradient,
                                           const VectorList& /*honest*/,
                                           std::size_t /*round*/,
                                           Rng& /*rng*/) const {
  return scale(own_gradient, factor_);
}

std::optional<Vector> ZeroAttack::corrupt(const Vector& own_gradient,
                                          const VectorList& /*honest*/,
                                          std::size_t /*round*/,
                                          Rng& /*rng*/) const {
  return zeros(own_gradient.size());
}

std::optional<Vector> OppositeMeanAttack::corrupt(
    const Vector& own_gradient, const VectorList& honest_gradients,
    std::size_t /*round*/, Rng& /*rng*/) const {
  if (honest_gradients.empty()) return scale(own_gradient, -scale_);
  return scale(mean(honest_gradients), -scale_);
}

std::optional<Vector> StaleStrikeAttack::corrupt(
    const Vector& own_gradient, const VectorList& honest_gradients,
    std::size_t /*round*/, Rng& /*rng*/) const {
  // Strike only into thin cohorts when a threshold is set; blending in
  // with an honest-looking gradient otherwise keeps the attacker under
  // the radar of history-free defences.
  if (cohort_ > 0 && honest_gradients.size() > cohort_) return own_gradient;
  if (honest_gradients.empty()) return scale(own_gradient, -scale_);
  return scale(mean(honest_gradients), -scale_);
}

std::optional<Vector> ALittleIsEnoughAttack::corrupt(
    const Vector& own_gradient, const VectorList& honest_gradients,
    std::size_t /*round*/, Rng& /*rng*/) const {
  if (honest_gradients.empty()) return own_gradient;
  const std::size_t d = own_gradient.size();
  const Vector mu = mean(honest_gradients);
  Vector out(d);
  const double inv = 1.0 / static_cast<double>(honest_gradients.size());
  for (std::size_t k = 0; k < d; ++k) {
    double var = 0.0;
    for (const auto& g : honest_gradients) {
      var += (g[k] - mu[k]) * (g[k] - mu[k]);
    }
    out[k] = mu[k] + z_ * std::sqrt(var * inv);
  }
  return out;
}

std::optional<Vector> MimicAttack::corrupt(const Vector& own_gradient,
                                           const VectorList& honest_gradients,
                                           std::size_t /*round*/,
                                           Rng& /*rng*/) const {
  if (honest_gradients.empty()) return own_gradient;
  const std::size_t idx = std::min(target_, honest_gradients.size() - 1);
  return honest_gradients[idx];
}

std::optional<Vector> MinMaxAttack::corrupt(const Vector& own_gradient,
                                            const VectorList& honest_gradients,
                                            std::size_t /*round*/,
                                            Rng& /*rng*/) const {
  if (honest_gradients.empty()) return scale(own_gradient, -1.0);
  const Vector mu = mean(honest_gradients);
  const double mu_norm = norm2(mu);
  if (mu_norm == 0.0) return mu;  // no descent direction to oppose
  const Vector p = scale(mu, -1.0 / mu_norm);

  // Honest diameter: the distance budget any crafted vector must respect to
  // look like one more honest straggler under pairwise-distance filters.
  const double budget = diameter(honest_gradients);

  // fits(gamma): max_i ||mu + gamma p - g_i|| <= budget.  Monotone in gamma
  // (the crafted point moves along a ray leaving the honest hull), so the
  // largest feasible gamma is found by doubling + bisection.
  auto fits = [&](double gamma) {
    Vector mal = mu;
    axpy(mal, gamma, p);
    for (const auto& g : honest_gradients) {
      if (distance(mal, g) > budget) return false;
    }
    return true;
  };
  if (!fits(0.0)) return mu;  // degenerate (budget 0 with spread): stay put
  double lo = 0.0;
  double hi = std::max(budget, 1e-12);
  for (int i = 0; i < 60 && fits(hi); ++i) {
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (lo + hi);
    (fits(mid) ? lo : hi) = mid;
  }
  Vector out = mu;
  axpy(out, lo, p);
  return out;
}

std::optional<Vector> LabelFlipAttack::corrupt(const Vector& own_gradient,
                                               const VectorList& /*honest*/,
                                               std::size_t /*round*/,
                                               Rng& /*rng*/) const {
  return own_gradient;
}

std::optional<Vector> NoAttack::corrupt(const Vector& own_gradient,
                                        const VectorList& /*honest*/,
                                        std::size_t /*round*/,
                                        Rng& /*rng*/) const {
  return own_gradient;
}

void flip_labels_in_place(ml::Dataset& dataset,
                          const std::vector<std::size_t>& shard) {
  for (std::size_t i : shard) {
    const std::uint8_t y = dataset.labels.at(i);
    dataset.labels[i] =
        static_cast<std::uint8_t>(dataset.num_classes - 1 - y);
  }
}

const ml::Dataset* poison_byzantine_shards(
    const GradientAttack& attack, const ml::Dataset& train,
    const std::vector<std::vector<std::size_t>>& shards,
    std::size_t num_byzantine, ml::Dataset& poisoned_storage) {
  if (num_byzantine == 0 || !attack.poisons_labels()) return &train;
  poisoned_storage = train;
  for (std::size_t i = shards.size() - num_byzantine; i < shards.size();
       ++i) {
    flip_labels_in_place(poisoned_storage, shards[i]);
  }
  return &poisoned_storage;
}

}  // namespace bcl
