#include "attacks/attack.hpp"

#include <cmath>
#include <stdexcept>

namespace bcl {

std::optional<Vector> SignFlipAttack::corrupt(
    const Vector& own_gradient, const VectorList& /*honest_gradients*/,
    std::size_t /*round*/, Rng& /*rng*/) const {
  return scale(own_gradient, -scale_);
}

std::optional<Vector> CrashAttack::corrupt(const Vector& own_gradient,
                                           const VectorList& /*honest*/,
                                           std::size_t round,
                                           Rng& /*rng*/) const {
  if (round >= from_round_) return std::nullopt;
  return own_gradient;
}

std::optional<Vector> RandomGradientAttack::corrupt(
    const Vector& own_gradient, const VectorList& /*honest*/,
    std::size_t /*round*/, Rng& rng) const {
  Vector out(own_gradient.size());
  for (double& x : out) x = rng.gaussian(0.0, sigma_);
  return out;
}

std::optional<Vector> ScaleAttack::corrupt(const Vector& own_gradient,
                                           const VectorList& /*honest*/,
                                           std::size_t /*round*/,
                                           Rng& /*rng*/) const {
  return scale(own_gradient, factor_);
}

std::optional<Vector> ZeroAttack::corrupt(const Vector& own_gradient,
                                          const VectorList& /*honest*/,
                                          std::size_t /*round*/,
                                          Rng& /*rng*/) const {
  return zeros(own_gradient.size());
}

std::optional<Vector> OppositeMeanAttack::corrupt(
    const Vector& own_gradient, const VectorList& honest_gradients,
    std::size_t /*round*/, Rng& /*rng*/) const {
  if (honest_gradients.empty()) return scale(own_gradient, -scale_);
  return scale(mean(honest_gradients), -scale_);
}

std::optional<Vector> ALittleIsEnoughAttack::corrupt(
    const Vector& own_gradient, const VectorList& honest_gradients,
    std::size_t /*round*/, Rng& /*rng*/) const {
  if (honest_gradients.empty()) return own_gradient;
  const std::size_t d = own_gradient.size();
  const Vector mu = mean(honest_gradients);
  Vector out(d);
  const double inv = 1.0 / static_cast<double>(honest_gradients.size());
  for (std::size_t k = 0; k < d; ++k) {
    double var = 0.0;
    for (const auto& g : honest_gradients) {
      var += (g[k] - mu[k]) * (g[k] - mu[k]);
    }
    out[k] = mu[k] + z_ * std::sqrt(var * inv);
  }
  return out;
}

std::optional<Vector> NoAttack::corrupt(const Vector& own_gradient,
                                        const VectorList& /*honest*/,
                                        std::size_t /*round*/,
                                        Rng& /*rng*/) const {
  return own_gradient;
}

GradientAttackPtr make_attack(const std::string& name) {
  if (name == "none") return std::make_shared<NoAttack>();
  if (name == "sign-flip") return std::make_shared<SignFlipAttack>();
  if (name == "sign-flip-10") return std::make_shared<SignFlipAttack>(10.0);
  if (name == "crash") return std::make_shared<CrashAttack>();
  if (name == "random") return std::make_shared<RandomGradientAttack>();
  if (name == "scale") return std::make_shared<ScaleAttack>();
  if (name == "zero") return std::make_shared<ZeroAttack>();
  if (name == "opposite-mean") return std::make_shared<OppositeMeanAttack>();
  if (name == "alie") return std::make_shared<ALittleIsEnoughAttack>();
  throw std::invalid_argument("make_attack: unknown attack '" + name + "'");
}

std::vector<std::string> all_attack_names() {
  return {"none",  "sign-flip", "sign-flip-10", "crash",
          "random", "scale",    "zero",         "opposite-mean", "alie"};
}

void flip_labels_in_place(ml::Dataset& dataset,
                          const std::vector<std::size_t>& shard) {
  for (std::size_t i : shard) {
    const std::uint8_t y = dataset.labels.at(i);
    dataset.labels[i] =
        static_cast<std::uint8_t>(dataset.num_classes - 1 - y);
  }
}

}  // namespace bcl
