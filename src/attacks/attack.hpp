#pragma once
// Byzantine client behaviours for collaborative learning (Section 5.1).
//
// Threat model.  A gradient attack decides what a Byzantine client submits
// in a learning round.  Per the standard omniscient threat model, the
// attacker sees (a) the gradient the client would have submitted if honest
// (computed on its real local shard) and (b) every honest submission of the
// round, before the aggregation rule runs.  Byzantine clients may collude:
// in both trainers every Byzantine client shares one GradientAttack
// instance, so "all attackers submit the same crafted vector" is the
// default collusion mode.  Attacks must not mutate shared state in
// corrupt() — the trainers may call it from multiple Byzantine ids in one
// round, and determinism is owed to the caller-provided Rng alone.
//
// The paper's principal attack is the sign flip: compute the local
// gradient, invert its sign, submit it.  Crash failures, the classic
// baseline attacks from the surveyed literature (random, scale, zero,
// opposite-mean, ALIE) and the stealth/collusion family (IPM, mimic,
// min-max, label-flip) are included for the ablation scenarios.
//
// Name-based construction lives in attacks/registry.hpp (`make_attack`),
// mirroring the aggregation-rule registry.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "linalg/vector_ops.hpp"
#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace bcl {

/// Interface of one Byzantine behaviour.  Implementations are immutable
/// after construction (all round-to-round variation flows through the
/// corrupt() arguments), so one shared_ptr<const GradientAttack> can serve
/// every Byzantine client of a run concurrently.
class GradientAttack {
 public:
  virtual ~GradientAttack() = default;

  /// Canonical family name as registered with make_attack ("sign-flip",
  /// "mimic", ...).  Parameterized instances report the family, not the
  /// parameters: make_attack("sign-flip:scale=2")->name() == "sign-flip".
  virtual std::string name() const = 0;

  /// The vector the Byzantine client submits this round; nullopt = silent
  /// (crash / omitted broadcast).  `own_gradient` is the gradient the
  /// client would have submitted if honest; `honest_gradients` are the
  /// actual honest submissions of the round (may be empty when the caller
  /// has no honest view, e.g. unit tests — attacks must degrade gracefully
  /// to a function of own_gradient).  Must be deterministic given
  /// (arguments, rng state) and must not retain references to them.
  virtual std::optional<Vector> corrupt(const Vector& own_gradient,
                                        const VectorList& honest_gradients,
                                        std::size_t round, Rng& rng) const = 0;

  /// True if this behaviour corrupts the Byzantine clients' *data* rather
  /// than (or in addition to) their submitted vectors.  The trainers check
  /// this once at setup and apply flip_labels_in_place to a copy of the
  /// Byzantine shards, so the "own gradient" passed to corrupt() is already
  /// computed on poisoned data.  Default: false.
  virtual bool poisons_labels() const { return false; }

  /// Staleness the attacker claims for the upload it starts in `round`
  /// under a bounded-staleness server with acceptance bound `tau` (the
  /// stale= dimension): the submission arrives that many versions late,
  /// disguised as an honest straggler.  The caller clamps to tau.  Most
  /// attacks rush (0, the default); StaleStrikeAttack returns tau so its
  /// poison lands in the thinnest accepted cohort.  Pure function of its
  /// arguments, like corrupt().
  virtual std::size_t submit_staleness(std::size_t round,
                                       std::size_t tau) const {
    (void)round;
    (void)tau;
    return 0;
  }
};

using GradientAttackPtr = std::shared_ptr<const GradientAttack>;

/// Sign flip (the evaluation's main attack): submit -scale * own_gradient.
/// scale defaults to 1; scale=10 is the amplified El-Mhamdi et al. variant.
class SignFlipAttack final : public GradientAttack {
 public:
  explicit SignFlipAttack(double attack_scale = 1.0) : scale_(attack_scale) {}
  std::string name() const override { return "sign-flip"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double scale_;
};

/// Crash from a given round on (silent before contributing anything when
/// from_round == 0); honest until then.
class CrashAttack final : public GradientAttack {
 public:
  explicit CrashAttack(std::size_t from_round = 0) : from_round_(from_round) {}
  std::string name() const override { return "crash"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  std::size_t from_round_;
};

/// Gaussian noise of the given sigma, ignoring the data entirely (the
/// "random parameter modification" attack class).
class RandomGradientAttack final : public GradientAttack {
 public:
  explicit RandomGradientAttack(double sigma = 1.0) : sigma_(sigma) {}
  std::string name() const override { return "random"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double sigma_;
};

/// Scales the honest gradient by a large factor (magnitude attack).
class ScaleAttack final : public GradientAttack {
 public:
  explicit ScaleAttack(double factor = 100.0) : factor_(factor) {}
  std::string name() const override { return "scale"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double factor_;
};

/// Always submits the zero vector (lazy freerider).
class ZeroAttack final : public GradientAttack {
 public:
  std::string name() const override { return "zero"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
};

/// Blanchard et al.'s omniscient attack: submit the negated mean of the
/// honest gradients, cancelling linear aggregation.  Base of
/// InnerProductAttack, which is the same map in a different scale regime.
class OppositeMeanAttack : public GradientAttack {
 public:
  explicit OppositeMeanAttack(double attack_scale = 1.0)
      : scale_(attack_scale) {}
  std::string name() const override { return "opposite-mean"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double scale_;
};

/// Staleness-exploiting strike (the stale= dimension's adversary): delays
/// every submission to land at exactly the maximal accepted staleness
/// (submit_staleness returns tau), then submits -scale * mean of the honest
/// gradients that arrived alongside it.  Late rounds are where the cohort
/// is thinnest — stragglers rejected, crashed clients absent — so the same
/// opposite-mean poison meets the least honest mass that can outvote it;
/// `cohort` > 0 additionally holds fire (honest pass-through) whenever more
/// than that many honest gradients landed in the round.
class StaleStrikeAttack final : public GradientAttack {
 public:
  explicit StaleStrikeAttack(double attack_scale = 1.0,
                             std::size_t cohort = 0)
      : scale_(attack_scale), cohort_(cohort) {}
  std::string name() const override { return "stale-strike"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
  std::size_t submit_staleness(std::size_t round,
                               std::size_t tau) const override {
    (void)round;
    return tau;
  }

 private:
  double scale_;
  std::size_t cohort_;
};

/// "A Little Is Enough" (Baruch et al.): submits mean(honest) +
/// z * std(honest) per coordinate — a stealth attack that stays inside the
/// honest spread, designed to defeat trimming-style defences slowly.
class ALittleIsEnoughAttack final : public GradientAttack {
 public:
  explicit ALittleIsEnoughAttack(double z = 1.5) : z_(z) {}
  std::string name() const override { return "alie"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double z_;
};

/// Inner-product manipulation (Xie et al., "Fall of Empires"): every
/// attacker submits -epsilon * mean(honest) with a *small* epsilon, so the
/// crafted vector sits close to the honest cluster (surviving
/// distance-based filters) while pushing the aggregate's inner product
/// with the true descent direction toward/below zero.  The map is
/// opposite-mean's; only the name and the default (stealth-regime epsilon
/// instead of full cancellation) differ, so it shares the implementation.
class InnerProductAttack final : public OppositeMeanAttack {
 public:
  explicit InnerProductAttack(double epsilon = 0.1)
      : OppositeMeanAttack(epsilon) {}
  std::string name() const override { return "ipm"; }
};

/// Colluding mimic (Karimireddy et al.): all attackers copy the submission
/// of one fixed honest client, over-weighting its (heterogeneous) data
/// distribution without ever leaving the honest set — no filter can reject
/// a vector an honest client actually sent.  `target` indexes into the
/// honest submissions (clamped to the honest count).
class MimicAttack final : public GradientAttack {
 public:
  explicit MimicAttack(std::size_t target = 0) : target_(target) {}
  std::string name() const override { return "mimic"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  std::size_t target_;
};

/// Optimal variance attack (Shejwalkar & Houmansadr's AGR-agnostic
/// "min-max"): submit mu + gamma * p with p = -mu/||mu|| and the largest
/// gamma such that the crafted vector's distance to every honest gradient
/// stays within the honest diameter.  The submission is provably
/// indistinguishable from an honest straggler by any pairwise-distance
/// criterion, yet maximally displaced against the descent direction.
class MinMaxAttack final : public GradientAttack {
 public:
  std::string name() const override { return "min-max"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
};

/// Static label-flip data poisoning: the Byzantine clients train honestly,
/// but on shards whose labels were remapped y -> num_classes - 1 - y at
/// setup (poisons_labels() == true; the trainers apply
/// flip_labels_in_place to a copy of the Byzantine shards).  corrupt()
/// passes the — already poisoned — own gradient through unchanged.
class LabelFlipAttack final : public GradientAttack {
 public:
  std::string name() const override { return "label-flip"; }
  bool poisons_labels() const override { return true; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
};

/// Honest behaviour (control arm of the benches).
class NoAttack final : public GradientAttack {
 public:
  std::string name() const override { return "none"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
};

/// Label-flip poisoning primitive: remaps every label y of the given shard
/// indices to (num_classes - 1 - y), in place.  Applied by the trainers to
/// a *copy* of the training set at setup time (never to the caller's
/// dataset), once, before any gradients are computed.
void flip_labels_in_place(ml::Dataset& dataset,
                          const std::vector<std::size_t>& shard);

/// Trainer-setup hook for data-poisoning attacks: when `attack` poisons
/// labels and there are Byzantine clients, fills `poisoned_storage` with a
/// copy of `train` whose last `num_byzantine` shards are label-flipped and
/// returns &poisoned_storage; otherwise returns &train untouched.
/// Byzantine clients must read from the returned dataset, honest clients
/// from `train`; the caller keeps `poisoned_storage` alive as long as
/// those clients.
const ml::Dataset* poison_byzantine_shards(
    const GradientAttack& attack, const ml::Dataset& train,
    const std::vector<std::vector<std::size_t>>& shards,
    std::size_t num_byzantine, ml::Dataset& poisoned_storage);

}  // namespace bcl
