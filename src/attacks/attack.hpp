#pragma once
// Byzantine client behaviours for collaborative learning (Section 5.1).
//
// A gradient attack decides what a Byzantine client submits in a learning
// round, given its own honestly computed gradient and — omnisciently, per
// the standard threat model — all honest gradients of the round.  The
// paper's principal attack is the sign flip: compute the local gradient,
// invert its sign, submit it.  Crash failures and several classic baseline
// attacks from the literature are included for the ablation benches.

#include <memory>
#include <optional>
#include <string>

#include "linalg/vector_ops.hpp"
#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace bcl {

class GradientAttack {
 public:
  virtual ~GradientAttack() = default;
  virtual std::string name() const = 0;

  /// The vector the Byzantine client submits this round; nullopt = silent
  /// (crash / omitted broadcast).  `own_gradient` is the gradient the
  /// client would have submitted if honest; `honest_gradients` are the
  /// actual honest submissions of the round.
  virtual std::optional<Vector> corrupt(const Vector& own_gradient,
                                        const VectorList& honest_gradients,
                                        std::size_t round, Rng& rng) const = 0;
};

using GradientAttackPtr = std::shared_ptr<const GradientAttack>;

/// Sign flip (Park & Lee; the evaluation's main attack): submit
/// -scale * own_gradient.  scale defaults to 1.
class SignFlipAttack final : public GradientAttack {
 public:
  explicit SignFlipAttack(double attack_scale = 1.0) : scale_(attack_scale) {}
  std::string name() const override { return "sign-flip"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double scale_;
};

/// Crash from a given round on (silent before contributing anything when
/// from_round == 0).
class CrashAttack final : public GradientAttack {
 public:
  explicit CrashAttack(std::size_t from_round = 0) : from_round_(from_round) {}
  std::string name() const override { return "crash"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  std::size_t from_round_;
};

/// Gaussian noise of the given sigma, ignoring the data entirely (the
/// "random parameter modification" attack class).
class RandomGradientAttack final : public GradientAttack {
 public:
  explicit RandomGradientAttack(double sigma = 1.0) : sigma_(sigma) {}
  std::string name() const override { return "random"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double sigma_;
};

/// Scales the honest gradient by a large factor (magnitude attack).
class ScaleAttack final : public GradientAttack {
 public:
  explicit ScaleAttack(double factor = 100.0) : factor_(factor) {}
  std::string name() const override { return "scale"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double factor_;
};

/// Always submits the zero vector (lazy freerider).
class ZeroAttack final : public GradientAttack {
 public:
  std::string name() const override { return "zero"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
};

/// Blanchard et al.'s omniscient attack: submit the negated mean of the
/// honest gradients, cancelling linear aggregation.
class OppositeMeanAttack final : public GradientAttack {
 public:
  explicit OppositeMeanAttack(double attack_scale = 1.0)
      : scale_(attack_scale) {}
  std::string name() const override { return "opposite-mean"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double scale_;
};

/// "A Little Is Enough" (Baruch et al.): submits mean(honest) +
/// z * std(honest) per coordinate — a stealth attack that stays inside the
/// honest spread, designed to defeat trimming-style defences slowly.
class ALittleIsEnoughAttack final : public GradientAttack {
 public:
  explicit ALittleIsEnoughAttack(double z = 1.5) : z_(z) {}
  std::string name() const override { return "alie"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;

 private:
  double z_;
};

/// Honest behaviour (control arm of the benches).
class NoAttack final : public GradientAttack {
 public:
  std::string name() const override { return "none"; }
  std::optional<Vector> corrupt(const Vector& own_gradient,
                                const VectorList& honest_gradients,
                                std::size_t round, Rng& rng) const override;
};

/// Creates an attack by name: none, sign-flip, sign-flip-10 (multiplicative
/// factor 10, the El-Mhamdi et al. variant), crash, random, scale, zero,
/// opposite-mean, alie.  Throws on unknown names.
GradientAttackPtr make_attack(const std::string& name);

/// All attack names accepted by make_attack.
std::vector<std::string> all_attack_names();

/// Data-poisoning variant (label flipping): remaps every label y of the
/// client's local shard to (num_classes - 1 - y).  Applied to a copy of the
/// shard at setup time, not per round.
void flip_labels_in_place(ml::Dataset& dataset,
                          const std::vector<std::size_t>& shard);

}  // namespace bcl
