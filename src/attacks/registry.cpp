#include "attacks/registry.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {
namespace {

using Params = std::map<std::string, std::string>;

// Splits "family:key=val,key=val" into the family name and a key->value
// map.  Malformed parameter tokens (no '=') throw immediately.
void split_spec(const std::string& spec, std::string& family, Params& params) {
  const std::size_t colon = spec.find(':');
  family = spec.substr(0, colon);
  if (colon == std::string::npos) return;
  std::stringstream rest(spec.substr(colon + 1));
  std::string token;
  while (std::getline(rest, token, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      throw std::invalid_argument("make_attack: malformed parameter '" +
                                  token + "' in '" + spec +
                                  "' (expected key=value)");
    }
    params[token.substr(0, eq)] = token.substr(eq + 1);
  }
}

// Typed parameter lookup; strict parsing so "target=1.9" fails instead of
// truncating.  Key validation happens centrally in make_attack via
// reject_unknown against the family's attack_parameter_table() row — new
// families only add a table row and a constructor branch.
double get_double(const Params& params, const std::string& key,
                  double fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return parse_strict_double(it->second,
                             "make_attack: parameter '" + key + "'");
}

std::size_t get_size(const Params& params, const std::string& key,
                     std::size_t fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return static_cast<std::size_t>(
      parse_strict_u64(it->second, "make_attack: parameter '" + key + "'"));
}

// Validates every supplied key against the family's row of
// attack_parameter_table() so a typo ("sigma" vs "scale") fails with the
// valid keys listed.
void reject_unknown(const std::string& family, const Params& params,
                    const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : params) {
    (void)value;
    bool ok = false;
    for (const auto& a : allowed) ok = ok || a == key;
    if (!ok) {
      throw std::invalid_argument(
          "make_attack: unknown parameter '" + key + "' for attack '" +
          family + "'" +
          (allowed.empty() ? std::string(" (takes no parameters)")
                           : " (valid: " + join_names(allowed) + ")"));
    }
  }
}

}  // namespace

const std::vector<std::pair<std::string, std::vector<std::string>>>&
attack_parameter_table() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      table = {{"none", {}},
               {"sign-flip", {"scale"}},
               {"sign-flip-10", {}},
               {"crash", {"from"}},
               {"random", {"sigma"}},
               {"scale", {"factor"}},
               {"zero", {}},
               {"opposite-mean", {"scale"}},
               {"alie", {"z"}},
               {"ipm", {"eps"}},
               {"mimic", {"target"}},
               {"min-max", {}},
               {"label-flip", {}}};
  return table;
}

GradientAttackPtr make_attack(const std::string& name) {
  std::string family;
  Params params;
  split_spec(name, family, params);

  // One lookup against the registry table covers both the unknown-family
  // error (with the full menu) and the family's parameter allowlist.
  const std::vector<std::string>* allowed = nullptr;
  for (const auto& [known, keys] : attack_parameter_table()) {
    if (known == family) {
      allowed = &keys;
      break;
    }
  }
  if (allowed == nullptr) {
    throw std::invalid_argument("make_attack: unknown attack '" + family +
                                "' (valid: " + join_names(all_attack_names()) +
                                ")");
  }
  reject_unknown(family, params, *allowed);

  if (family == "none") return std::make_shared<NoAttack>();
  if (family == "sign-flip") {
    return std::make_shared<SignFlipAttack>(get_double(params, "scale", 1.0));
  }
  if (family == "sign-flip-10") return std::make_shared<SignFlipAttack>(10.0);
  if (family == "crash") {
    return std::make_shared<CrashAttack>(get_size(params, "from", 0));
  }
  if (family == "random") {
    return std::make_shared<RandomGradientAttack>(
        get_double(params, "sigma", 1.0));
  }
  if (family == "scale") {
    return std::make_shared<ScaleAttack>(get_double(params, "factor", 100.0));
  }
  if (family == "zero") return std::make_shared<ZeroAttack>();
  if (family == "opposite-mean") {
    return std::make_shared<OppositeMeanAttack>(
        get_double(params, "scale", 1.0));
  }
  if (family == "alie") {
    return std::make_shared<ALittleIsEnoughAttack>(
        get_double(params, "z", 1.5));
  }
  if (family == "ipm") {
    return std::make_shared<InnerProductAttack>(
        get_double(params, "eps", 0.1));
  }
  if (family == "mimic") {
    return std::make_shared<MimicAttack>(get_size(params, "target", 0));
  }
  if (family == "min-max") return std::make_shared<MinMaxAttack>();
  if (family == "label-flip") return std::make_shared<LabelFlipAttack>();
  // A table row without a matching branch is a registry bug, not user
  // input: fail loudly instead of silently constructing the wrong attack.
  throw std::logic_error("make_attack: family '" + family +
                         "' is registered but has no constructor branch");
}

std::vector<std::string> all_attack_names() {
  std::vector<std::string> names;
  names.reserve(attack_parameter_table().size());
  for (const auto& [family, keys] : attack_parameter_table()) {
    (void)keys;
    names.push_back(family);
  }
  return names;
}

}  // namespace bcl
