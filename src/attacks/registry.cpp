#include "attacks/registry.hpp"

#include <stdexcept>

#include "util/parse.hpp"

namespace bcl {
namespace {

// The shared spec grammar lives in util/parse (split_spec_grammar,
// spec_param_*, reject_unknown_spec_params) and is also what the codec
// registry validates against — a grammar fix lands in both at once.
const std::string kContext = "make_attack";

double get_double(const SpecParams& params, const std::string& key,
                  double fallback) {
  return spec_param_double(params, key, fallback, kContext);
}

std::size_t get_size(const SpecParams& params, const std::string& key,
                     std::size_t fallback) {
  return static_cast<std::size_t>(
      spec_param_u64(params, key, fallback, kContext));
}

}  // namespace

const std::vector<std::pair<std::string, std::vector<std::string>>>&
attack_parameter_table() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      table = {{"none", {}},
               {"sign-flip", {"scale"}},
               {"sign-flip-10", {}},
               {"crash", {"from"}},
               {"random", {"sigma"}},
               {"scale", {"factor"}},
               {"zero", {}},
               {"opposite-mean", {"scale"}},
               {"alie", {"z"}},
               {"ipm", {"eps"}},
               {"mimic", {"target"}},
               {"min-max", {}},
               {"label-flip", {}},
               {"stale-strike", {"scale", "cohort"}}};
  return table;
}

GradientAttackPtr make_attack(const std::string& name) {
  std::string family;
  SpecParams params;
  split_spec_grammar(name, kContext, family, params);

  // One lookup against the registry table covers both the unknown-family
  // error (with the full menu) and the family's parameter allowlist.
  const std::vector<std::string>* allowed = nullptr;
  for (const auto& [known, keys] : attack_parameter_table()) {
    if (known == family) {
      allowed = &keys;
      break;
    }
  }
  if (allowed == nullptr) {
    throw std::invalid_argument("make_attack: unknown attack '" + family +
                                "' (valid: " + join_names(all_attack_names()) +
                                ")");
  }
  reject_unknown_spec_params(family, params, *allowed, kContext);

  if (family == "none") return std::make_shared<NoAttack>();
  if (family == "sign-flip") {
    return std::make_shared<SignFlipAttack>(get_double(params, "scale", 1.0));
  }
  if (family == "sign-flip-10") return std::make_shared<SignFlipAttack>(10.0);
  if (family == "crash") {
    return std::make_shared<CrashAttack>(get_size(params, "from", 0));
  }
  if (family == "random") {
    return std::make_shared<RandomGradientAttack>(
        get_double(params, "sigma", 1.0));
  }
  if (family == "scale") {
    return std::make_shared<ScaleAttack>(get_double(params, "factor", 100.0));
  }
  if (family == "zero") return std::make_shared<ZeroAttack>();
  if (family == "opposite-mean") {
    return std::make_shared<OppositeMeanAttack>(
        get_double(params, "scale", 1.0));
  }
  if (family == "alie") {
    return std::make_shared<ALittleIsEnoughAttack>(
        get_double(params, "z", 1.5));
  }
  if (family == "ipm") {
    return std::make_shared<InnerProductAttack>(
        get_double(params, "eps", 0.1));
  }
  if (family == "mimic") {
    return std::make_shared<MimicAttack>(get_size(params, "target", 0));
  }
  if (family == "min-max") return std::make_shared<MinMaxAttack>();
  if (family == "label-flip") return std::make_shared<LabelFlipAttack>();
  if (family == "stale-strike") {
    return std::make_shared<StaleStrikeAttack>(
        get_double(params, "scale", 1.0), get_size(params, "cohort", 0));
  }
  // A table row without a matching branch is a registry bug, not user
  // input: fail loudly instead of silently constructing the wrong attack.
  throw std::logic_error("make_attack: family '" + family +
                         "' is registered but has no constructor branch");
}

std::vector<std::string> all_attack_names() {
  std::vector<std::string> names;
  names.reserve(attack_parameter_table().size());
  for (const auto& [family, keys] : attack_parameter_table()) {
    (void)keys;
    names.push_back(family);
  }
  return names;
}

}  // namespace bcl
