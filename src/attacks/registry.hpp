#pragma once
// Name-based factory for Byzantine attacks, mirroring the aggregation-rule
// registry (aggregation/registry.hpp): scenario specs, bcl_run sweeps and
// the bench harnesses select attacks with the same string grammar that
// make_rule uses for rules.
//
// Name grammar:
//
//   <family>[:<key>=<value>[,<key>=<value>]...]
//
// e.g. "sign-flip", "sign-flip:scale=2", "crash:from=3", "alie:z=1.5",
// "mimic:target=1".  Families and their accepted parameters:
//
//   none                 honest control arm
//   sign-flip[:scale=S]  -S * own gradient (default S=1)
//   sign-flip-10         legacy alias for sign-flip:scale=10
//   crash[:from=R]       silent from round R on (default 0)
//   random[:sigma=S]     N(0, S^2) noise per coordinate (default 1)
//   scale[:factor=F]     F * own gradient (default 100)
//   zero                 all-zero submission
//   opposite-mean[:scale=S]  -S * mean(honest) (default 1)
//   alie[:z=Z]           mean + Z * std per coordinate (default 1.5)
//   ipm[:eps=E]          -E * mean(honest), small-E stealth (default 0.1)
//   mimic[:target=I]     copy honest submission I (default 0)
//   min-max              optimal variance attack within the honest diameter
//   label-flip           static label poisoning of the Byzantine shards
//
// Unknown families and unknown parameter keys both throw
// std::invalid_argument whose message lists the valid alternatives, so a
// typo in a sweep spec fails loudly with the menu attached.

#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.hpp"

namespace bcl {

/// Creates an attack from a grammar string (see file comment).  The
/// returned object is immutable and safe to share across all Byzantine
/// clients of a run.  Throws std::invalid_argument on unknown family
/// names (message lists all families) or unknown parameter keys (message
/// lists the family's parameters).
GradientAttackPtr make_attack(const std::string& name);

/// All family names accepted by make_attack, in registry order
/// ("sign-flip-10" included as the legacy alias).  Every entry constructs
/// without parameters: make_attack(n) succeeds for each n returned.
std::vector<std::string> all_attack_names();

/// family -> accepted parameter keys, in registry order (empty vector =
/// takes no parameters).  This is the same table make_attack validates
/// against, so menus rendered from it (bcl_run --list) cannot go stale.
const std::vector<std::pair<std::string, std::vector<std::string>>>&
attack_parameter_table();

}  // namespace bcl
