#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file (excluding build directories) for inline
links [text](target) and verifies that every relative target resolves to
an existing file or directory.  Reference-style definitions ([ref]:
target) are not parsed — the repo's docs use inline links only.  External
links (scheme://, mailto:) and pure in-page anchors (#...) are ignored; a
#fragment on a relative link is stripped before the existence check.

Usage: python3 tools/check_markdown_links.py [repo_root]
Exit code 0 when all links resolve, 1 otherwise (each failure printed as
file:line: target).
"""

import os
import re
import sys

# Inline links; [text](target "title") tolerated. Images share the syntax.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {"build", ".git", "node_modules"}
# Vendored retrieval artifacts (paper abstract/related-work dumps) carry
# links into their original sources; only repo-authored docs are checked.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def check_file(path, root):
    failures = []
    with open(path, encoding="utf-8") as handle:
        in_code_fence = False
        for lineno, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in INLINE.finditer(line):
                target = match.group(1)
                if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                    continue  # scheme: http(s), mailto, ...
                if target.startswith("#"):
                    continue  # in-page anchor
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    failures.append(f"{rel}:{lineno}: broken link -> "
                                    f"{match.group(1)}")
    return failures


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    count = 0
    for path in sorted(md_files(root)):
        count += 1
        failures.extend(check_file(path, root))
    for failure in failures:
        print(failure)
    print(f"checked {count} markdown file(s): "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
