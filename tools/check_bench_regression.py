#!/usr/bin/env python3
"""Fail on hot-path benchmark regressions against a committed baseline.

Compares a freshly emitted BENCH_*.json (the {"meta": ..., "records":
...} shape of bench/bench_json.hpp; the legacy bare-list shape is also
accepted) against a baseline committed under bench/baseline/.  Records
pair up by (op, m, d).

Two kinds of comparison, because CI machines are not the machines that
recorded the baselines:

  * speedup ratios (speedup_vs_naive) are machine-independent — the
    optimized and reference paths ran on the same box — so they are
    always checked: a hot path must not lose more than --threshold of
    its recorded advantage.
  * absolute ns_op is checked only when the current meta.machine string
    equals the baseline's, i.e. when the numbers are actually
    comparable.

Exit status is non-zero if any checked record regressed by more than the
threshold (default 15%).  Records present on only one side are reported
but never fail the gate, so adding or retiring a benchmark does not need
a lockstep baseline refresh.

Refresh a baseline by copying the current file over it:
    python3 tools/check_bench_regression.py baseline.json current.json --update
"""

import argparse
import json
import shutil
import sys


def fail(message):
    """One-line actionable error on stderr, exit 2 (never a traceback:
    the CI log should show what to do, not where the script broke)."""
    print(f"check_bench_regression: {message}", file=sys.stderr)
    sys.exit(2)


def load(path, role):
    """Returns (meta dict, records list) from either JSON shape."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        fail(f"{role} record missing: {path} — run the bench to emit it, "
             f"or record a baseline with: "
             f"python3 tools/check_bench_regression.py {path} "
             f"<current.json> --update")
    except json.JSONDecodeError as error:
        fail(f"{role} record unreadable: {path} is not valid JSON "
             f"({error}) — re-emit it from the bench binary")
    if isinstance(data, list):  # legacy: bare record list, no metadata
        return {}, data
    return data.get("meta", {}), data.get("records", [])


def key(record):
    return (record.get("op"), record.get("m"), record.get("d"))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly emitted BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed fractional regression (default 0.15 = 15%%)")
    parser.add_argument(
        "--update", action="store_true",
        help="copy current over baseline instead of checking")
    parser.add_argument(
        "--ratios-only", action="store_true",
        help="skip absolute-time checks even on a matching machine "
             "string (for CI runs that deliberately re-measure at the "
             "baseline's sizes to gate a structural speedup ratio: a "
             "generic machine string like 'Linux x86_64' can collide "
             "across genuinely different machines)")
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline refreshed: {args.current} -> {args.baseline}")
        return 0

    base_meta, base_records = load(args.baseline, "baseline")
    cur_meta, cur_records = load(args.current, "current")
    if not base_meta.get("machine"):
        fail(f"baseline {args.baseline} has no meta.machine (legacy "
             f"bare-list shape?) — absolute-time checks cannot anchor; "
             f"refresh it with: python3 tools/check_bench_regression.py "
             f"{args.baseline} {args.current} --update")
    base_by_key = {key(r): r for r in base_records}
    cur_by_key = {key(r): r for r in cur_records}

    same_machine = not args.ratios_only and bool(
        base_meta.get("machine")) and (
        base_meta.get("machine") == cur_meta.get("machine"))
    reason = " (--ratios-only)" if args.ratios_only else ""
    print(f"baseline machine: {base_meta.get('machine', '?')!r}, "
          f"current machine: {cur_meta.get('machine', '?')!r} -> "
          f"absolute-time checks {'ON' if same_machine else 'OFF'}{reason}")

    failures = []
    for k, base in sorted(base_by_key.items(), key=str):
        cur = cur_by_key.get(k)
        label = f"{k[0]} m={k[1]} d={k[2]}"
        if cur is None:
            print(f"  [gone]  {label}: not in current run")
            continue
        base_speedup = base.get("speedup_vs_naive", 0.0)
        cur_speedup = cur.get("speedup_vs_naive", 0.0)
        if base_speedup > 0.0:
            floor = base_speedup * (1.0 - args.threshold)
            verdict = "FAIL" if cur_speedup < floor else "ok"
            print(f"  [{verdict:>4}]  {label}: speedup {cur_speedup:.2f}x "
                  f"vs baseline {base_speedup:.2f}x (floor {floor:.2f}x)")
            if cur_speedup < floor:
                failures.append(f"{label}: speedup {cur_speedup:.2f}x fell "
                                f"below {floor:.2f}x")
        if same_machine and base.get("ns_op", 0.0) > 0.0:
            ceiling = base["ns_op"] * (1.0 + args.threshold)
            cur_ns = cur.get("ns_op", 0.0)
            verdict = "FAIL" if cur_ns > ceiling else "ok"
            print(f"  [{verdict:>4}]  {label}: {cur_ns:.1f} ns/op vs "
                  f"baseline {base['ns_op']:.1f} (ceiling {ceiling:.1f})")
            if cur_ns > ceiling:
                failures.append(f"{label}: {cur_ns:.1f} ns/op exceeded "
                                f"{ceiling:.1f}")
    for k in sorted(set(cur_by_key) - set(base_by_key), key=str):
        print(f"  [new ]  {k[0]} m={k[1]} d={k[2]}: no baseline yet")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
