#!/usr/bin/env python3
"""Validates flight-recorder trace artifacts (Chrome trace-event JSON).

Checks, per file:
  - the document parses and has a "traceEvents" list
  - every event carries name/ph/ts/pid/tid with sane types, ph is B or E
  - within each (pid, tid), timestamps are non-decreasing
  - within each (pid, tid), B/E events nest: every E closes the innermost
    open B with the same name, and nothing stays open at the end

Then prints a per-phase self-time table (self = total minus time spent in
nested child spans on the same thread) and, with --min-coverage, fails
unless the summed self time covers at least that fraction of the trace's
wall span (CI uses 0.9 to enforce that traced cells attribute their time).

Usage:
  python3 tools/check_trace.py trace_dir/trace_*.json [--min-coverage 0.9]

Exits 0 when every file validates, 1 otherwise.  Stdlib only.
"""

import argparse
import json
import sys


def fail(path, message):
    print(f"check_trace: {path}: {message}", file=sys.stderr)
    return False


def validate_events(path, events):
    """Schema + ordering + nesting checks.  Returns (ok, spans) where spans
    is a list of (name, tid, begin_ts, end_ts, depth)."""
    ok = True
    last_ts = {}  # (pid, tid) -> ts
    stacks = {}  # (pid, tid) -> [(name, ts)]
    spans = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(path, f"event {i} is not an object"), []
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                return fail(path, f"event {i} lacks '{key}'"), []
        name, ph, ts = ev["name"], ev["ph"], ev["ts"]
        if not isinstance(name, str) or not name:
            return fail(path, f"event {i}: name must be a non-empty string"), []
        if ph not in ("B", "E"):
            return fail(path, f"event {i}: ph '{ph}' is not B or E"), []
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(path, f"event {i}: ts {ts!r} is not a number >= 0"), []
        if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
            return fail(path, f"event {i}: pid/tid must be integers"), []
        if ev["pid"] < 0 or ev["tid"] < 0:
            return fail(path, f"event {i}: negative pid/tid"), []

        key = (ev["pid"], ev["tid"])
        if key in last_ts and ts < last_ts[key]:
            ok = fail(
                path,
                f"event {i}: ts {ts} < previous ts {last_ts[key]} on "
                f"pid/tid {key} (per-thread order must be non-decreasing)",
            )
        last_ts[key] = ts

        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append((name, ts))
        else:
            if not stack:
                ok = fail(path, f"event {i}: E '{name}' with no open B")
                continue
            open_name, begin_ts = stack.pop()
            if open_name != name:
                ok = fail(
                    path,
                    f"event {i}: E '{name}' closes open span "
                    f"'{open_name}' (B/E pairs must nest)",
                )
                continue
            spans.append((name, key[1], begin_ts, ts, len(stack)))
    for key, stack in stacks.items():
        if stack:
            names = ", ".join(name for name, _ in stack)
            ok = fail(path, f"pid/tid {key}: unclosed span(s): {names}")
    return ok, spans


def self_times(spans):
    """Per-phase (count, total_us, self_us).  Self time subtracts the child
    spans' totals: children of a span are the spans on the same tid fully
    inside it one nesting level deeper."""
    totals = {}
    for name, _tid, begin, end, _depth in spans:
        count, total, self_t = totals.get(name, (0, 0.0, 0.0))
        totals[name] = (count + 1, total + (end - begin), self_t)
    # Child time per parent: sort per tid by begin; maintain an open-span
    # stack keyed on depth.
    child = {}
    by_tid = {}
    for span in spans:
        by_tid.setdefault(span[1], []).append(span)
    for tid_spans in by_tid.values():
        tid_spans.sort(key=lambda s: (s[2], -s[3]))
        stack = []
        for name, _tid, begin, end, depth in tid_spans:
            while stack and stack[-1][1] <= begin:
                stack.pop()
            if stack:
                parent = stack[-1][0]
                child[parent] = child.get(parent, 0.0) + (end - begin)
            stack.append((name, end))
    result = {}
    for name, (count, total, _) in totals.items():
        result[name] = (count, total, total - child.get(name, 0.0))
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="trace JSON files")
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.0,
        help="fail unless summed self time >= this fraction of the "
        "trace's wall span (0 disables the check)",
    )
    args = parser.parse_args()

    all_ok = True
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            all_ok = fail(path, f"cannot parse: {error}")
            continue
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            all_ok = fail(path, "'traceEvents' missing or not a list")
            continue
        if not events:
            all_ok = fail(path, "empty trace (no events recorded)")
            continue
        ok, spans = validate_events(path, events)
        all_ok = all_ok and ok
        if not spans:
            all_ok = fail(path, "no complete spans")
            continue

        stats = self_times(spans)
        wall = max(s[3] for s in spans) - min(s[2] for s in spans)
        total_self = sum(self_t for _, _, self_t in stats.values())
        print(f"{path}: {len(events)} events, {len(spans)} spans, "
              f"{len(stats)} phases, wall {wall / 1e3:.3f} ms")
        print(f"  {'phase':<24} {'count':>8} {'total ms':>12} "
              f"{'self ms':>12} {'self %':>8}")
        for name in sorted(stats, key=lambda n: -stats[n][2]):
            count, total, self_t = stats[name]
            pct = 100.0 * self_t / wall if wall > 0 else 0.0
            print(f"  {name:<24} {count:>8} {total / 1e3:>12.3f} "
                  f"{self_t / 1e3:>12.3f} {pct:>7.1f}%")
        if args.min_coverage > 0.0:
            coverage = total_self / wall if wall > 0 else 0.0
            if coverage < args.min_coverage:
                all_ok = fail(
                    path,
                    f"self-time coverage {coverage:.3f} below required "
                    f"{args.min_coverage:.3f} (phases fail to account for "
                    f"the cell's wall time)",
                )
            else:
                print(f"  coverage {coverage:.3f} >= {args.min_coverage:.3f}")

    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
