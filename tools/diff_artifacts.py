#!/usr/bin/env python3
"""Compares two bcl_run JSON artifacts modulo wall-clock noise.

CI builds bcl_run twice — default and -DBCL_OBS_DISABLED (flight-recorder
span macros compiled out) — runs the same reduced sweep through both, and
requires the artifacts to be bitwise identical except for wall-clock derived
fields: every "seconds" value and the round.wall_seconds histogram (whose
moments are wall-clock samples).  Any other difference means the recorder
perturbed the computation and fails the build.

Usage: python3 tools/diff_artifacts.py a.json b.json
Exits 0 when equivalent, 1 with a unified diff otherwise.  Stdlib only.
"""

import difflib
import re
import sys

WALL_PATTERNS = [
    re.compile(r'"seconds": [0-9.eE+-]+'),
    re.compile(r'"round\.wall_seconds": \{[^}]*\}'),
]


def normalize(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    for pattern in WALL_PATTERNS:
        text = pattern.sub("<wall-clock>", text)
    return text


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a_path, b_path = sys.argv[1], sys.argv[2]
    a, b = normalize(a_path), normalize(b_path)
    if a == b:
        print(f"diff_artifacts: {a_path} == {b_path} "
              "(modulo wall-clock fields)")
        return 0
    print(f"diff_artifacts: {a_path} != {b_path}:", file=sys.stderr)
    for line in difflib.unified_diff(
            a.splitlines(), b.splitlines(),
            fromfile=a_path, tofile=b_path, lineterm=""):
        print(line, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
