// Figure 1: centralized collaborative learning, MLP on the MNIST-like
// dataset, f = 1 sign-flip attacker, all three data-heterogeneity levels.
// Paper shape: all of MD-MEAN / MD-GEOM / BOX-MEAN / BOX-GEOM exceed 91%
// under uniform and mild heterogeneity; Krum and Multi-Krum collapse under
// extreme heterogeneity.
//
//   ./bench/bench_fig1_centralized_heterogeneity [--full] [--rounds N]
//       [--seed S] [--csv basename] [--threads K]

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  bcl::bench::FigureSpec spec;
  spec.figure = "fig1";
  spec.rules = {"MEAN",    "GEOMED",  "KRUM",     "MULTIKRUM-3",
                "MD-MEAN", "MD-GEOM", "BOX-MEAN", "BOX-GEOM"};
  spec.heterogeneities = {bcl::ml::Heterogeneity::Uniform,
                          bcl::ml::Heterogeneity::Mild,
                          bcl::ml::Heterogeneity::Extreme};
  spec.byzantine = 1;
  spec.attack = "sign-flip";
  spec.decentralized = false;
  return bcl::bench::run_figure(spec, argc, argv);
}
