// Figure 1: centralized collaborative learning, MLP on the MNIST-like
// dataset, f = 1 sign-flip attacker, all three data-heterogeneity levels.
// Paper shape: all of MD-MEAN / MD-GEOM / BOX-MEAN / BOX-GEOM exceed 91%
// under uniform and mild heterogeneity; Krum and Multi-Krum collapse under
// extreme heterogeneity.
//
//   ./bench/bench_fig1_centralized_heterogeneity [--full] [--rounds N]
//       [--seed S] [--csv basename] [--json file] [--threads K]

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  std::vector<ScenarioSpec> specs;
  for (const char* het : {"uniform", "mild", "extreme"}) {
    for (const char* rule :
         {"MEAN", "GEOMED", "KRUM", "MULTIKRUM-3", "MD-MEAN", "MD-GEOM",
          "BOX-MEAN", "BOX-GEOM"}) {
      specs.push_back(ScenarioSpec::parse(
          std::string("topology=centralized attack=sign-flip f=1 seed=11") +
          " het=" + het + " rule=" + rule));
    }
  }
  bcl::bench::run_scenarios("fig1", std::move(specs), argc, argv);
  return 0;
}
