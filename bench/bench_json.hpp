#pragma once
// Machine-readable micro-bench records.
//
// The micro benches emit BENCH_<name>.json next to their google-benchmark
// console output so the perf trajectory of the hot kernels is tracked
// across PRs (CI uploads the files as workflow artifacts).  Each record is
// one measured operation: {op, m, d, ns_op, speedup_vs_naive}, where
// speedup_vs_naive compares against the pre-optimization reference
// implementation measured in the same process (0 when there is no
// meaningful baseline).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace bcl::benchjson {

struct Record {
  std::string op;
  std::size_t m = 0;
  std::size_t d = 0;
  double ns_op = 0.0;
  double speedup_vs_naive = 0.0;
};

/// Best-of-`reps` wall time of fn(), in nanoseconds per call.
template <typename Fn>
double time_ns(Fn&& fn, int reps = 5) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best;
}

/// Writes the records as a JSON array to `path`; returns false on I/O error.
inline bool write(const std::string& path, const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"m\": %zu, \"d\": %zu, "
                 "\"ns_op\": %.1f, \"speedup_vs_naive\": %.3f}%s\n",
                 r.op.c_str(), r.m, r.d, r.ns_op, r.speedup_vs_naive,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

}  // namespace bcl::benchjson
