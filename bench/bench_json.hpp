#pragma once
// Machine-readable micro-bench records.
//
// The micro benches emit BENCH_<name>.json next to their google-benchmark
// console output so the perf trajectory of the hot kernels is tracked
// across PRs (CI uploads the files as workflow artifacts).  The file is an
// object {"meta": {...}, "records": [...]}:
//
//   meta     — where the numbers came from: machine (uname -sm), OS
//              release, the commit under test (GITHUB_SHA or BCL_COMMIT
//              env, "unknown" outside CI) and the hardware thread count.
//              tools/check_bench_regression.py uses it to decide whether
//              absolute nanoseconds are comparable against the committed
//              baseline or only the machine-independent speedup ratios.
//   records  — one measured operation each: {op, m, d, ns_op,
//              speedup_vs_naive}, where speedup_vs_naive compares against
//              the pre-optimization reference implementation measured in
//              the same process (0 when there is no meaningful baseline).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace bcl::benchjson {

struct Record {
  std::string op;
  std::size_t m = 0;
  std::size_t d = 0;
  double ns_op = 0.0;
  double speedup_vs_naive = 0.0;
};

/// Provenance header of a bench file (see the file comment).
struct Meta {
  std::string machine = "unknown";
  std::string os = "unknown";
  std::string commit = "unknown";
  unsigned threads = 0;

  /// Fills every field from the running system and environment.
  static Meta detect() {
    Meta meta;
#if defined(__unix__) || defined(__APPLE__)
    utsname uts{};
    if (uname(&uts) == 0) {
      meta.machine = std::string(uts.sysname) + " " + uts.machine;
      meta.os = uts.release;
    }
#endif
    for (const char* var : {"GITHUB_SHA", "BCL_COMMIT"}) {
      if (const char* sha = std::getenv(var); sha != nullptr && *sha != '\0') {
        meta.commit = sha;
        break;
      }
    }
    meta.threads = std::thread::hardware_concurrency();
    return meta;
  }
};

/// Best-of-`reps` wall time of fn(), in nanoseconds per call.
template <typename Fn>
double time_ns(Fn&& fn, int reps = 5) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best;
}

/// Writes {"meta": ..., "records": [...]} to `path`; returns false on I/O
/// error.  Meta is detected at call time unless the caller overrides it.
inline bool write(const std::string& path, const std::vector<Record>& records,
                  const Meta& meta = Meta::detect()) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"meta\": {\"machine\": \"%s\", \"os\": \"%s\", "
               "\"commit\": \"%s\", \"threads\": %u},\n"
               "  \"records\": [\n",
               meta.machine.c_str(), meta.os.c_str(), meta.commit.c_str(),
               meta.threads);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"m\": %zu, \"d\": %zu, "
                 "\"ns_op\": %.1f, \"speedup_vs_naive\": %.3f}%s\n",
                 r.op.c_str(), r.m, r.d, r.ns_op, r.speedup_vs_naive,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace bcl::benchjson
