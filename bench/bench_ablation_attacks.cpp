// Ablation: robustness of every aggregation rule (core + extended
// baselines) across the full attack zoo, centralized, mild heterogeneity,
// f = 1.  Extends the paper's sign-flip/crash study (Contribution 3) with
// the classic attacks from the surveyed literature.
//
//   ./bench/bench_ablation_attacks [--rounds N] [--seed S] [--csv file]

#include <iostream>

#include "core/bcl.hpp"

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv, {"rounds", "seed", "csv", "threads"});
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 50));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 29));
  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));

  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_small(seed);
  spec.height = 10;
  spec.width = 10;
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  const auto data = ml::make_synthetic_dataset(spec);
  const std::size_t dim = data.train.feature_dim();
  ModelFactory factory = [dim] { return ml::make_mlp(dim, 16, 8, 10); };

  const std::vector<std::string> rules = {
      "MEAN",    "GEOMED",   "KRUM",    "MD-MEAN", "MD-GEOM",
      "BOX-MEAN", "BOX-GEOM", "RFA",     "CCLIP",   "NORM-CLIP"};
  const std::vector<std::string> attacks = {
      "none",  "sign-flip", "sign-flip-10", "crash",
      "random", "scale",    "zero",         "opposite-mean", "alie"};

  std::cout << "=== Attack-vs-rule ablation: best accuracy over " << rounds
            << " centralized rounds, f=1, mild heterogeneity ===\n\n";

  std::vector<std::string> header{"rule"};
  header.insert(header.end(), attacks.begin(), attacks.end());
  Table table(header);

  for (const auto& rule : rules) {
    table.new_row().add(rule);
    for (const auto& attack : attacks) {
      TrainingConfig cfg;
      cfg.num_clients = 10;
      cfg.num_byzantine = 1;
      cfg.rounds = rounds;
      cfg.batch_size = 16;
      cfg.rule = make_rule(rule);
      cfg.attack = make_attack(attack);
      cfg.schedule = ml::LearningRateSchedule(0.25, 0.25 / rounds);
      cfg.heterogeneity = ml::Heterogeneity::Mild;
      cfg.seed = seed;
      cfg.pool = &pool;
      CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
      table.add_num(trainer.run().best_accuracy(), 3);
    }
    std::cout << "[ablation-attacks] finished rule " << rule << "\n";
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: MEAN collapses to chance under the "
               "amplified attacks (sign-flip-10, scale) while the geometric-"
               "median and hyperbox rules stay near their no-attack "
               "accuracy under every attack; alie degrades everyone "
               "mildly.\n";
  if (args.has("csv")) {
    table.write_csv(args.get_string("csv", "ablation_attacks.csv"));
  }
  return 0;
}
