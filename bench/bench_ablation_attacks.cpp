// Ablation: robustness of every aggregation rule (core + extended
// baselines) across the full attack zoo, centralized, mild heterogeneity,
// f = 1.  Extends the paper's sign-flip/crash study (Contribution 3) with
// the classic attacks from the surveyed literature plus the stealth /
// collusion family (ipm, mimic, min-max, label-flip).
//
// Every cell is one scenario through the engine; the binary only declares
// the rule x attack cross product and pivots the summaries into the
// rule-per-row table.
//
//   ./bench/bench_ablation_attacks [--rounds N] [--seed S] [--csv base]
//       [--json file] [--threads K]

#include <iostream>

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  const std::vector<std::string> rules = {
      "MEAN",     "GEOMED",   "KRUM", "MD-MEAN", "MD-GEOM",
      "BOX-MEAN", "BOX-GEOM", "RFA",  "CCLIP",   "NORM-CLIP"};
  const std::vector<std::string> attacks = {
      "none",          "sign-flip", "sign-flip-10", "crash", "random",
      "scale",         "zero",      "opposite-mean", "alie",  "ipm",
      "mimic",         "min-max",   "label-flip"};

  std::vector<ScenarioSpec> specs;
  for (const auto& rule : rules) {
    for (const auto& attack : attacks) {
      specs.push_back(ScenarioSpec::parse(
          "topology=centralized f=1 het=mild seed=29 rounds=50 rule=" + rule +
          " attack=" + attack));
    }
  }
  const auto summaries =
      bcl::bench::run_scenarios("ablation-attacks", std::move(specs), argc,
                                argv);

  // Pivot: one row per rule, one column per attack, best accuracy.
  std::vector<std::string> header{"rule"};
  header.insert(header.end(), attacks.begin(), attacks.end());
  bcl::Table table(header);
  for (std::size_t r = 0; r < rules.size(); ++r) {
    table.new_row().add(rules[r]);
    for (std::size_t a = 0; a < attacks.size(); ++a) {
      const auto& summary = summaries[r * attacks.size() + a];
      // A crashed run (e.g. divergence rejected at the aggregation
      // boundary) must not masquerade as a measured accuracy collapse.
      if (!summary.error.empty()) {
        table.add("FAILED");
      } else {
        table.add_num(summary.result.best_accuracy(), 3);
      }
    }
  }
  std::cout << "\n--- best accuracy, rule x attack ---\n";
  table.print(std::cout);
  // The pivot is the paper's actual ablation artifact; write it next to
  // the engine's generic series/summary CSVs.
  const bcl::CliArgs args(argc, argv, bcl::bench::scenario_flags());
  if (args.has("csv")) {
    const std::string path =
        args.get_string("csv", "ablation-attacks") + "_pivot.csv";
    table.write_csv(path);
    std::cout << "\nPivot CSV written to " << path << "\n";
  }
  std::cout << "\nExpected shape: MEAN collapses to chance under the "
               "amplified attacks (sign-flip-10, scale) while the geometric-"
               "median and hyperbox rules stay near their no-attack "
               "accuracy under every attack; the stealth family (alie, ipm, "
               "mimic, min-max) degrades everyone mildly.\n";
  return 0;
}
