// bcl_run: the scenario CLI.  Executes any single scenario or a
// cross-product sweep over rules x attacks x f x heterogeneity x topology
// x network x codec, streaming metrics to the console and optional
// CSV/JSON artifacts.
//
//   # registries
//   ./bcl_run --list
//
//   # one scenario, full key=value grammar (docs/scenarios.md)
//   ./bcl_run --scenario "topology=decentralized rule=BOX-GEOM \
//       attack=sign-flip:scale=2 f=2 rounds=30"
//
//   # sweep: every combination of the comma-separated axes
//   ./bcl_run --rules KRUM,BOX-GEOM --attacks sign-flip,alie,mimic \
//       --fs 1,2 --hets mild,extreme --rounds 40 --json sweep.json
//
//   # network-timing sweep (NetConfig grammar values contain commas, so
//   # the --nets axis is ';'-separated), four cells in parallel
//   ./bcl_run --rules BOX-GEOM --jobs 4 \
//       --nets "sync;async:delay=exp,mean=5,drop=0.05,timeout=50"
//
//   # compression sweep under a bandwidth cap (--comps is ';'-separated
//   # like --nets, since codec grammar values may contain commas)
//   ./bcl_run --rules BOX-GEOM --comps "identity;topk:frac=0.01" \
//       --net "async:delay=const,mean=1,bw=1e6"
//
//   # print the expanded grid (one spec per line) without running a cell
//   ./bcl_run --rules KRUM,BOX-GEOM --fs 1,2 --dry-run
//
//   # fault-injection sweep (FaultConfig grammar values contain commas,
//   # so --faults is ';'-separated like --nets/--comps); bounded-staleness
//   # server with tau=2
//   ./bcl_run --rules BOX-GEOM --stale 2 \
//       --faults "none;churn:leave=0.2,join=0.5,cap=0.3"
//
//   # streaming cohort subsampling + sharded aggregation at scale
//   ./bcl_run --scenario "n=100000 f=1000 rule=CW-MEDIAN \
//       cohort=0.01,shards=16 rounds=5"
//
// Sweep axes: --rules, --attacks, --topologies, --hets, --fs, --nets,
// --comps, --faults.  Shared scalar overrides: --n, --t, --model, --full,
// --rounds, --batch, --lr, --subrounds, --delay, --net, --comp, --stale,
// --cohort, --seed, --eval-max, --trace.
// Artifacts: --csv <base>, --json <file>; --trace-dir <dir> writes one
// Chrome-trace/Perfetto trace_<cell>.json per traced cell (implies
// trace=full on cells still at the default, as does --profile, which
// prints a per-phase self-time table at sweep end).  --threads attaches a
// worker pool; --jobs N runs independent sweep cells concurrently
// (artifact row order stays deterministic — cells are replayed through
// the emitters in spec order; traced cells force jobs=1); --dry-run
// prints the grid in exactly the order the cells would execute.

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "figure_harness.hpp"

namespace {

std::vector<std::string> split_list(const std::string& csv,
                                    char separator = ',') {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, separator)) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

void print_registries() {
  std::cout << "aggregation rules (make_rule):\n ";
  for (const auto& name : bcl::all_rule_names()) std::cout << " " << name;
  std::cout << "\n  extended baselines:";
  for (const auto& name : bcl::extended_rule_names()) {
    std::cout << " " << name;
  }
  std::cout << "\n  parameterized: MULTIKRUM-<q>\n\n";
  // Rendered from the registry's own validation table so this menu can
  // never go stale against make_attack.
  std::cout << "attacks (make_attack, grammar name[:key=value,...]):\n ";
  for (const auto& [family, params] : bcl::attack_parameter_table()) {
    std::cout << " " << family;
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::cout << (i == 0 ? ":" : ",") << params[i] << "=<v>";
    }
  }
  std::cout << "\n\ncodecs (make_codec, grammar name[:key=value,...]):\n ";
  for (const auto& [family, params] : bcl::codec_parameter_table()) {
    std::cout << " " << family;
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::cout << (i == 0 ? ":" : ",") << params[i] << "=<v>";
    }
  }
  std::cout << "\n\nscenario keys (--scenario \"key=value ...\"):\n ";
  for (const auto& key : bcl::experiments::scenario_keys()) {
    std::cout << " " << key;
  }
  std::cout << "\n\nnetwork models (net=sync | net=async:key=value,...):\n ";
  for (const auto& key : bcl::net_config_keys()) std::cout << " " << key;
  std::cout << "\n  delay families:";
  for (const auto& family : bcl::delay_family_names()) {
    std::cout << " " << family;
  }
  std::cout << "\n\nfault plans (faults=name[:key=value,...]):\n ";
  for (const auto& [family, params] : bcl::fault_parameter_table()) {
    std::cout << " " << family;
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::cout << (i == 0 ? ":" : ",") << params[i] << "=<v>";
    }
  }
  std::cout << "\n\nbounded staleness (stale=none | stale=<tau>[,key=...]):"
               "\n  keys:";
  for (const auto& key : bcl::stale_config_keys()) std::cout << " " << key;
  std::cout << "\n\ncohort subsampling (cohort=none | "
               "cohort=<frac>[,key=...]):\n  keys:";
  for (const auto& key : bcl::cohort_config_keys()) std::cout << " " << key;
  std::cout << "\n\nSee docs/scenarios.md for the full reference.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcl;
  using experiments::ScenarioSpec;
  const CliArgs args(argc, argv,
                     {"list", "scenario", "rules", "attacks", "topologies",
                      "hets", "fs", "nets", "comps", "faults", "n", "t",
                      "model", "full", "rounds", "batch", "lr", "subrounds",
                      "delay", "net", "comp", "stale", "cohort", "seed",
                      "eval-max", "csv", "json", "threads", "jobs",
                      "dry-run", "trace", "trace-dir", "profile"});
  if (args.get_bool("list", false)) {
    print_registries();
    return 0;
  }

  // Shared scalar overrides, applied to every spec of the sweep through
  // the spec grammar's own strict validation (flag name == spec key).
  const std::vector<std::string> scalar_keys = {
      "n",  "t",     "model",     "rounds", "batch",    "lr",
      "subrounds", "delay", "net", "comp", "stale", "cohort", "seed",
      "eval-max", "trace"};

  std::vector<ScenarioSpec> specs;
  try {
    if (args.has("scenario")) {
      // A single fully spelled-out scenario and the sweep axes are
      // mutually exclusive: dropping user-provided axes silently would
      // contradict the CLI's fail-loudly design.
      for (const char* axis :
           {"rules", "attacks", "topologies", "hets", "fs", "nets",
            "comps", "faults"}) {
        if (args.has(axis)) {
          throw std::invalid_argument(
              std::string("--scenario cannot be combined with the sweep "
                          "axis --") +
              axis + " (put the value in the scenario string instead)");
        }
      }
      // Scalar flags are applied after the scenario string so they win,
      // exactly as in sweep mode and the bench harnesses.
      ScenarioSpec spec;
      spec.apply(args.get_string("scenario", ""));
      bench::apply_scalar_flags(args, scalar_keys, spec);
      specs.push_back(spec);
    } else {
      experiments::SweepAxes axes;
      axes.rules = split_list(args.get_string("rules", "BOX-GEOM"));
      axes.attacks = split_list(args.get_string("attacks", "sign-flip"));
      axes.topologies =
          split_list(args.get_string("topologies", "centralized"));
      axes.hets = split_list(args.get_string("hets", "mild"));
      axes.fs = split_list(args.get_string("fs", "1"));
      // NetConfig and codec values embed commas ("async:delay=exp,mean=5"),
      // so those axes are ';'-separated.  A scalar override (--net/--comp)
      // is applied after the axis values and would silently collapse its
      // sweep axis — fail loudly instead, like --scenario with any axis.
      if (args.has("nets") && args.has("net")) {
        throw std::invalid_argument(
            "--nets cannot be combined with the scalar override --net "
            "(every cell would end up with the --net value)");
      }
      if (args.has("comps") && args.has("comp")) {
        throw std::invalid_argument(
            "--comps cannot be combined with the scalar override --comp "
            "(every cell would end up with the --comp value)");
      }
      axes.nets = split_list(args.get_string("nets", "sync"), ';');
      axes.comps = split_list(args.get_string("comps", "identity"), ';');
      // Fault grammar values embed commas too ("churn:leave=0.2,cap=0.3"),
      // so --faults is ';'-separated like --nets/--comps.
      axes.faults = split_list(args.get_string("faults", "none"), ';');
      specs = experiments::expand_sweep(axes, [&](ScenarioSpec& spec) {
        bench::apply_scalar_flags(args, scalar_keys, spec);
      });
    }

    // Fail fast on unknown rule/attack names (with the registry menus in
    // the message) before any dataset is generated — and before a
    // --dry-run preview, so the printed grid is one that can actually
    // execute (net=/comp= already validated eagerly in set()).
    for (const auto& spec : specs) {
      make_rule(spec.rule);
      make_attack(spec.attack);
    }

    // The expanded grid, one canonical spec string per line, in exactly
    // the order the cells would execute (expand_sweep order == run_all
    // order) — then stop before any dataset is generated.
    if (args.get_bool("dry-run", false)) {
      for (const auto& spec : specs) std::cout << spec.to_string() << "\n";
      return 0;
    }

    std::cout << "=== bcl_run: " << specs.size()
              << " scenario(s) ===\n\n";
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
    experiments::ScenarioRunner runner(&pool);
    bench::EmitterSet emitters(std::cout, args, "bcl_run",
                               "BENCH_scenarios.json");
    const std::size_t jobs =
        static_cast<std::size_t>(std::max(1LL, args.get_int("jobs", 1)));
    runner.run_all(specs, emitters.pointers, jobs);
    emitters.report(std::cout);
  } catch (const std::exception& error) {
    std::cerr << "bcl_run: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
