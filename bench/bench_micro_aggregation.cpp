// Microbenchmarks: throughput of every aggregation rule as a function of
// input dimension (the engineering table behind rule selection; the
// geometric-median-based rules pay for Weiszfeld over C(n, n-t) subsets).

#include <benchmark/benchmark.h>

#include <chrono>

#include "core/bcl.hpp"

namespace {

using namespace bcl;

VectorList make_inputs(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    inputs.push_back(v);
  }
  // Two adversarial outliers in the last slots.
  inputs[n - 1] = constant(d, 25.0);
  inputs[n - 2] = constant(d, -25.0);
  return inputs;
}

void run_rule(benchmark::State& state, const std::string& rule_name) {
  const std::size_t n = 10;
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(n, d, 7);
  const auto rule = make_rule(rule_name);
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(d));
}

void BM_Mean(benchmark::State& s) { run_rule(s, "MEAN"); }
void BM_GeoMedian(benchmark::State& s) { run_rule(s, "GEOMED"); }
void BM_Medoid(benchmark::State& s) { run_rule(s, "MEDOID"); }
void BM_CwMedian(benchmark::State& s) { run_rule(s, "CW-MEDIAN"); }
void BM_TrimmedMean(benchmark::State& s) { run_rule(s, "TRIM-MEAN"); }
void BM_Krum(benchmark::State& s) { run_rule(s, "KRUM"); }
void BM_MultiKrum(benchmark::State& s) { run_rule(s, "MULTIKRUM-3"); }
void BM_MdMean(benchmark::State& s) { run_rule(s, "MD-MEAN"); }
void BM_MdGeom(benchmark::State& s) { run_rule(s, "MD-GEOM"); }
void BM_BoxMean(benchmark::State& s) { run_rule(s, "BOX-MEAN"); }
void BM_BoxGeom(benchmark::State& s) { run_rule(s, "BOX-GEOM"); }

constexpr int kLo = 8;
constexpr int kHi = 4096;

BENCHMARK(BM_Mean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_GeoMedian)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_Medoid)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_CwMedian)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_TrimmedMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_Krum)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MultiKrum)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MdMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MdGeom)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_BoxMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_BoxGeom)->RangeMultiplier(8)->Range(kLo, kHi);

// --- shared distance-matrix workspace ---
//
// A comparison suite (the figure harnesses, or one server round scoring
// several candidate rules) runs many distance-based rules over the same
// inbox.  Legacy entry points rebuild the O(m^2 * d) pairwise matrix inside
// every rule; the workspace builds it once and every rule runs off it.

const std::vector<std::string>& comparison_suite() {
  // Krum + MDA + medoid: the distance-based trio of the ISSUE's acceptance
  // criterion.
  static const std::vector<std::string> kSuite{"KRUM", "MD-MEAN", "MEDOID"};
  return kSuite;
}

void BM_MultiRuleLegacy(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  std::vector<AggregationRulePtr> rules;
  for (const auto& name : comparison_suite()) rules.push_back(make_rule(name));
  for (auto _ : state) {
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
    }
  }
}
BENCHMARK(BM_MultiRuleLegacy)->RangeMultiplier(8)->Range(kLo, kHi);

void BM_MultiRuleSharedWorkspace(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  std::vector<AggregationRulePtr> rules;
  for (const auto& name : comparison_suite()) rules.push_back(make_rule(name));
  for (auto _ : state) {
    AggregationWorkspace workspace(inputs);
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, workspace, ctx));
    }
  }
}
BENCHMARK(BM_MultiRuleSharedWorkspace)->RangeMultiplier(8)->Range(kLo, kHi);

// Same comparison with the speedup reported directly: per iteration the
// suite runs once through the legacy entry points (each rule recomputes the
// distances) and once through a shared workspace; the "speedup" counter is
// legacy time / shared time.
void BM_SharedWorkspaceSpeedup(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  std::vector<AggregationRulePtr> rules;
  for (const auto& name : comparison_suite()) rules.push_back(make_rule(name));
  double legacy_ns = 0.0;
  double shared_ns = 0.0;
  using clock = std::chrono::steady_clock;
  for (auto _ : state) {
    const auto t0 = clock::now();
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
    }
    const auto t1 = clock::now();
    AggregationWorkspace workspace(inputs);
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, workspace, ctx));
    }
    const auto t2 = clock::now();
    legacy_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    shared_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
  }
  state.counters["speedup"] = shared_ns > 0.0 ? legacy_ns / shared_ns : 0.0;
}
BENCHMARK(BM_SharedWorkspaceSpeedup)->RangeMultiplier(8)->Range(kLo, kHi);

// The distance-matrix build itself: serial vs ThreadPool-parallel rows.
void BM_DistanceMatrixSerial(benchmark::State& state) {
  const VectorList inputs = make_inputs(32, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix(inputs));
  }
}
BENCHMARK(BM_DistanceMatrixSerial)->RangeMultiplier(8)->Range(64, kHi);

void BM_DistanceMatrixPool(benchmark::State& state) {
  const VectorList inputs = make_inputs(32, static_cast<std::size_t>(state.range(0)), 7);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix(inputs, &pool));
  }
}
BENCHMARK(BM_DistanceMatrixPool)->RangeMultiplier(8)->Range(64, kHi);

// Parallel subset evaluation inside BOX-GEOM: pool vs serial.
void BM_BoxGeomParallel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  ThreadPool pool;
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  ctx.pool = &pool;
  BoxGeoMedianRule rule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.aggregate(inputs, ctx));
  }
}
BENCHMARK(BM_BoxGeomParallel)->RangeMultiplier(8)->Range(64, kHi);

}  // namespace
