// Microbenchmarks: throughput of every aggregation rule as a function of
// input dimension (the engineering table behind rule selection; the
// geometric-median-based rules pay for Weiszfeld over C(n, n-t) subsets).

#include <benchmark/benchmark.h>

#include "core/bcl.hpp"

namespace {

using namespace bcl;

VectorList make_inputs(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    inputs.push_back(v);
  }
  // Two adversarial outliers in the last slots.
  inputs[n - 1] = constant(d, 25.0);
  inputs[n - 2] = constant(d, -25.0);
  return inputs;
}

void run_rule(benchmark::State& state, const std::string& rule_name) {
  const std::size_t n = 10;
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(n, d, 7);
  const auto rule = make_rule(rule_name);
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(d));
}

void BM_Mean(benchmark::State& s) { run_rule(s, "MEAN"); }
void BM_GeoMedian(benchmark::State& s) { run_rule(s, "GEOMED"); }
void BM_Medoid(benchmark::State& s) { run_rule(s, "MEDOID"); }
void BM_CwMedian(benchmark::State& s) { run_rule(s, "CW-MEDIAN"); }
void BM_TrimmedMean(benchmark::State& s) { run_rule(s, "TRIM-MEAN"); }
void BM_Krum(benchmark::State& s) { run_rule(s, "KRUM"); }
void BM_MultiKrum(benchmark::State& s) { run_rule(s, "MULTIKRUM-3"); }
void BM_MdMean(benchmark::State& s) { run_rule(s, "MD-MEAN"); }
void BM_MdGeom(benchmark::State& s) { run_rule(s, "MD-GEOM"); }
void BM_BoxMean(benchmark::State& s) { run_rule(s, "BOX-MEAN"); }
void BM_BoxGeom(benchmark::State& s) { run_rule(s, "BOX-GEOM"); }

constexpr int kLo = 8;
constexpr int kHi = 4096;

BENCHMARK(BM_Mean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_GeoMedian)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_Medoid)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_CwMedian)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_TrimmedMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_Krum)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MultiKrum)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MdMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MdGeom)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_BoxMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_BoxGeom)->RangeMultiplier(8)->Range(kLo, kHi);

// Parallel subset evaluation inside BOX-GEOM: pool vs serial.
void BM_BoxGeomParallel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  ThreadPool pool;
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  ctx.pool = &pool;
  BoxGeoMedianRule rule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.aggregate(inputs, ctx));
  }
}
BENCHMARK(BM_BoxGeomParallel)->RangeMultiplier(8)->Range(64, kHi);

}  // namespace
