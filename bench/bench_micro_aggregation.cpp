// Microbenchmarks: throughput of every aggregation rule as a function of
// input dimension (the engineering table behind rule selection; the
// geometric-median-based rules pay for Weiszfeld over C(n, n-t) subsets).
//
// Besides the google-benchmark suites, main() emits
// BENCH_micro_aggregation.json (see bench_json.hpp): the Gram-trick
// distance build, the blocked coordinate-wise reductions, and the
// batch-native rule path, each against its pre-optimization reference
// implementation measured in the same process.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "bench_json.hpp"
#include "core/bcl.hpp"

namespace {

using namespace bcl;

VectorList make_inputs(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    inputs.push_back(v);
  }
  // Two adversarial outliers in the last slots.
  inputs[n - 1] = constant(d, 25.0);
  inputs[n - 2] = constant(d, -25.0);
  return inputs;
}

void run_rule(benchmark::State& state, const std::string& rule_name) {
  const std::size_t n = 10;
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(n, d, 7);
  const auto rule = make_rule(rule_name);
  AggregationContext ctx;
  ctx.n = n;
  ctx.t = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(d));
}

void BM_Mean(benchmark::State& s) { run_rule(s, "MEAN"); }
void BM_GeoMedian(benchmark::State& s) { run_rule(s, "GEOMED"); }
void BM_Medoid(benchmark::State& s) { run_rule(s, "MEDOID"); }
void BM_CwMedian(benchmark::State& s) { run_rule(s, "CW-MEDIAN"); }
void BM_TrimmedMean(benchmark::State& s) { run_rule(s, "TRIM-MEAN"); }
void BM_Krum(benchmark::State& s) { run_rule(s, "KRUM"); }
void BM_MultiKrum(benchmark::State& s) { run_rule(s, "MULTIKRUM-3"); }
void BM_MdMean(benchmark::State& s) { run_rule(s, "MD-MEAN"); }
void BM_MdGeom(benchmark::State& s) { run_rule(s, "MD-GEOM"); }
void BM_BoxMean(benchmark::State& s) { run_rule(s, "BOX-MEAN"); }
void BM_BoxGeom(benchmark::State& s) { run_rule(s, "BOX-GEOM"); }

constexpr int kLo = 8;
constexpr int kHi = 4096;

BENCHMARK(BM_Mean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_GeoMedian)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_Medoid)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_CwMedian)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_TrimmedMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_Krum)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MultiKrum)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MdMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_MdGeom)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_BoxMean)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_BoxGeom)->RangeMultiplier(8)->Range(kLo, kHi);

// --- shared distance-matrix workspace ---
//
// A comparison suite (the figure harnesses, or one server round scoring
// several candidate rules) runs many distance-based rules over the same
// inbox.  Legacy entry points rebuild the O(m^2 * d) pairwise matrix inside
// every rule; the workspace builds it once and every rule runs off it.

const std::vector<std::string>& comparison_suite() {
  // Krum + MDA + medoid: the distance-based trio of the ISSUE's acceptance
  // criterion.
  static const std::vector<std::string> kSuite{"KRUM", "MD-MEAN", "MEDOID"};
  return kSuite;
}

void BM_MultiRuleLegacy(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  std::vector<AggregationRulePtr> rules;
  for (const auto& name : comparison_suite()) rules.push_back(make_rule(name));
  for (auto _ : state) {
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
    }
  }
}
BENCHMARK(BM_MultiRuleLegacy)->RangeMultiplier(8)->Range(kLo, kHi);

void BM_MultiRuleSharedWorkspace(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  std::vector<AggregationRulePtr> rules;
  for (const auto& name : comparison_suite()) rules.push_back(make_rule(name));
  for (auto _ : state) {
    AggregationWorkspace workspace(inputs);
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, workspace, ctx));
    }
  }
}
BENCHMARK(BM_MultiRuleSharedWorkspace)->RangeMultiplier(8)->Range(kLo, kHi);

// Same comparison with the speedup reported directly: per iteration the
// suite runs once through the legacy entry points (each rule recomputes the
// distances) and once through a shared workspace; the "speedup" counter is
// legacy time / shared time.
void BM_SharedWorkspaceSpeedup(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  std::vector<AggregationRulePtr> rules;
  for (const auto& name : comparison_suite()) rules.push_back(make_rule(name));
  double legacy_ns = 0.0;
  double shared_ns = 0.0;
  using clock = std::chrono::steady_clock;
  for (auto _ : state) {
    const auto t0 = clock::now();
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, ctx));
    }
    const auto t1 = clock::now();
    AggregationWorkspace workspace(inputs);
    for (const auto& rule : rules) {
      benchmark::DoNotOptimize(rule->aggregate(inputs, workspace, ctx));
    }
    const auto t2 = clock::now();
    legacy_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    shared_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
  }
  state.counters["speedup"] = shared_ns > 0.0 ? legacy_ns / shared_ns : 0.0;
}
BENCHMARK(BM_SharedWorkspaceSpeedup)->RangeMultiplier(8)->Range(kLo, kHi);

// The distance-matrix build itself: serial vs ThreadPool-parallel rows.
void BM_DistanceMatrixSerial(benchmark::State& state) {
  const VectorList inputs = make_inputs(32, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix(inputs));
  }
}
BENCHMARK(BM_DistanceMatrixSerial)->RangeMultiplier(8)->Range(64, kHi);

void BM_DistanceMatrixPool(benchmark::State& state) {
  const VectorList inputs = make_inputs(32, static_cast<std::size_t>(state.range(0)), 7);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix(inputs, &pool));
  }
}
BENCHMARK(BM_DistanceMatrixPool)->RangeMultiplier(8)->Range(64, kHi);

// Parallel subset evaluation inside BOX-GEOM: pool vs serial.
void BM_BoxGeomParallel(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList inputs = make_inputs(10, d, 7);
  ThreadPool pool;
  AggregationContext ctx;
  ctx.n = 10;
  ctx.t = 2;
  ctx.pool = &pool;
  BoxGeoMedianRule rule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.aggregate(inputs, ctx));
  }
}
BENCHMARK(BM_BoxGeomParallel)->RangeMultiplier(8)->Range(64, kHi);

// The Gram-trick batch build vs the PR 1 per-pair build.
void BM_DistanceMatrixBatchGram(benchmark::State& state) {
  const GradientBatch batch = GradientBatch::from(
      make_inputs(32, static_cast<std::size_t>(state.range(0)), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix(batch));
  }
}
BENCHMARK(BM_DistanceMatrixBatchGram)->RangeMultiplier(8)->Range(64, kHi);

// --- machine-readable records (BENCH_micro_aggregation.json) --------------

// Faithful replica of the PR 1 DistanceMatrix constructor: per-pair
// distance_squared plus sqrt, storing both the squared and the plain
// matrix.  This is the baseline the acceptance numbers compare against.
struct Pr1DistanceMatrix {
  std::size_t m;
  std::vector<double> d_;
  std::vector<double> d2_;
  explicit Pr1DistanceMatrix(const VectorList& points) : m(points.size()) {
    d_.assign(m * m, 0.0);
    d2_.assign(m * m, 0.0);
    for (std::size_t i = 0; i + 1 < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const double s = distance_squared(points[i], points[j]);
        const double e = std::sqrt(s);
        d2_[i * m + j] = d2_[j * m + i] = s;
        d_[i * m + j] = d_[j * m + i] = e;
      }
    }
  }
};

void emit_json() {
  using benchjson::Record;
  using benchjson::time_ns;
  std::vector<Record> records;

  // Distance build: Gram trick over the contiguous batch vs the PR 1
  // per-pair build, single thread.  (50, 10000) is the acceptance shape.
  for (const auto& [m, d] : {std::pair<std::size_t, std::size_t>{10, 1024},
                             {32, 4096},
                             {50, 10000}}) {
    const VectorList pts = make_inputs(m, d, 7);
    const GradientBatch batch = GradientBatch::from(pts);
    const double naive =
        time_ns([&] { benchmark::DoNotOptimize(Pr1DistanceMatrix(pts)); });
    const double gram =
        time_ns([&] { benchmark::DoNotOptimize(DistanceMatrix(batch)); });
    records.push_back({"distance_matrix_pr1_per_pair", m, d, naive, 0.0});
    records.push_back({"distance_matrix_batch_gram", m, d, gram,
                       gram > 0.0 ? naive / gram : 0.0});
  }

  // Blocked coordinate-wise reductions vs the per-coordinate gather.
  {
    const std::size_t m = 25, d = 100000;
    const VectorList pts = make_inputs(m, d, 9);
    const GradientBatch batch = GradientBatch::from(pts);
    const double naive_med = time_ns(
        [&] { benchmark::DoNotOptimize(coordinatewise_median(pts)); });
    const double block_med = time_ns(
        [&] { benchmark::DoNotOptimize(coordinatewise_median(batch)); });
    records.push_back({"cw_median_blocked", m, d, block_med,
                       block_med > 0.0 ? naive_med / block_med : 0.0});
    const double naive_trim = time_ns([&] {
      benchmark::DoNotOptimize(coordinatewise_trimmed_mean(pts, 3));
    });
    const double block_trim = time_ns([&] {
      benchmark::DoNotOptimize(coordinatewise_trimmed_mean(batch, 3));
    });
    records.push_back({"trimmed_mean_blocked", m, d, block_trim,
                       block_trim > 0.0 ? naive_trim / block_trim : 0.0});
  }

  // Sparse distance build: the SpGEMM row-merge Gram vs the pairwise
  // sparse_dot_sparse build it replaced, at the acceptance shape (m=500,
  // d=10000, 1% density — a top-k compressed inbox at scale).
  {
    const std::size_t m = 500, d = 10000;
    const double density = 0.01;
    Rng rng(13);
    SparseRows rows(d);
    std::vector<std::uint32_t> idx;
    std::vector<double> val;
    for (std::size_t i = 0; i < m; ++i) {
      idx.clear();
      val.clear();
      for (std::size_t k = 0; k < d; ++k) {
        if (rng.uniform() >= density) continue;
        idx.push_back(static_cast<std::uint32_t>(k));
        val.push_back(rng.uniform(-1.0, 1.0));
      }
      rows.push_row(idx.data(), val.data(), val.size());
    }
    // Pairwise replica of the pre-SpGEMM constructor: m^2/2 ordered merges
    // (norms + Gram identity, no guard hit on this data).
    const auto pairwise = [&] {
      std::vector<double> norms(m), d2(m * m, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        norms[i] = kernels::sparse_dot_sparse(
            rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
            rows.row_indices(i), rows.row_values(i), rows.row_nnz(i));
      }
      for (std::size_t i = 0; i + 1 < m; ++i) {
        for (std::size_t j = i + 1; j < m; ++j) {
          const double g = kernels::sparse_dot_sparse(
              rows.row_indices(i), rows.row_values(i), rows.row_nnz(i),
              rows.row_indices(j), rows.row_values(j), rows.row_nnz(j));
          d2[i * m + j] = d2[j * m + i] = norms[i] + norms[j] - 2.0 * g;
        }
      }
      benchmark::DoNotOptimize(d2);
    };
    const double naive = time_ns(pairwise, 3);
    const double spgemm = time_ns(
        [&] { benchmark::DoNotOptimize(DistanceMatrix(rows)); }, 3);
    records.push_back({"sparse_distance_pairwise_merge", m, d, naive, 0.0});
    records.push_back({"sparse_distance_spgemm", m, d, spgemm,
                       spgemm > 0.0 ? naive / spgemm : 0.0});
  }

  // One full distance-based rule through the batch path vs the legacy
  // VectorList entry point (which rebuilds distances per pair).
  {
    const std::size_t m = 20, d = 20000;
    const VectorList pts = make_inputs(m, d, 11);
    const GradientBatch batch = GradientBatch::from(pts);
    AggregationContext ctx;
    ctx.n = m;
    ctx.t = 4;
    const auto rule = make_rule("KRUM");
    const double legacy =
        time_ns([&] { benchmark::DoNotOptimize(rule->aggregate(pts, ctx)); });
    const double fast = time_ns([&] {
      AggregationWorkspace ws(batch);
      benchmark::DoNotOptimize(rule->aggregate(batch, ws, ctx));
    });
    records.push_back(
        {"krum_batch_gram", m, d, fast, fast > 0.0 ? legacy / fast : 0.0});
  }

  const char* path = "BENCH_micro_aggregation.json";
  if (benchjson::write(path, records)) {
    std::printf("wrote %s (%zu records)\n", path, records.size());
    for (const auto& r : records) {
      std::printf("  %-32s m=%-3zu d=%-6zu %12.0f ns/op  speedup %.2fx\n",
                  r.op.c_str(), r.m, r.d, r.ns_op, r.speedup_vs_naive);
    }
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
  }
}

}  // namespace

// Custom main: emit the JSON records first (so they are written even when
// the --benchmark_filter selects nothing), then run the registered
// google-benchmark suites as usual.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emit_json();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
