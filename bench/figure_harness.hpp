#pragma once
// Shared glue for the figure/ablation reproduction benchmarks.
//
// Each bench binary is now a thin list of ScenarioSpecs (src/experiments/)
// plus this helper, which applies the shared CLI overrides (--full,
// --rounds, --seed, --delay, --subrounds, --threads) to every spec and
// drives them through one ScenarioRunner with console + optional CSV/JSON
// emitters.  All training loops live in the engine; the binaries only
// declare *what* to run.  bcl_run reuses EmitterSet so the artifact
// wiring exists in exactly one place.

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/bcl.hpp"

namespace bcl::bench {

/// The CLI flags every scenario-driven bench accepts (bcl_run adds its
/// sweep axes on top).
inline const std::vector<std::string>& scenario_flags() {
  static const std::vector<std::string> flags = {
      "full",  "rounds",    "seed", "csv",     "json",
      "threads", "delay", "subrounds", "net", "comp", "eval-max",
      "trace", "trace-dir", "profile"};
  return flags;
}

/// Applies scalar override flags to `spec` through ScenarioSpec::set, so
/// CLI values get the same strict validation (non-negative integers,
/// known enum values) as the textual grammar — `--rounds -1` fails with
/// the grammar's message instead of wrapping to 2^64-1.  Each entry of
/// `keys` is both the flag name and the spec key; `--full` is handled
/// separately (boolean flag, not a key=value).
inline void apply_scalar_flags(const CliArgs& args,
                               const std::vector<std::string>& keys,
                               experiments::ScenarioSpec& spec) {
  if (args.get_bool("full", false)) spec.full_scale = true;
  for (const auto& key : keys) {
    if (args.has(key)) spec.set(key, args.get_string(key, ""));
  }
  // Asking for trace artifacts without picking a level means "record
  // everything": --trace-dir/--profile imply trace=full on cells still at
  // the default (an explicit --trace or per-spec trace= wins).
  if ((args.has("trace-dir") || args.get_bool("profile", false)) &&
      spec.trace == "off") {
    spec.trace = "full";
  }
}

/// Console emitter plus the optional --csv/--json artifact emitters, with
/// their "written to" report — one construction site shared by the bench
/// harnesses and bcl_run.
struct EmitterSet {
  EmitterSet(std::ostream& os, const CliArgs& args,
             const std::string& csv_default, const std::string& json_default)
      : console(os) {
    pointers.push_back(&console);
    if (args.has("csv")) {
      csv_base = args.get_string("csv", csv_default);
      csv.emplace(csv_base);
      pointers.push_back(&*csv);
    }
    if (args.has("json")) {
      json_path = args.get_string("json", json_default);
      json.emplace(json_path);
      pointers.push_back(&*json);
    }
    const bool profile = args.get_bool("profile", false);
    if (args.has("trace-dir") || profile) {
      trace_dir = args.get_string("trace-dir", "");
      trace.emplace(trace_dir, profile, &os);
      pointers.push_back(&*trace);
    }
  }

  // `pointers` aliases this object's own members, so a copy/move would
  // leave the new object pointing into the old one (use-after-free once
  // the source dies).  Both call sites construct in place.
  EmitterSet(const EmitterSet&) = delete;
  EmitterSet& operator=(const EmitterSet&) = delete;

  /// Prints where the artifacts went (after the emitters' finish()).
  void report(std::ostream& os) const {
    if (csv) os << "\nCSV written to " << csv_base << "_{series,summary}.csv\n";
    if (json) os << "JSON written to " << json_path << "\n";
    if (trace && !trace_dir.empty()) {
      os << trace->written().size() << " trace file(s) written to "
         << trace_dir << "/trace_<cell>.json\n";
    }
  }

  experiments::ConsoleEmitter console;
  std::optional<experiments::CsvEmitter> csv;
  std::optional<experiments::JsonEmitter> json;
  std::optional<experiments::TraceEmitter> trace;
  std::string csv_base;
  std::string json_path;
  std::string trace_dir;
  std::vector<experiments::MetricsEmitter*> pointers;
};

/// Applies CLI overrides to `specs`, runs them all through the scenario
/// engine, prints the series/summary tables, writes --csv/--json
/// artifacts, and returns the per-scenario summaries for binary-specific
/// post-processing (pivot tables etc.).
inline std::vector<experiments::ScenarioSummary> run_scenarios(
    const std::string& title, std::vector<experiments::ScenarioSpec> specs,
    int argc, char** argv) {
  const CliArgs args(argc, argv, scenario_flags());
  for (auto& spec : specs) {
    apply_scalar_flags(args, {"rounds", "seed", "delay", "subrounds", "net",
                              "comp", "eval-max", "trace"},
                       spec);
  }

  std::cout << "=== " << title << ": " << specs.size()
            << " scenario(s) through the scenario engine ===\n\n";

  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
  experiments::ScenarioRunner runner(&pool);
  EmitterSet emitters(std::cout, args, title, "BENCH_" + title + ".json");
  const auto summaries = runner.run_all(specs, emitters.pointers);
  emitters.report(std::cout);
  return summaries;
}

}  // namespace bcl::bench
