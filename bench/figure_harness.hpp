#pragma once
// Shared harness for the figure-reproduction benchmarks.
//
// Each bench_figN binary builds the experiment of one paper figure
// (Section 5) at a reduced default scale (so the whole suite runs in
// minutes on a laptop; pass --full for closer-to-paper scale), runs every
// aggregation rule of that figure, and prints the accuracy-vs-round series
// the figure plots, plus a summary row per rule.  CSV artifacts are written
// next to the binary when --csv is given.

#include <iostream>
#include <string>
#include <vector>

#include "core/bcl.hpp"

namespace bcl::bench {

struct FigureScale {
  std::size_t image = 10;          ///< square image side
  std::size_t train_per_class = 60;
  std::size_t test_per_class = 20;
  std::size_t hidden1 = 16;
  std::size_t hidden2 = 8;
  std::size_t rounds = 60;
  std::size_t batch = 16;
  double lr = 0.25;
};

inline FigureScale reduced_scale() { return {}; }

inline FigureScale full_scale() {
  FigureScale s;
  s.image = 28;                 // the paper's 28x28 MNIST shape
  s.train_per_class = 200;
  s.test_per_class = 40;
  s.hidden1 = 64;
  s.hidden2 = 32;
  s.rounds = 150;
  s.batch = 32;
  s.lr = 0.1;
  return s;
}

struct FigureSpec {
  std::string figure;          ///< "fig1", "fig2a", ...
  std::vector<std::string> rules;
  std::vector<ml::Heterogeneity> heterogeneities;
  std::size_t byzantine = 1;
  std::string attack = "sign-flip";
  bool decentralized = false;
  /// Overrides the scale's default round count when nonzero (harder
  /// settings need longer horizons); --rounds still wins.
  std::size_t default_rounds = 0;
};

inline TrainingConfig make_training_config(const FigureSpec& spec,
                                           const FigureScale& scale,
                                           const std::string& rule,
                                           ml::Heterogeneity heterogeneity,
                                           std::uint64_t seed,
                                           ThreadPool* pool) {
  TrainingConfig cfg;
  cfg.num_clients = 10;
  cfg.num_byzantine = spec.byzantine;
  cfg.rounds = scale.rounds;
  cfg.batch_size = scale.batch;
  cfg.rule = make_rule(rule);
  cfg.attack = make_attack(spec.attack);
  cfg.schedule = ml::LearningRateSchedule(scale.lr, scale.lr / scale.rounds);
  cfg.heterogeneity = heterogeneity;
  cfg.seed = seed;
  cfg.pool = pool;
  return cfg;
}

/// Runs one figure (all rules x heterogeneities), printing per-round
/// accuracy series (sampled every `stride` rounds) and a summary table.
inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"full", "rounds", "seed", "csv", "threads", "delay"});
  FigureScale scale =
      args.get_bool("full", false) ? full_scale() : reduced_scale();
  if (spec.default_rounds != 0) scale.rounds = spec.default_rounds;
  scale.rounds = static_cast<std::size_t>(
      args.get_int("rounds", static_cast<long long>(scale.rounds)));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 11));
  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));

  ml::SyntheticSpec data_spec = ml::SyntheticSpec::mnist_like(seed);
  data_spec.height = scale.image;
  data_spec.width = scale.image;
  data_spec.train_per_class = scale.train_per_class;
  data_spec.test_per_class = scale.test_per_class;
  const auto data = ml::make_synthetic_dataset(data_spec);
  const std::size_t dim = data.train.feature_dim();
  const FigureScale s = scale;
  ModelFactory factory = [dim, s] {
    return ml::make_mlp(dim, s.hidden1, s.hidden2, 10);
  };

  std::cout << "=== " << spec.figure << ": "
            << (spec.decentralized ? "decentralized" : "centralized")
            << " collaborative learning, attack=" << spec.attack
            << ", f=" << spec.byzantine << ", MLP(" << dim << "-"
            << scale.hidden1 << "-" << scale.hidden2 << "-10), rounds="
            << scale.rounds << " ===\n\n";

  Table summary({"heterogeneity", "rule", "best acc", "final acc",
                 "rounds", "seconds"});
  Table series({"heterogeneity", "rule", "round", "accuracy"});
  const std::size_t stride = std::max<std::size_t>(1, scale.rounds / 12);

  for (const auto heterogeneity : spec.heterogeneities) {
    for (const auto& rule : spec.rules) {
      TrainingConfig cfg = make_training_config(
          spec, scale, rule, heterogeneity, seed, &pool);
      // Optional honest-message delays during the agreement sub-rounds
      // (decentralized figures only): --delay 0.3 etc.
      cfg.honest_delay_probability = args.get_double("delay", 0.0);
      Stopwatch watch;
      TrainingResult result;
      if (spec.decentralized) {
        DecentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
        result = trainer.run();
      } else {
        CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
        result = trainer.run();
      }
      const double secs = watch.seconds();
      for (const auto& metrics : result.history) {
        if (metrics.round % stride == 0 ||
            metrics.round + 1 == scale.rounds) {
          series.new_row()
              .add(ml::heterogeneity_name(heterogeneity))
              .add(rule)
              .add_int(static_cast<long long>(metrics.round))
              .add_num(metrics.accuracy, 4);
        }
      }
      summary.new_row()
          .add(ml::heterogeneity_name(heterogeneity))
          .add(rule)
          .add_num(result.best_accuracy(), 4)
          .add_num(result.final_accuracy, 4)
          .add_int(static_cast<long long>(scale.rounds))
          .add_num(secs, 2);
      std::cout << "[" << spec.figure << "] "
                << ml::heterogeneity_name(heterogeneity) << " / " << rule
                << ": best=" << format_double(result.best_accuracy(), 4)
                << " final=" << format_double(result.final_accuracy, 4)
                << " (" << format_double(secs, 2) << "s)\n";
    }
  }

  std::cout << "\n--- accuracy series (" << spec.figure << ") ---\n";
  series.print(std::cout);
  std::cout << "\n--- summary (" << spec.figure << ") ---\n";
  summary.print(std::cout);

  if (args.has("csv")) {
    const std::string base = args.get_string("csv", spec.figure);
    series.write_csv(base + "_series.csv");
    summary.write_csv(base + "_summary.csv");
    std::cout << "\nCSV written to " << base << "_{series,summary}.csv\n";
  }
  return 0;
}

}  // namespace bcl::bench
