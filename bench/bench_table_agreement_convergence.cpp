// Agreement-convergence table (Theorem 4.4 and Lemma 4.2).
//
// Part 1: per-round E_max of the honest bounding box for BOX-GEOM and
// BOX-MEAN under three adversaries, against the theoretical halving curve
// E_max / 2^r.  Part 2: rounds-to-epsilon versus the log2 bound.  Part 3:
// the Lemma 4.2 split-world execution where MD-GEOM (with sticky
// tie-breaking) never converges while BOX-GEOM halves every round.
//
//   ./bench/bench_table_agreement_convergence [--dim D] [--rounds R]
//       [--seed S] [--csv file]

#include <cmath>
#include <iostream>
#include <memory>

#include "core/bcl.hpp"

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv, {"dim", "rounds", "seed", "csv"});
  const std::size_t d = static_cast<std::size_t>(args.get_int("dim", 3));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 10));
  Rng root(static_cast<std::uint64_t>(args.get_int("seed", 23)));

  const std::size_t n = 10;
  const std::size_t t = 2;

  VectorList inputs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(d);
    for (auto& x : v) x = root.uniform(-5.0, 5.0);
    inputs.push_back(v);
  }
  std::vector<std::size_t> byz{n - 2, n - 1};

  auto make_adversary = [&](const std::string& name)
      -> std::unique_ptr<Adversary> {
    if (name == "sign-flip") {
      return std::make_unique<SignFlipAdversary>(byz);
    }
    if (name == "crash") {
      return std::make_unique<CrashAdversary>(
          byz, 1, VectorList{inputs[n - 2], inputs[n - 1]});
    }
    return std::make_unique<SplitWorldAdversary>(
        std::vector<std::size_t>{0, 1, 2, 3},
        std::vector<std::size_t>{4, 5, 6, 7},
        std::vector<std::size_t>{8}, std::vector<std::size_t>{9});
  };

  std::cout << "=== Part 1: E_max per round (Theorem 4.4: halves each "
               "round), n=10, t=2, d=" << d << " ===\n\n";
  Table emax_table({"adversary", "rule", "round", "E_max",
                    "halving bound"});
  for (const std::string adv_name : {"sign-flip", "crash", "split-world"}) {
    for (const std::string rule : {"BOX-GEOM", "BOX-MEAN"}) {
      auto adversary = make_adversary(adv_name);
      AgreementConfig cfg;
      cfg.n = n;
      cfg.t = t;
      cfg.round_function = make_round_function(rule);
      cfg.epsilon = 0.0;
      const auto result =
          run_fixed_rounds_agreement(inputs, *adversary, rounds, cfg);
      const double e0 = result.trace.honest_max_edge.front();
      for (std::size_t r = 0; r < result.trace.honest_max_edge.size(); ++r) {
        emax_table.new_row()
            .add(adv_name)
            .add(rule)
            .add_int(static_cast<long long>(r))
            .add_num(result.trace.honest_max_edge[r], 6)
            .add_num(e0 / std::pow(2.0, static_cast<double>(r)), 6);
      }
    }
  }
  emax_table.print(std::cout);

  std::cout << "\n=== Part 2: rounds to epsilon-agreement vs the log2 "
               "bound ===\n\n";
  Table eps_table({"epsilon", "rounds (BOX-GEOM)", "log2 bound"});
  for (const double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    SignFlipAdversary adversary(byz);
    AgreementConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.round_function = make_round_function("BOX-GEOM");
    cfg.epsilon = eps;
    cfg.max_rounds = 200;
    const auto result = run_approximate_agreement(inputs, adversary, cfg);
    const double d0 = result.trace.honest_diameter.front();
    eps_table.new_row()
        .add(format_double(eps, 6))
        .add_int(static_cast<long long>(result.rounds))
        .add_num(std::log2(std::sqrt(static_cast<double>(d)) * d0 / eps) +
                     1.0,
                 2);
  }
  eps_table.print(std::cout);

  std::cout << "\n=== Part 3: Lemma 4.2 split-world execution ===\n\n";
  {
    VectorList split_inputs(n, zeros(d));
    for (std::size_t i = 4; i < 8; ++i) split_inputs[i] = constant(d, 1.0);
    Table stuck({"round", "MD-GEOM diameter", "BOX-GEOM diameter"});
    SplitWorldAdversary adv_md({0, 1, 2, 3}, {4, 5, 6, 7}, {8}, {9});
    SplitWorldAdversary adv_box({0, 1, 2, 3}, {4, 5, 6, 7}, {8}, {9});
    AgreementConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.epsilon = 0.0;
    cfg.round_function = make_round_function("MD-GEOM-STICKY");
    const auto md =
        run_fixed_rounds_agreement(split_inputs, adv_md, rounds, cfg);
    cfg.round_function = make_round_function("BOX-GEOM");
    const auto box =
        run_fixed_rounds_agreement(split_inputs, adv_box, rounds, cfg);
    for (std::size_t r = 0; r < md.trace.honest_diameter.size(); ++r) {
      stuck.new_row()
          .add_int(static_cast<long long>(r))
          .add_num(md.trace.honest_diameter[r], 6)
          .add_num(box.trace.honest_diameter[r], 6);
    }
    stuck.print(std::cout);
    std::cout << "\nMD-GEOM's diameter is constant (no convergence, "
                 "Lemma 4.2); BOX-GEOM's halves every round "
                 "(Theorem 4.4).\n";
  }
  if (args.has("csv")) {
    emax_table.write_csv(args.get_string("csv", "table_convergence.csv"));
  }
  return 0;
}
