// Microbenchmarks of the geometry substrate: Weiszfeld iterations vs n and
// d, minimum enclosing balls, and the minimum-diameter subset search (the
// exponential-in-principle step MDA relies on, fast at n = 10).

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/bcl.hpp"

namespace {

using namespace bcl;

VectorList cloud(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  VectorList pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(d);
    for (auto& x : v) x = rng.gaussian();
    pts.push_back(v);
  }
  return pts;
}

void BM_Weiszfeld(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const VectorList pts = cloud(n, d, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometric_median(pts));
  }
}
BENCHMARK(BM_Weiszfeld)
    ->ArgsProduct({{8, 32, 128}, {8, 128, 2048}});

void BM_WeiszfeldIterations(benchmark::State& state) {
  // Reports the iteration count Weiszfeld needs at tightening tolerances.
  const double tol = 1.0 / std::pow(10.0, static_cast<double>(state.range(0)));
  const VectorList pts = cloud(16, 64, 5);
  WeiszfeldOptions options;
  options.tolerance = tol;
  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto result = geometric_median(pts, options);
    iterations = result.iterations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_WeiszfeldIterations)->DenseRange(4, 12, 2);

void BM_MinEnclosingBall(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  const VectorList pts = cloud(n, d, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimum_enclosing_ball(pts));
  }
}
BENCHMARK(BM_MinEnclosingBall)->ArgsProduct({{16, 64}, {2, 16, 256}});

void BM_MinDiameterSubset(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const VectorList pts = cloud(n, 8, 9);
  const std::size_t k = n - n / 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_diameter_subset(pts, k));
  }
}
BENCHMARK(BM_MinDiameterSubset)->DenseRange(10, 20, 5);

void BM_SubsetEnumeration(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::size_t count = 0;
    for_each_combination(m, m - 2,
                         [&](const std::vector<std::size_t>&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->DenseRange(10, 30, 10);

void BM_TrimmedHyperbox(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList pts = cloud(10, d, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trimmed_hyperbox(pts, 8));
  }
}
BENCHMARK(BM_TrimmedHyperbox)->RangeMultiplier(8)->Range(8, 4096);

void BM_Sgeo(benchmark::State& state) {
  // Cost of the full candidate set S_geo (the measurement apparatus of
  // Definition 3.3, also the per-step cost profile of BOX-GEOM).
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const VectorList pts = cloud(10, d, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_sgeo(pts, 2));
  }
}
BENCHMARK(BM_Sgeo)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
