// bench_scale: the client-scale sweep (ISSUE 8 tentpole artifact).
//
// Runs the streaming cohort trainer at m = 10^3..10^5 clients with a fixed
// cohort size, so the per-round cost and the resident set stay O(cohort*d)
// while the membership axis grows by two orders of magnitude.  Emits
// BENCH_scale.json (bench_json.hpp shape) with two record kinds per cell:
//
//   cohort_round   ns_op = wall nanoseconds per training round.
//                  speedup_vs_naive compares against the full-upload path
//                  (cohort=1, every client computes and uploads, one
//                  O(m*d) round batch) at the same m, measured in the same
//                  process — only while that reference is still reasonable
//                  to run (--compare-max, default 2000), 0 elsewhere.
//                  (The pre-cohort lockstep loop itself cannot be the
//                  reference here: it builds a Client per id and refuses
//                  empty shards, so it does not run past the dataset
//                  size.)
//   peak_rss_kb    ns_op carries getrusage(RUSAGE_SELF).ru_maxrss in KiB
//                  (the schema has one numeric slot; the op name declares
//                  the unit).  ru_maxrss is a process-lifetime high-water
//                  mark, so the cohort cells run first in ascending m —
//                  a flat profile across them is the bounded-memory
//                  evidence — and the O(m*d) full-upload references run
//                  only after every RSS sample is taken.
//   sharded_exact / sharded_sketch
//                  one aggregate_sharded call over a synthetic
//                  sketch_m x d inbox (the >= 10^4-row regime where the
//                  sketch=auto scenario dimension engages) with the exact
//                  rule pair versus its SKETCH-* counterparts.
//                  speedup_vs_naive on the sketch record = exact/sketch.
//
// The committed baseline lives at bench/baseline/scale.json; CI runs a
// reduced sweep (--ms with smaller values), whose records deliberately do
// not pair with the baseline keys — the sweep documents the trajectory, it
// is not a same-machine timing gate.
//
//   ./bench_scale                         # full sweep: m = 1000,10000,100000
//   ./bench_scale --ms 500,5000 --rounds 2   # CI smoke
//   ./bench_scale --threads 8 --shards 16

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "aggregation/sharded.hpp"
#include "bench_json.hpp"
#include "figure_harness.hpp"

namespace {

using namespace bcl;
using experiments::ScenarioSpec;

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(std::stoull(token));
  }
  return out;
}

double peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // Linux reports ru_maxrss in KiB already; macOS reports bytes.
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
  return static_cast<double>(usage.ru_maxrss);
#endif
}

/// One sweep cell: m clients, a fixed-size cohort, sharded aggregation.
ScenarioSpec make_spec(std::size_t m, std::size_t cohort_target,
                       std::size_t shards, const std::string& rule,
                       std::size_t rounds) {
  ScenarioSpec spec;
  spec.set("n", std::to_string(m));
  // ~1% Byzantine, at least one, and within the 3t < n validity bound.
  spec.set("f", std::to_string(std::max<std::size_t>(1, m / 100)));
  spec.set("rule", rule);
  spec.set("attack", "sign-flip");
  spec.set("rounds", std::to_string(rounds));
  spec.set("eval-max", "64");
  const double frac =
      std::min(1.0, static_cast<double>(cohort_target) /
                        static_cast<double>(m));
  char cohort[64];
  std::snprintf(cohort, sizeof(cohort), "%.6g,shards=%zu", frac, shards);
  spec.set("cohort", cohort);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"ms", "rounds", "cohort-size", "shards", "rule",
                      "compare-max", "sketch-m", "sketch-rule", "json",
                      "threads"});
  const std::vector<std::size_t> ms =
      parse_sizes(args.get_string("ms", "1000,10000,100000"));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 3));
  const std::size_t cohort_target =
      static_cast<std::size_t>(args.get_int("cohort-size", 256));
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 8));
  const std::string rule = args.get_string("rule", "CW-MEDIAN");
  const std::size_t compare_max =
      static_cast<std::size_t>(args.get_int("compare-max", 2000));
  const std::size_t sketch_m =
      static_cast<std::size_t>(args.get_int("sketch-m", 10000));
  const std::string sketch_rule = args.get_string("sketch-rule", "MULTIKRUM");
  const std::string json_path =
      args.get_string("json", "BENCH_scale.json");

  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
  experiments::ScenarioRunner runner(&pool);

  // Warm the shared dataset cache (and the allocator) outside the timed
  // cells: every cell reuses the same (mlp, reduced, seed) dataset.
  {
    ScenarioSpec warm = make_spec(10, 4, 1, rule, 1);
    const auto summary = runner.run(warm);
    if (!summary.error.empty()) {
      std::fprintf(stderr, "bench_scale: warmup failed: %s\n",
                   summary.error.c_str());
      return 1;
    }
  }

  // d of the reduced MLP every cell trains (reported in the records).
  const std::size_t dim = ml::make_mlp(100, 16, 8, 10).parameter_count();

  std::vector<benchjson::Record> records;
  std::printf("=== bench_scale: cohort=%zu shards=%zu rule=%s rounds=%zu "
              "===\n\n",
              cohort_target, shards, rule.c_str(), rounds);
  // Pass 1: the cohort cells, ascending m, RSS sampled after each — the
  // memory profile must not be polluted by the O(m*d) references below.
  std::vector<double> cohort_seconds(ms.size(), 0.0);
  std::vector<std::size_t> cohort_record_at(ms.size(), 0);
  for (std::size_t cell = 0; cell < ms.size(); ++cell) {
    const std::size_t m = ms[cell];
    const ScenarioSpec spec =
        make_spec(m, cohort_target, shards, rule, rounds);
    const auto summary = runner.run(spec);
    if (!summary.error.empty()) {
      std::fprintf(stderr, "bench_scale: m=%zu failed: %s\n", m,
                   summary.error.c_str());
      return 1;
    }
    cohort_seconds[cell] = summary.seconds;
    const double cohort_ns =
        summary.seconds * 1e9 / static_cast<double>(rounds);
    cohort_record_at[cell] = records.size();
    records.push_back({"cohort_round", m, dim, cohort_ns, 0.0});
    const double rss = peak_rss_kb();
    records.push_back({"peak_rss_kb", m, dim, rss, 0.0});
    std::printf("  m=%-7zu cohort_round %12.0f ns/op  peak rss %8.0f KiB\n",
                m, cohort_ns, rss);
  }

  // Pass 2: full-upload references (cohort=1, every client computes and
  // uploads into one O(m*d) round batch) at the same m — only while that
  // is small enough to be a fair single-process reference.
  for (std::size_t cell = 0; cell < ms.size(); ++cell) {
    const std::size_t m = ms[cell];
    if (m > compare_max || cohort_seconds[cell] <= 0.0) continue;
    ScenarioSpec full = make_spec(m, cohort_target, shards, rule, rounds);
    full.set("cohort", "1,shards=1");
    const auto reference = runner.run(full);
    if (!reference.error.empty()) {
      std::fprintf(stderr, "bench_scale: full-upload m=%zu failed: %s\n", m,
                   reference.error.c_str());
      return 1;
    }
    const double speedup = reference.seconds / cohort_seconds[cell];
    records[cohort_record_at[cell]].speedup_vs_naive = speedup;
    records.push_back({"full_upload_round", m, dim,
                       reference.seconds * 1e9 / static_cast<double>(rounds),
                       0.0});
    std::printf("  m=%-7zu full_upload  %12.0f ns/op  (cohort %.2fx faster)\n",
                m, reference.seconds * 1e9 / static_cast<double>(rounds),
                speedup);
  }

  // Pass 3: the sketched shard-rule cell (the sketch= dimension).  A
  // synthetic sketch_m x d inbox — the >= 10^4-row regime where
  // sketch=auto engages — aggregated through aggregate_sharded with the
  // exact rule pair versus its SKETCH-* counterparts, exactly the swap
  // run_cohort performs.  Isolated from the trainer so the record
  // measures the aggregation win alone, not gradient computation.
  //
  // The inbox mirrors the regime the sketch screen is for: a unit-scale
  // honest cluster plus a far Byzantine block (~1% of rows, leading each
  // shard slice so every shard sees the same cut).  The score gap across
  // that cut dwarfs the JL error bound, so the screen certifies and the
  // sketched path never pays the exact O((m/s)^2 * d) Gram per shard.  On
  // near-tied data it would fall back and cost slightly more than exact —
  // that regime is covered by the property tests, not timed here.  The
  // default rule pair is MULTIKRUM-q with q = honest rows per shard (the
  // selection cut sits exactly on the honest/Byzantine boundary);
  // --sketch-rule overrides with a verbatim registry name.
  if (sketch_m > 0) {
    const std::size_t sketch_shards = std::min(shards, sketch_m);
    const std::size_t per_shard = sketch_m / std::max<std::size_t>(1, sketch_shards);
    const std::size_t outliers = std::max<std::size_t>(1, per_shard / 100);
    Rng sketch_rng(33);
    GradientBatch inbox(sketch_m, dim);
    for (std::size_t i = 0; i < sketch_m; ++i) {
      // aggregate_sharded slices contiguously, so row i's shard-local
      // index is i % per_shard (exact when sketch_shards divides
      // sketch_m; a remainder only shifts later shards' cuts onto
      // honest/honest near-ties, which fall back and dilute the win).
      const bool byzantine = (i % per_shard) < outliers;
      const double offset = byzantine ? 100.0 : 0.0;
      double* row = inbox.row(i);
      for (std::size_t k = 0; k < dim; ++k) {
        row[k] = offset + sketch_rng.uniform(-1.0, 1.0);
      }
    }
    AggregationContext ctx;
    ctx.n = sketch_m;
    ctx.t = std::max<std::size_t>(1, sketch_m / 100);
    ctx.pool = &pool;
    std::string exact_name = sketch_rule;
    if (exact_name == "MULTIKRUM") {
      exact_name += "-" + std::to_string(per_shard - outliers);
    }
    const auto exact = make_rule(exact_name);
    const auto sketched = make_rule("SKETCH-" + exact_name);
    const auto time_pair = [&](const AggregationRule& rule) {
      AggregationWorkspace ws(inbox, &pool);
      const auto t0 = std::chrono::steady_clock::now();
      const Vector out = aggregate_sharded(inbox, ws, rule, rule, shards, ctx);
      const auto t1 = std::chrono::steady_clock::now();
      (void)out;
      return std::chrono::duration<double, std::nano>(t1 - t0).count();
    };
    const double exact_ns = time_pair(*exact);
    const double sketch_ns = time_pair(*sketched);
    records.push_back({"sharded_exact", sketch_m, dim, exact_ns, 0.0});
    records.push_back({"sharded_sketch", sketch_m, dim, sketch_ns,
                       exact_ns / sketch_ns});
    std::printf("\n  m=%-7zu sharded %s exact %12.0f ns  sketch %12.0f ns  "
                "(%.2fx)\n",
                sketch_m, exact_name.c_str(), exact_ns, sketch_ns,
                exact_ns / sketch_ns);
  }

  if (!benchjson::write(json_path, records)) {
    std::fprintf(stderr, "bench_scale: failed to write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu records)\n", json_path.c_str(),
              records.size());
  return 0;
}
