// Microbenchmark: event throughput of the discrete-event network core.
//
// The broadcast-storm workload (every node broadcasts to every node each
// round, quorum = n) measures nanoseconds per delivered event for the
// sharded per-destination engine against a faithful replica of the
// pre-sharding engine: one global std::priority_queue of 48-byte events
// and one heap-allocated Vector copy per delivery.  The sharded engine's
// win is architectural — per-receiver heaps with 24-byte events, arena
// payload views instead of per-delivery copies, and batch drains that
// parallelize across cores when a pool is attached — so the speedup shows
// up even single-threaded.
//
// main() emits BENCH_micro_network.json (see bench_json.hpp) before
// running the registered google-benchmark suites.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "bench_json.hpp"
#include "core/bcl.hpp"

namespace {

using namespace bcl;

constexpr std::uint64_t kSeed = 29;

// --- pre-sharding engine replica -------------------------------------------
//
// The structure the tentpole replaced: a single global priority queue over
// all receivers, (time, seq) ordering, round values stored as owned
// Vectors and *copied into every receiver's inbox* on delivery.  Trimmed
// to the fault-free broadcast-storm path (no drops, no timeouts, no
// Byzantine senders) so the comparison isolates queue + payload mechanics.

struct NaiveEvent {
  double time;
  std::uint64_t seq;
  std::uint32_t sender;
  std::uint32_t receiver;
  std::uint32_t round;
};

struct NaiveEventLater {
  bool operator()(const NaiveEvent& a, const NaiveEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct NaiveMessage {
  std::size_t sender;
  Vector payload;  // owned copy per delivery — the churn the arena removed
};

double run_naive_storm(std::size_t n, std::size_t dim, std::size_t rounds,
                       double* sink) {
  std::priority_queue<NaiveEvent, std::vector<NaiveEvent>, NaiveEventLater>
      queue;
  std::uint64_t seq = 0;
  std::vector<std::vector<NaiveMessage>> inboxes(n);
  std::vector<std::size_t> node_round(n, 0);
  // values[r % 2][s]: double-buffered owned round values, as the old
  // engine's per-round book held them.
  std::vector<std::vector<Vector>> values(2, std::vector<Vector>(n));

  const auto enter = [&](std::size_t s, std::size_t round, double at) {
    values[round % 2][s] = Vector(dim, static_cast<double>(s));
    for (std::size_t r = 0; r < n; ++r) {
      Rng rng = message_stream(kSeed, s, r, round);
      const double latency = s == r ? 0.0 : rng.uniform(0.5, 1.5);
      queue.push(NaiveEvent{at + latency, seq++, static_cast<std::uint32_t>(s),
                            static_cast<std::uint32_t>(r),
                            static_cast<std::uint32_t>(round)});
    }
  };
  for (std::size_t s = 0; s < n; ++s) enter(s, 0, 0.0);

  double delivered = 0.0;
  while (!queue.empty()) {
    const NaiveEvent e = queue.top();
    queue.pop();
    if (e.round != node_round[e.receiver]) continue;  // late straggler
    inboxes[e.receiver].push_back(
        NaiveMessage{e.sender, values[e.round % 2][e.sender]});
    if (inboxes[e.receiver].size() < n) continue;
    // Quorum reached: consume the inbox (touch every payload as a real
    // receiving rule would), then enter the next round.
    for (const NaiveMessage& msg : inboxes[e.receiver]) {
      *sink += msg.payload[0];
      delivered += 1.0;
    }
    inboxes[e.receiver].clear();
    const std::size_t next = ++node_round[e.receiver];
    if (next < rounds) enter(e.receiver, next, e.time);
  }
  return delivered;
}

// --- sharded engine under the same storm -----------------------------------

class StormProcess final : public HonestProcess {
 public:
  StormProcess(std::size_t id, std::size_t dim, double* sink)
      : id_(id), dim_(dim), sink_(sink) {}
  Vector outgoing(std::size_t /*round*/) const override {
    return Vector(dim_, static_cast<double>(id_));
  }
  void receive(std::size_t /*round*/, std::vector<Message>&& inbox) override {
    for (const Message& msg : inbox) *sink_ += msg.payload[0];
  }

 private:
  std::size_t id_;
  std::size_t dim_;
  double* sink_;
};

double run_sharded_storm(std::size_t n, std::size_t dim, std::size_t rounds,
                         ThreadPool* pool, double* sink) {
  std::vector<std::unique_ptr<StormProcess>> owned;
  std::vector<HonestProcess*> pointers;
  for (std::size_t i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<StormProcess>(i, dim, sink));
    pointers.push_back(owned.back().get());
  }
  NoAdversary adversary;
  UniformDelayModel delay(0.5, 1.5);
  EventNetworkConfig config;
  config.quorum = n;
  config.timeout = -1.0;
  config.seed = kSeed;
  config.delay = &delay;
  config.pool = pool;
  EventNetwork net(pointers, adversary, config);
  net.run(rounds);
  return static_cast<double>(net.stats().messages_delivered);
}

// --- google-benchmark suites ------------------------------------------------

void BM_EventStormNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double sink = 0.0;
  double events = 0.0;
  for (auto _ : state) {
    events += run_naive_storm(n, 8, 2, &sink);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["events/s"] = benchmark::Counter(
      events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventStormNaive)->Arg(50)->Arg(200);

void BM_EventStormSharded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double sink = 0.0;
  double events = 0.0;
  for (auto _ : state) {
    events += run_sharded_storm(n, 8, 2, nullptr, &sink);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["events/s"] = benchmark::Counter(
      events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventStormSharded)->Arg(50)->Arg(200);

void BM_EventStormShardedPool(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool;
  double sink = 0.0;
  double events = 0.0;
  for (auto _ : state) {
    events += run_sharded_storm(n, 8, 2, &pool, &sink);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["events/s"] = benchmark::Counter(
      events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventStormShardedPool)->Arg(50)->Arg(200);

// --- machine-readable records (BENCH_micro_network.json) -------------------

void emit_json() {
  using benchjson::Record;
  using benchjson::time_ns;
  std::vector<Record> records;

  struct Shape {
    std::size_t m;
    std::size_t rounds;
    int reps;
  };
  // One sweep per acceptance size; rounds shrink as m^2 grows so every
  // shape measures a comparable number of delivered events.
  for (const Shape& shape : {Shape{50, 20, 3}, {500, 2, 2}, {5000, 1, 1}}) {
    const std::size_t dim = 8;
    double sink = 0.0;
    double naive_events = 0.0;
    const double naive_ns = time_ns(
        [&] { naive_events = run_naive_storm(shape.m, dim, shape.rounds,
                                             &sink); },
        shape.reps);
    double sharded_events = 0.0;
    const double sharded_ns = time_ns(
        [&] {
          sharded_events =
              run_sharded_storm(shape.m, dim, shape.rounds, nullptr, &sink);
        },
        shape.reps);
    benchmark::DoNotOptimize(sink);
    const double naive_per_event =
        naive_events > 0.0 ? naive_ns / naive_events : 0.0;
    const double sharded_per_event =
        sharded_events > 0.0 ? sharded_ns / sharded_events : 0.0;
    records.push_back(
        {"event_drain_single_queue", shape.m, dim, naive_per_event, 0.0});
    records.push_back({"event_drain_sharded", shape.m, dim, sharded_per_event,
                       sharded_per_event > 0.0
                           ? naive_per_event / sharded_per_event
                           : 0.0});
  }

  const char* path = "BENCH_micro_network.json";
  if (benchjson::write(path, records)) {
    std::printf("wrote %s (%zu records)\n", path, records.size());
    for (const auto& r : records) {
      std::printf("  %-28s m=%-5zu d=%-3zu %9.1f ns/event  speedup %.2fx\n",
                  r.op.c_str(), r.m, r.d, r.ns_op, r.speedup_vs_naive);
    }
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
  }
}

}  // namespace

// Custom main: emit the JSON records first (so they are written even when
// the --benchmark_filter selects nothing), then run the registered
// google-benchmark suites as usual.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emit_json();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
