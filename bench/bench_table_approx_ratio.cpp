// Approximation-ratio table (Section 4 of the paper, Definition 3.3).
//
// Measures dist(output, mu*) / r_cov for every aggregation rule on four
// input families:
//   generic    - random honest cluster + colluding far outliers
//   krum-trap  - exactly n - t honest vectors (Theorem 4.3's construction:
//                the candidate ball is a single point, so any off-median
//                output has infinite ratio)
//   safe-trap  - the collapsed Theorem 4.1 construction {v0 x (f+1), v x df}
//   split      - two equal honest camps plus camp-supporting Byzantine
//                vectors (the Lemma 4.2 geometry)
// Expected shape: BOX-GEOM <= 2*sqrt(d) everywhere, MD-GEOM <= 2,
// Krum/Multi-Krum/medoid blow up on krum-trap, MEAN blows up on generic.
//
//   ./bench/bench_table_approx_ratio [--trials N] [--dim D] [--seed S]
//       [--csv file]

#include <cmath>
#include <iostream>
#include <limits>

#include "core/bcl.hpp"

namespace {

using namespace bcl;

struct Family {
  std::string name;
  // Returns {all inputs as received, honest inputs, excess t for S_geo}.
  std::function<void(Rng&, std::size_t, VectorList&, VectorList&,
                     std::size_t&)>
      build;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv, {"trials", "dim", "seed", "csv"});
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const std::size_t d = static_cast<std::size_t>(args.get_int("dim", 3));
  Rng root(static_cast<std::uint64_t>(args.get_int("seed", 17)));

  const std::size_t n = 10;
  const std::size_t t = 2;

  auto random_point = [&](Rng& rng, double span) {
    Vector p(d);
    for (auto& x : p) x = rng.uniform(-span, span);
    return p;
  };

  std::vector<Family> families;
  families.push_back(
      {"generic", [&](Rng& rng, std::size_t dim, VectorList& all,
                      VectorList& honest, std::size_t& excess) {
         (void)dim;
         honest.clear();
         for (std::size_t i = 0; i < n - t; ++i) {
           honest.push_back(random_point(rng, 1.0));
         }
         all = honest;
         all.push_back(constant(d, rng.uniform(5.0, 50.0)));
         all.push_back(constant(d, rng.uniform(-50.0, -5.0)));
         excess = t;
       }});
  families.push_back(
      {"krum-trap", [&](Rng& rng, std::size_t dim, VectorList& all,
                        VectorList& honest, std::size_t& excess) {
         (void)dim;
         // Byzantine silent: exactly n - t vectors arrive; the measurement
         // subsets have size n - t = all received -> excess 0.
         honest.clear();
         for (std::size_t i = 0; i < n - t; ++i) {
           honest.push_back(random_point(rng, 1.0));
         }
         all = honest;
         excess = 0;
       }});
  families.push_back(
      {"safe-trap", [&](Rng& rng, std::size_t dim, VectorList& all,
                        VectorList& honest, std::size_t& excess) {
         (void)dim;
         const double x = rng.uniform(20.0, 100.0);
         // {v0 x (t+1), v x (n - t - 1)}: every (n-t)-subset has a strict
         // majority at v, so S_geo = {v}.
         all.clear();
         honest.clear();
         for (std::size_t i = 0; i < t + 1; ++i) all.push_back(zeros(d));
         for (std::size_t i = t + 1; i < n; ++i) {
           all.push_back(constant(d, x));
         }
         honest.assign(all.begin() + static_cast<long>(t), all.end());
         excess = t;
       }});
  families.push_back(
      {"split", [&](Rng& rng, std::size_t dim, VectorList& all,
                    VectorList& honest, std::size_t& excess) {
         (void)dim;
         const Vector v1 = random_point(rng, 1.0);
         Vector v2 = v1;
         for (auto& x : v2) x += rng.uniform(2.0, 6.0);
         all.clear();
         honest.clear();
         for (std::size_t i = 0; i < (n - t) / 2; ++i) honest.push_back(v1);
         for (std::size_t i = (n - t) / 2; i < n - t; ++i) {
           honest.push_back(v2);
         }
         all = honest;
         all.push_back(v1);
         all.push_back(v2);
         excess = t;
       }});

  AggregationContext ctx;
  ctx.n = n;
  ctx.t = t;

  Table table({"family", "rule", "mean ratio", "max ratio", "inf count",
               "bound"});
  std::cout << "=== Approximation ratios vs the true geometric median "
               "(Definition 3.3), n=10, t=2, d=" << d << ", " << trials
            << " trials ===\n\n";

  for (const auto& family : families) {
    for (const auto& rule_name : all_rule_names()) {
      const auto rule = make_rule(rule_name);
      double sum = 0.0;
      double worst = 0.0;
      int finite = 0;
      int infinite = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng = root.split(static_cast<std::uint64_t>(trial) * 1315 +
                             std::hash<std::string>{}(family.name) % 1000);
        VectorList all;
        VectorList honest;
        std::size_t excess = t;
        family.build(rng, d, all, honest, excess);
        Vector out;
        try {
          out = rule->aggregate(all, ctx);
        } catch (const std::exception&) {
          continue;  // rule rejects this input shape (e.g. too few vectors)
        }
        const auto report =
            measure_geo_approximation(all, honest, excess, out);
        if (std::isinf(report.ratio)) {
          ++infinite;
        } else {
          sum += report.ratio;
          worst = std::max(worst, report.ratio);
          ++finite;
        }
      }
      std::string bound = "-";
      if (rule_name == "BOX-GEOM") {
        bound = "2*sqrt(d) = " +
                format_double(2.0 * std::sqrt(static_cast<double>(d)), 3);
      } else if (rule_name == "MD-GEOM") {
        bound = "2 (single round)";
      } else if (rule_name == "KRUM" || rule_name == "MULTIKRUM-3" ||
                 rule_name == "MEDOID") {
        bound = "unbounded (Thm 4.3)";
      }
      table.new_row()
          .add(family.name)
          .add(rule_name)
          .add(finite > 0 ? format_double(sum / finite, 3) : "-")
          .add(finite > 0 ? format_double(worst, 3) : "-")
          .add_int(infinite)
          .add(bound);
    }
  }
  table.print(std::cout);
  std::cout << "\n'inf count' = trials where r_cov = 0 but the output "
               "missed mu* (the unbounded-ratio mechanism of Theorems 4.1 "
               "and 4.3).\n";
  if (args.has("csv")) {
    table.write_csv(args.get_string("csv", "table_approx_ratio.csv"));
  }
  return 0;
}
