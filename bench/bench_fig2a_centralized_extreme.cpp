// Figure 2a: centralized, MLP on MNIST-like data, f = 2 sign-flip
// attackers, extreme (2-class) heterogeneity.  Paper shape: MD-MEAN fails
// to converge, MD-GEOM is unstable but reaches the best accuracy, BOX-MEAN
// and BOX-GEOM converge around 57%, Krum/Multi-Krum converge to low
// accuracy (30-39%).
//
//   ./bench/bench_fig2a_centralized_extreme [--full] [--rounds N] ...

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  bcl::bench::FigureSpec spec;
  spec.figure = "fig2a";
  spec.rules = {"KRUM",    "MULTIKRUM-3", "MD-MEAN", "MD-GEOM",
                "BOX-MEAN", "BOX-GEOM"};
  spec.heterogeneities = {bcl::ml::Heterogeneity::Extreme};
  spec.byzantine = 2;
  spec.attack = "sign-flip";
  spec.decentralized = false;
  // The hardest setting of the evaluation: extreme heterogeneity plus two
  // attackers converges slowly and unstably (as in the paper's Figure 2a).
  spec.default_rounds = 100;
  return bcl::bench::run_figure(spec, argc, argv);
}
