// Figure 2a: centralized, MLP on MNIST-like data, f = 2 sign-flip
// attackers, extreme (2-class) heterogeneity.  Paper shape: MD-MEAN fails
// to converge, MD-GEOM is unstable but reaches the best accuracy, BOX-MEAN
// and BOX-GEOM converge around 57%, Krum/Multi-Krum converge to low
// accuracy (30-39%).
//
//   ./bench/bench_fig2a_centralized_extreme [--full] [--rounds N] ...

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  std::vector<ScenarioSpec> specs;
  for (const char* rule :
       {"KRUM", "MULTIKRUM-3", "MD-MEAN", "MD-GEOM", "BOX-MEAN",
        "BOX-GEOM"}) {
    // The hardest setting of the evaluation: extreme heterogeneity plus two
    // attackers converges slowly and unstably (as in the paper's Figure
    // 2a), hence the longer default horizon.
    specs.push_back(ScenarioSpec::parse(
        std::string("topology=centralized attack=sign-flip f=2 seed=11 "
                    "het=extreme rounds=100 rule=") +
        rule));
  }
  bcl::bench::run_scenarios("fig2a", std::move(specs), argc, argv);
  return 0;
}
