// Figure 2b: centralized collaborative learning with CifarNet (a
// medium-sized CNN) on the CIFAR-like synthetic dataset, f = 1 sign flip,
// mild heterogeneity.  Paper shape: all methods saturate lower than on
// MNIST (<= ~70%); BOX-GEOM / BOX-MEAN / MD-GEOM / MD-MEAN above 67%,
// Multi-Krum ~64%, Krum clearly worst (~55%).
//
//   ./bench/bench_fig2b_cifarnet [--full] [--rounds N] [--seed S]
//       [--csv basename] [--threads K]

#include <iostream>

#include "core/bcl.hpp"

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv, {"full", "rounds", "seed", "csv", "threads"});
  const bool full = args.get_bool("full", false);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 13));

  // Reduced default: 16x16x3 images and a narrow CifarNet; --full uses the
  // paper's 32x32x3.
  ml::SyntheticSpec spec = ml::SyntheticSpec::cifar_like(seed);
  if (!full) {
    spec.height = 16;
    spec.width = 16;
    spec.train_per_class = 80;
    spec.test_per_class = 25;
  }
  const auto data = ml::make_synthetic_dataset(spec);
  const std::size_t channels = spec.channels;
  const std::size_t side = spec.height;
  const std::size_t w1 = full ? 8 : 4;
  const std::size_t w2 = full ? 16 : 8;
  const std::size_t fc = full ? 64 : 24;
  ModelFactory factory = [=] {
    return ml::make_cifarnet(channels, side, side, 10, w1, w2, fc);
  };

  // CifarNet needs far more rounds than the MLP (the paper makes the same
  // observation for Figure 2b).
  const std::size_t rounds = static_cast<std::size_t>(
      args.get_int("rounds", full ? 400 : 200));
  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));

  std::cout << "=== fig2b: centralized CifarNet on CIFAR-like data ("
            << side << "x" << side << "x3), f=1 sign flip, mild "
            << "heterogeneity, rounds=" << rounds << " ===\n\n";

  Table summary({"rule", "best acc", "final acc", "seconds"});
  Table series({"rule", "round", "accuracy"});
  const std::size_t stride = std::max<std::size_t>(1, rounds / 10);

  for (const char* rule :
       {"KRUM", "MULTIKRUM-3", "MD-MEAN", "MD-GEOM", "BOX-MEAN",
        "BOX-GEOM"}) {
    TrainingConfig cfg;
    cfg.num_clients = 10;
    cfg.num_byzantine = 1;
    cfg.rounds = rounds;
    cfg.batch_size = full ? 32 : 16;
    cfg.rule = make_rule(rule);
    cfg.attack = make_attack("sign-flip");
    // CifarNet needs a small rate: larger steps kill the ReLUs before the
    // conv filters orient (observed dead-ReLU collapse at 0.1+).
    cfg.schedule = ml::LearningRateSchedule(0.05, 0.05 / rounds);
    cfg.heterogeneity = ml::Heterogeneity::Mild;
    cfg.seed = seed;
    cfg.pool = &pool;

    Stopwatch watch;
    CentralizedTrainer trainer(cfg, factory, &data.train, &data.test);
    const auto result = trainer.run();
    const double secs = watch.seconds();
    for (const auto& metrics : result.history) {
      if (metrics.round % stride == 0 || metrics.round + 1 == rounds) {
        series.new_row()
            .add(rule)
            .add_int(static_cast<long long>(metrics.round))
            .add_num(metrics.accuracy, 4);
      }
    }
    summary.new_row()
        .add(rule)
        .add_num(result.best_accuracy(), 4)
        .add_num(result.final_accuracy, 4)
        .add_num(secs, 2);
    std::cout << "[fig2b] " << rule
              << ": best=" << format_double(result.best_accuracy(), 4)
              << " (" << format_double(secs, 2) << "s)\n";
  }

  std::cout << "\n--- accuracy series (fig2b) ---\n";
  series.print(std::cout);
  std::cout << "\n--- summary (fig2b) ---\n";
  summary.print(std::cout);
  if (args.has("csv")) {
    const std::string base = args.get_string("csv", "fig2b");
    series.write_csv(base + "_series.csv");
    summary.write_csv(base + "_summary.csv");
  }
  return 0;
}
