// Figure 2b: centralized collaborative learning with CifarNet (a
// medium-sized CNN) on the CIFAR-like synthetic dataset, f = 1 sign flip,
// mild heterogeneity.  Paper shape: all methods saturate lower than on
// MNIST (<= ~70%); BOX-GEOM / BOX-MEAN / MD-GEOM / MD-MEAN above 67%,
// Multi-Krum ~64%, Krum clearly worst (~55%).
//
//   ./bench/bench_fig2b_cifarnet [--full] [--rounds N] [--seed S]
//       [--csv basename] [--json file] [--threads K]

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  std::vector<ScenarioSpec> specs;
  for (const char* rule :
       {"KRUM", "MULTIKRUM-3", "MD-MEAN", "MD-GEOM", "BOX-MEAN",
        "BOX-GEOM"}) {
    // model=cifarnet picks the CIFAR-like dataset and the CifarNet scale
    // defaults (200/400 rounds, lr 0.05 — CifarNet needs far more rounds
    // than the MLP, as the paper observes for Figure 2b).
    specs.push_back(ScenarioSpec::parse(
        std::string("topology=centralized model=cifarnet attack=sign-flip "
                    "f=1 seed=13 het=mild rule=") +
        rule));
  }
  bcl::bench::run_scenarios("fig2b", std::move(specs), argc, argv);
  return 0;
}
