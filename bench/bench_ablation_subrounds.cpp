// Ablation: how many agreement sub-rounds does decentralized learning
// need?  The paper adopts the El-Mhamdi et al. schedule of ceil(log2 t)
// sub-rounds per learning iteration; this bench compares fixed budgets of
// 1..4 sub-rounds (ScenarioSpec key `subrounds`) against the logarithmic
// schedule (subrounds=0) for BOX-GEOM under a sign-flip attack, reporting
// best/final accuracy and the mean residual gradient disagreement.
//
// Honest messages are delayed with probability 0.35 (floor n - t enforced
// by the protocol): without delays every honest inbox is identical and one
// sub-round already produces exact agreement, hiding the schedule.
//
//   ./bench/bench_ablation_subrounds [--rounds N] [--seed S] [--csv base]
//       [--json file] [--threads K]

#include <iostream>

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  // The sub-round budget IS this ablation's axis: the shared --subrounds
  // override would silently collapse all five specs into identical runs.
  {
    const bcl::CliArgs pre(argc, argv, bcl::bench::scenario_flags());
    if (pre.has("subrounds")) {
      std::cerr << "bench_ablation_subrounds: --subrounds would collapse "
                   "the budget axis this ablation sweeps; the budgets are "
                   "fixed per scenario (1..4 and the log schedule)\n";
      return 1;
    }
  }
  std::vector<ScenarioSpec> specs;
  for (int budget : {1, 2, 3, 4, 0}) {  // 0 = the paper's log schedule
    specs.push_back(ScenarioSpec::parse(
        "topology=decentralized rule=BOX-GEOM attack=sign-flip f=1 het=mild "
        "seed=31 rounds=25 delay=0.35 subrounds=" +
        std::to_string(budget)));
  }
  const auto summaries = bcl::bench::run_scenarios(
      "ablation-subrounds", std::move(specs), argc, argv);

  bcl::Table table({"sub-rounds per iteration", "best acc", "final acc",
                    "mean gradient disagreement"});
  for (const auto& summary : summaries) {
    if (!summary.error.empty()) {
      table.new_row()
          .add(summary.spec.subrounds == 0
                   ? "ceil(log2 t) (paper)"
                   : std::to_string(summary.spec.subrounds))
          .add("FAILED")
          .add("FAILED")
          .add("FAILED");
      continue;
    }
    double disagreement_sum = 0.0;
    for (const auto& metrics : summary.result.history) {
      disagreement_sum += metrics.disagreement;
    }
    const double rounds =
        std::max<std::size_t>(1, summary.result.history.size());
    table.new_row()
        .add(summary.spec.subrounds == 0
                 ? "ceil(log2 t) (paper)"
                 : std::to_string(summary.spec.subrounds))
        .add_num(summary.result.best_accuracy(), 4)
        .add_num(summary.result.final_accuracy, 4)
        .add_num(disagreement_sum / rounds, 6);
  }
  std::cout << "\n--- sub-round budget vs accuracy/disagreement ---\n";
  table.print(std::cout);
  const bcl::CliArgs args(argc, argv, bcl::bench::scenario_flags());
  if (args.has("csv")) {
    const std::string path =
        args.get_string("csv", "ablation-subrounds") + "_budgets.csv";
    table.write_csv(path);
    std::cout << "\nBudget CSV written to " << path << "\n";
  }
  std::cout << "\nEach extra sub-round halves the residual disagreement "
               "(Theorem 4.4); accuracy saturates once disagreement is "
               "small relative to gradient noise — the paper's log "
               "schedule is enough.\n";
  return 0;
}
