// Ablation: how many agreement sub-rounds does decentralized learning
// need?  The paper adopts the El-Mhamdi et al. schedule of ceil(log2 t)
// sub-rounds per learning iteration; this bench compares fixed budgets of
// 1..4 sub-rounds against the logarithmic schedule for BOX-GEOM under a
// sign-flip attack, reporting final accuracy and the residual gradient
// disagreement.
//
//   ./bench/bench_ablation_subrounds [--rounds N] [--seed S] [--csv file]

#include <iostream>

#include "core/bcl.hpp"

namespace {

using namespace bcl;

// Decentralized trainer variant with a fixed sub-round budget, built from
// the public protocol API (the library trainer uses the paper's log
// schedule; this harness re-implements the loop to vary the budget).
struct FixedSubroundResult {
  double best_accuracy = 0.0;
  double final_accuracy = 0.0;
  double mean_disagreement = 0.0;
};

FixedSubroundResult run_fixed_subrounds(
    const ml::TrainTestSplit& data, const ModelFactory& factory,
    std::size_t subrounds_budget, bool use_log_schedule, std::size_t rounds,
    std::uint64_t seed, ThreadPool* pool) {
  const std::size_t n = 10;
  const std::size_t f = 1;
  const std::size_t t = 1;
  Rng root(seed);
  Rng partition_rng = root.split(1);
  const auto shards = ml::partition_dataset(data.train, n,
                                            ml::Heterogeneity::Mild,
                                            partition_rng);
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<Client>(
        i, &data.train, shards[i], factory, 16, root.split(100 + i)));
  }
  ml::Model init_model = factory();
  Rng init_rng = root.split(2);
  init_model.initialize(init_rng);
  VectorList params(n - f, init_model.parameters());

  AgreementConfig agreement;
  agreement.n = n;
  agreement.t = t;
  agreement.round_function = make_round_function("BOX-GEOM");
  agreement.pool = pool;

  const auto attack = make_attack("sign-flip");
  Rng attack_rng = root.split(3);
  const ml::LearningRateSchedule schedule(0.25, 0.25 / rounds);

  FixedSubroundResult result;
  double disagreement_sum = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<GradientEstimate> estimates(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Vector& at = i < n - f ? params[i] : params[0];
      estimates[i] = clients[i]->stochastic_gradient(at);
    }
    VectorList honest;
    for (std::size_t i = 0; i < n - f; ++i) {
      honest.push_back(estimates[i].gradient);
    }
    std::vector<std::optional<Vector>> byz_values(n);
    for (std::size_t i = n - f; i < n; ++i) {
      byz_values[i] =
          attack->corrupt(estimates[i].gradient, honest, round, attack_rng);
    }
    std::vector<std::size_t> byz_ids;
    for (std::size_t i = n - f; i < n; ++i) byz_ids.push_back(i);
    PerNodeFixedAdversary fixed(byz_ids, byz_values);
    // Honest messages delayed with probability 0.35 (floor n - t enforced
    // by the protocol): without delays every honest inbox is identical and
    // one sub-round already produces exact agreement, hiding the schedule.
    DelayingAdversary adversary(fixed, 0.35, seed ^ (round * 977u));

    VectorList inputs(n, zeros(honest[0].size()));
    for (std::size_t i = 0; i < n - f; ++i) inputs[i] = honest[i];
    const std::size_t budget =
        use_log_schedule ? agreement_subrounds(round) : subrounds_budget;
    const auto agreed =
        run_fixed_rounds_agreement(inputs, adversary, budget, agreement);

    const double lr = schedule.rate(round);
    for (std::size_t i = 0; i < n - f; ++i) {
      ml::sgd_step(params[i], agreed.outputs[i], lr);
    }
    disagreement_sum += agreed.trace.honest_diameter.back();

    double acc_sum = 0.0;
    for (std::size_t i = 0; i < n - f; ++i) {
      acc_sum += clients[i]->evaluate(params[i], data.test, 0);
    }
    const double acc = acc_sum / static_cast<double>(n - f);
    result.best_accuracy = std::max(result.best_accuracy, acc);
    result.final_accuracy = acc;
  }
  result.mean_disagreement = disagreement_sum / static_cast<double>(rounds);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcl;
  const CliArgs args(argc, argv, {"rounds", "seed", "csv", "threads"});
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 25));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 31));
  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));

  ml::SyntheticSpec spec = ml::SyntheticSpec::mnist_small(seed);
  spec.height = 8;
  spec.width = 8;
  spec.train_per_class = 50;
  spec.test_per_class = 15;
  const auto data = ml::make_synthetic_dataset(spec);
  const std::size_t dim = data.train.feature_dim();
  ModelFactory factory = [dim] { return ml::make_mlp(dim, 16, 8, 10); };

  std::cout << "=== Sub-round budget ablation (decentralized BOX-GEOM, "
               "sign flip, f=1, " << rounds << " learning rounds) ===\n\n";
  Table table({"sub-rounds per iteration", "best acc", "final acc",
               "mean gradient disagreement"});
  for (std::size_t budget = 1; budget <= 4; ++budget) {
    const auto r = run_fixed_subrounds(data, factory, budget, false, rounds,
                                       seed, &pool);
    table.new_row()
        .add(std::to_string(budget))
        .add_num(r.best_accuracy, 4)
        .add_num(r.final_accuracy, 4)
        .add_num(r.mean_disagreement, 6);
    std::cout << "[ablation-subrounds] budget " << budget << " done\n";
  }
  {
    const auto r = run_fixed_subrounds(data, factory, 0, true, rounds, seed,
                                       &pool);
    table.new_row()
        .add("ceil(log2 t) (paper)")
        .add_num(r.best_accuracy, 4)
        .add_num(r.final_accuracy, 4)
        .add_num(r.mean_disagreement, 6);
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nEach extra sub-round halves the residual disagreement "
               "(Theorem 4.4); accuracy saturates once disagreement is "
               "small relative to gradient noise — the paper's log "
               "schedule is enough.\n";
  if (args.has("csv")) {
    table.write_csv(args.get_string("csv", "ablation_subrounds.csv"));
  }
  return 0;
}
