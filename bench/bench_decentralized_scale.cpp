// bench_decentralized_scale: sub-round cost of the agreement protocol at
// scale (ISSUE 9 tentpole artifact).
//
// Runs fixed-round approximate agreement with a Krum-family round function
// at m = 100..2000 nodes under the sync engine and measures the wall cost
// per sub-round for three configurations of the same protocol:
//
//   subround_shared   the default path: zero-copy inbox views over the
//                     round arena + cross-node memoization (one Gram/step
//                     build per distinct sub-round inbox).
//                     speedup_vs_naive compares against subround_copy at
//                     the same m, measured in the same process — only
//                     while that reference is still reasonable to run
//                     (--compare-max, default 2000), 0 elsewhere.
//   subround_private  ablation: views on, sharing off — every node pays
//                     its own O(m^2 d) build over the borrowed inbox.
//   subround_copy     the pre-PR path: owned per-node inbox copies
//                     (payload_batch) and per-node builds.
//   peak_rss_kb       ns_op carries getrusage(RUSAGE_SELF).ru_maxrss in
//                     KiB.  ru_maxrss is a process-lifetime high-water
//                     mark, so the shared cells run first in ascending m —
//                     the O(n d) memory evidence — and the per-node
//                     ablations run only after every RSS sample is taken.
//
// All three configurations produce bitwise-identical agreement traces
// (tests/subround_sharing_test.cpp enforces it); the bench prints the
// sharing counters so a collapsed build count (one per sub-round under
// sync, no faults) is visible alongside the timing.
//
// The committed baseline lives at bench/baseline/decentralized_scale.json;
// CI runs a reduced sweep (--ms with smaller values) whose records
// deliberately do not pair with the baseline keys.
//
//   ./bench_decentralized_scale                      # m = 100,500,2000
//   ./bench_decentralized_scale --ms 50,200 --subrounds 2   # CI smoke
//   ./bench_decentralized_scale --rule MULTIKRUM-8 --threads 8

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/bcl.hpp"

namespace {

using namespace bcl;

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream stream(csv);
  std::string token;
  while (!csv.empty() && std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(std::stoull(token));
  }
  return out;
}

double peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
  return static_cast<double>(usage.ru_maxrss);
#endif
}

struct Cell {
  double seconds = 0.0;
  SharingStats sharing;
};

/// One timed agreement run: m nodes, ~1% sign-flip Byzantine, fixed
/// sub-round count.  `views`/`share` select the configuration under test.
Cell run_cell(std::size_t m, std::size_t dim, std::size_t subrounds,
              const std::string& rule, std::uint64_t seed, ThreadPool* pool,
              bool views, bool share) {
  Rng rng(seed);
  VectorList inputs;
  inputs.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    Vector v(dim);
    for (auto& x : v) x = rng.uniform(-5.0, 5.0);
    inputs.push_back(std::move(v));
  }
  const std::size_t f = std::max<std::size_t>(1, m / 100);
  std::vector<std::size_t> byz;
  for (std::size_t i = m - f; i < m; ++i) byz.push_back(i);
  SignFlipAdversary adversary(byz);

  AgreementConfig cfg;
  cfg.n = m;
  cfg.t = f;
  cfg.round_function = make_round_function(rule);
  cfg.epsilon = 0.0;
  cfg.pool = pool;
  cfg.inbox_views = views;
  cfg.share_subrounds = share;

  const auto t0 = std::chrono::steady_clock::now();
  const AgreementResult result =
      run_fixed_rounds_agreement(inputs, adversary, subrounds, cfg);
  const auto t1 = std::chrono::steady_clock::now();

  Cell cell;
  cell.seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.sharing = result.sharing;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"ms", "dim", "subrounds", "rule", "compare-max",
                      "compare-subrounds", "seed", "json", "threads"});
  const std::vector<std::size_t> ms =
      parse_sizes(args.get_string("ms", "100,500,2000"));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const std::size_t subrounds =
      static_cast<std::size_t>(args.get_int("subrounds", 3));
  const std::string rule = args.get_string("rule", "KRUM");
  const std::size_t compare_max =
      static_cast<std::size_t>(args.get_int("compare-max", 2000));
  // The per-node ablations cost O(m^3 d) per sub-round across the system —
  // minutes at m=2000 — so they run fewer sub-rounds than the shared
  // cells; per-sub-round nanoseconds stay comparable.
  const std::size_t compare_subrounds =
      static_cast<std::size_t>(args.get_int("compare-subrounds", 1));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 29));
  const std::string json_path =
      args.get_string("json", "BENCH_decentralized_scale.json");

  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));

  // Warm the allocator, the pool and the instruction cache outside the
  // timed cells.
  (void)run_cell(16, dim, 1, rule, seed, &pool, true, true);

  std::vector<benchjson::Record> records;
  std::printf("=== bench_decentralized_scale: rule=%s d=%zu subrounds=%zu "
              "===\n\n",
              rule.c_str(), dim, subrounds);

  // Pass 1: the default (shared, view) cells, ascending m, RSS sampled
  // after each — the memory profile must not be polluted by the per-node
  // ablations below.
  std::vector<double> shared_seconds(ms.size(), 0.0);
  std::vector<std::size_t> shared_record_at(ms.size(), 0);
  for (std::size_t cell = 0; cell < ms.size(); ++cell) {
    const std::size_t m = ms[cell];
    const Cell shared =
        run_cell(m, dim, subrounds, rule, seed, &pool, true, true);
    shared_seconds[cell] = shared.seconds;
    const double ns = shared.seconds * 1e9 / static_cast<double>(subrounds);
    shared_record_at[cell] = records.size();
    records.push_back({"subround_shared", m, dim, ns, 0.0});
    const double rss = peak_rss_kb();
    records.push_back({"peak_rss_kb", m, dim, rss, 0.0});
    std::printf("  m=%-6zu subround_shared  %14.0f ns/subround  "
                "builds=%zu hits=%zu  peak rss %8.0f KiB\n",
                m, ns, shared.sharing.gram_builds, shared.sharing.shared_hits,
                rss);
  }

  // Pass 2: per-node ablations at the same m — sharing off (views still
  // on), then the pre-PR owned-copy path — while small enough to be a
  // fair single-process reference.
  for (std::size_t cell = 0; cell < ms.size(); ++cell) {
    const std::size_t m = ms[cell];
    if (m > compare_max || shared_seconds[cell] <= 0.0) continue;
    const Cell priv =
        run_cell(m, dim, compare_subrounds, rule, seed, &pool, true, false);
    const Cell copy =
        run_cell(m, dim, compare_subrounds, rule, seed, &pool, false, false);
    const double priv_ns =
        priv.seconds * 1e9 / static_cast<double>(compare_subrounds);
    const double copy_ns =
        copy.seconds * 1e9 / static_cast<double>(compare_subrounds);
    const double shared_ns =
        shared_seconds[cell] * 1e9 / static_cast<double>(subrounds);
    const double speedup = copy_ns / shared_ns;
    records[shared_record_at[cell]].speedup_vs_naive = speedup;
    records.push_back({"subround_private", m, dim, priv_ns, 0.0});
    records.push_back({"subround_copy", m, dim, copy_ns, 0.0});
    std::printf("  m=%-6zu subround_private %14.0f ns/subround\n", m,
                priv_ns);
    std::printf("  m=%-6zu subround_copy    %14.0f ns/subround  "
                "(shared %.1fx faster)\n",
                m, copy_ns, speedup);
  }

  if (!benchjson::write(json_path, records)) {
    std::fprintf(stderr, "bench_decentralized_scale: failed to write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu records)\n", json_path.c_str(),
              records.size());
  return 0;
}
