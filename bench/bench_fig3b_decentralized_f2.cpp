// Figure 3b: decentralized collaborative learning, MLP, f = 2 sign-flip,
// mild heterogeneity.  Paper shape: MD-MEAN and BOX-MEAN fail to converge;
// MD-GEOM reaches ~65% but is unstable; BOX-GEOM converges around 62%.
//
//   ./bench/bench_fig3b_decentralized_f2 [--full] [--rounds N] ...

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  bcl::bench::FigureSpec spec;
  spec.figure = "fig3b";
  spec.rules = {"MD-MEAN", "MD-GEOM", "BOX-MEAN", "BOX-GEOM"};
  spec.heterogeneities = {bcl::ml::Heterogeneity::Mild};
  spec.byzantine = 2;
  spec.attack = "sign-flip";
  spec.decentralized = true;
  return bcl::bench::run_figure(spec, argc, argv);
}
