// Figure 3b: decentralized collaborative learning, MLP, f = 2 sign-flip,
// mild heterogeneity.  Paper shape: MD-MEAN and BOX-MEAN fail to converge;
// MD-GEOM reaches ~65% but is unstable; BOX-GEOM converges around 62%.
//
//   ./bench/bench_fig3b_decentralized_f2 [--full] [--rounds N] [--delay P]
//       ...

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  std::vector<ScenarioSpec> specs;
  for (const char* rule : {"MD-MEAN", "MD-GEOM", "BOX-MEAN", "BOX-GEOM"}) {
    specs.push_back(ScenarioSpec::parse(
        std::string("topology=decentralized attack=sign-flip f=2 seed=11 "
                    "het=mild rule=") +
        rule));
  }
  bcl::bench::run_scenarios("fig3b", std::move(specs), argc, argv);
  return 0;
}
