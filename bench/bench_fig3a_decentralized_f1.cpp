// Figure 3a: decentralized collaborative learning, MLP, f = 1 sign-flip,
// mild heterogeneity.  Paper shape: mean-based rules (MD-MEAN, BOX-MEAN,
// plain MEAN) fail to converge under the sign flip, while MD-GEOM and
// BOX-GEOM converge to 77.8% / 78.8%.
//
//   ./bench/bench_fig3a_decentralized_f1 [--full] [--rounds N] [--delay P]
//       ...

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  using bcl::experiments::ScenarioSpec;
  std::vector<ScenarioSpec> specs;
  for (const char* rule :
       {"MEAN", "GEOMED", "MD-MEAN", "MD-GEOM", "BOX-MEAN", "BOX-GEOM"}) {
    specs.push_back(ScenarioSpec::parse(
        std::string("topology=decentralized attack=sign-flip f=1 seed=11 "
                    "het=mild rule=") +
        rule));
  }
  bcl::bench::run_scenarios("fig3a", std::move(specs), argc, argv);
  return 0;
}
