// Figure 3a: decentralized collaborative learning, MLP, f = 1 sign-flip,
// mild heterogeneity.  Paper shape: mean-based rules (MD-MEAN, BOX-MEAN,
// plain MEAN) fail to converge under the sign flip, while MD-GEOM and
// BOX-GEOM converge to 77.8% / 78.8%.
//
//   ./bench/bench_fig3a_decentralized_f1 [--full] [--rounds N] ...

#include "figure_harness.hpp"

int main(int argc, char** argv) {
  bcl::bench::FigureSpec spec;
  spec.figure = "fig3a";
  spec.rules = {"MEAN", "GEOMED", "MD-MEAN", "MD-GEOM", "BOX-MEAN",
                "BOX-GEOM"};
  spec.heterogeneities = {bcl::ml::Heterogeneity::Mild};
  spec.byzantine = 1;
  spec.attack = "sign-flip";
  spec.decentralized = true;
  return bcl::bench::run_figure(spec, argc, argv);
}
