// Microbenchmarks for the neural-network substrate: the im2col Conv2D and
// the gemm Dense against their pre-gemm reference implementations.
//
// Besides the google-benchmark suites, main() emits BENCH_micro_ml.json
// (see bench_json.hpp) so the layer-kernel perf trajectory is tracked
// across PRs.  `m` is the batch size N, `d` the per-example feature count.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "core/bcl.hpp"
#include "ml/conv2d.hpp"
#include "ml/dense.hpp"

namespace {

using namespace bcl;
using ml::Conv2D;
using ml::Dense;
using ml::Tensor;

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-1.0, 1.0);
  return t;
}

// CifarNet's first convolution: 3 -> 16 channels, 3x3, pad 1, 32x32 input.
constexpr std::size_t kN = 4;
constexpr std::size_t kInC = 3;
constexpr std::size_t kOutC = 16;
constexpr std::size_t kImg = 32;

Conv2D make_conv(Conv2D::Mode mode) {
  Conv2D conv(kInC, kOutC, 3, 1, mode);
  Rng rng(21);
  conv.initialize(rng);
  return conv;
}

void BM_Conv2DForwardDirect(benchmark::State& state) {
  Conv2D conv = make_conv(Conv2D::Mode::Direct);
  const Tensor x = random_tensor({kN, kInC, kImg, kImg}, 22);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_Conv2DForwardDirect);

void BM_Conv2DForwardIm2col(benchmark::State& state) {
  Conv2D conv = make_conv(Conv2D::Mode::Im2col);
  const Tensor x = random_tensor({kN, kInC, kImg, kImg}, 22);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_Conv2DForwardIm2col);

void run_conv_backward(benchmark::State& state, Conv2D::Mode mode) {
  Conv2D conv = make_conv(mode);
  const Tensor x = random_tensor({kN, kInC, kImg, kImg}, 22);
  const Tensor y = conv.forward(x);
  const Tensor gy = random_tensor(y.shape(), 23);
  for (auto _ : state) {
    conv.zero_gradients();
    benchmark::DoNotOptimize(conv.backward(gy));
  }
}
void BM_Conv2DBackwardDirect(benchmark::State& s) {
  run_conv_backward(s, Conv2D::Mode::Direct);
}
BENCHMARK(BM_Conv2DBackwardDirect);
void BM_Conv2DBackwardIm2col(benchmark::State& s) {
  run_conv_backward(s, Conv2D::Mode::Im2col);
}
BENCHMARK(BM_Conv2DBackwardIm2col);

void BM_DenseForward(benchmark::State& state) {
  const std::size_t in = static_cast<std::size_t>(state.range(0));
  Dense dense(in, 128);
  Rng rng(24);
  dense.initialize(rng);
  const Tensor x = random_tensor({32, in}, 25);
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(x));
}
BENCHMARK(BM_DenseForward)->RangeMultiplier(4)->Range(64, 4096);

// --- machine-readable records (BENCH_micro_ml.json) -----------------------

// Reference Dense forward/backward: the pre-gemm per-row loops, kept here
// as the baseline the JSON speedups compare against.
Tensor dense_forward_naive(const Tensor& x, const std::vector<double>& w,
                           const std::vector<double>& b, std::size_t in,
                           std::size_t out) {
  const std::size_t batch = x.dim(0);
  Tensor y({batch, out});
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xr = x.data() + n * in;
    double* yr = y.data() + n * out;
    for (std::size_t o = 0; o < out; ++o) yr[o] = b[o];
    for (std::size_t i = 0; i < in; ++i) {
      const double xi = xr[i];
      if (xi == 0.0) continue;
      const double* wr = w.data() + i * out;
      for (std::size_t o = 0; o < out; ++o) yr[o] += xi * wr[o];
    }
  }
  return y;
}

void emit_json() {
  using benchjson::Record;
  using benchjson::time_ns;
  std::vector<Record> records;

  // Conv2D: im2col vs direct, forward and backward.
  {
    const Tensor x = random_tensor({kN, kInC, kImg, kImg}, 22);
    Conv2D direct = make_conv(Conv2D::Mode::Direct);
    Conv2D fast = make_conv(Conv2D::Mode::Im2col);
    const std::size_t d = kInC * kImg * kImg;
    const double fwd_naive =
        time_ns([&] { benchmark::DoNotOptimize(direct.forward(x)); });
    const double fwd_fast =
        time_ns([&] { benchmark::DoNotOptimize(fast.forward(x)); });
    records.push_back({"conv2d_forward_direct", kN, d, fwd_naive, 0.0});
    records.push_back({"conv2d_forward_im2col", kN, d, fwd_fast,
                       fwd_fast > 0.0 ? fwd_naive / fwd_fast : 0.0});

    const Tensor gy = random_tensor(fast.forward(x).shape(), 23);
    direct.forward(x);
    const double bwd_naive = time_ns([&] {
      direct.zero_gradients();
      benchmark::DoNotOptimize(direct.backward(gy));
    });
    const double bwd_fast = time_ns([&] {
      fast.zero_gradients();
      benchmark::DoNotOptimize(fast.backward(gy));
    });
    records.push_back({"conv2d_backward_direct", kN, d, bwd_naive, 0.0});
    records.push_back({"conv2d_backward_im2col", kN, d, bwd_fast,
                       bwd_fast > 0.0 ? bwd_naive / bwd_fast : 0.0});
  }

  // Dense forward: gemm vs the per-row reference loop.
  {
    const std::size_t in = 3072, out = 128, batch = 32;
    Dense dense(in, out);
    Rng rng(24);
    dense.initialize(rng);
    std::vector<double> params(dense.parameter_count());
    dense.read_parameters(params.data());
    const std::vector<double> w(params.begin(),
                                params.begin() + static_cast<long>(in * out));
    const std::vector<double> b(params.begin() + static_cast<long>(in * out),
                                params.end());
    const Tensor x = random_tensor({batch, in}, 25);
    const double naive = time_ns([&] {
      benchmark::DoNotOptimize(dense_forward_naive(x, w, b, in, out));
    });
    const double fast =
        time_ns([&] { benchmark::DoNotOptimize(dense.forward(x)); });
    records.push_back({"dense_forward_blocked", batch, in, fast,
                       fast > 0.0 ? naive / fast : 0.0});
  }

  const char* path = "BENCH_micro_ml.json";
  if (benchjson::write(path, records)) {
    std::printf("wrote %s (%zu records)\n", path, records.size());
    for (const auto& r : records) {
      std::printf("  %-28s m=%-3zu d=%-6zu %12.0f ns/op  speedup %.2fx\n",
                  r.op.c_str(), r.m, r.d, r.ns_op, r.speedup_vs_naive);
    }
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
  }
}

}  // namespace

// JSON records are written before the registered suites run, so they are
// emitted even when the --benchmark_filter selects nothing.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emit_json();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
