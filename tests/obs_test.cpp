// Flight-recorder tests: trace spans (nesting, thread attribution, disabled
// cost path), the metrics registry (bucket boundaries, quantiles, snapshot
// consistency under ThreadPool concurrency — run under TSan in CI), the
// capturable log sink, and the headline invariant that trace=off artifacts
// are bitwise identical to traced runs (the wall-clock field excepted).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace bcl {
namespace {

using experiments::ScenarioRunner;
using experiments::ScenarioSpec;
using experiments::ScenarioSummary;

/// Every test that arms the recorder restores Off and drains, so tests stay
/// independent of execution order.
class ScopedTraceLevel {
 public:
  explicit ScopedTraceLevel(obs::TraceLevel level) {
    obs::drain_trace();
    obs::set_trace_level(level);
  }
  ~ScopedTraceLevel() {
    obs::set_trace_level(obs::TraceLevel::Off);
    obs::drain_trace();
  }
};

TEST(TraceLevelTest, ParseRoundTripsAndRejects) {
  for (const auto level : {obs::TraceLevel::Off, obs::TraceLevel::Spans,
                           obs::TraceLevel::Full}) {
    EXPECT_EQ(obs::parse_trace_level(obs::to_string(level)), level);
  }
  EXPECT_THROW(obs::parse_trace_level("verbose"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_level(""), std::invalid_argument);
}

TEST(TraceSpanTest, OffRecordsNothing) {
  ScopedTraceLevel scope(obs::TraceLevel::Off);
  {
    BCL_TRACE_SPAN("should.not.appear");
    BCL_TRACE_SPAN_FINE("nor.this");
  }
  EXPECT_TRUE(obs::drain_trace().empty());
}

TEST(TraceSpanTest, SpansLevelSkipsFineSpans) {
  ScopedTraceLevel scope(obs::TraceLevel::Spans);
  {
    BCL_TRACE_SPAN("coarse");
    BCL_TRACE_SPAN_FINE("fine");
  }
  const obs::TraceBuffer buffer = obs::drain_trace();
  ASSERT_EQ(buffer.records.size(), 2u);  // coarse B + E only
  for (const auto& record : buffer.records) {
    EXPECT_STREQ(record.name, "coarse");
  }
}

TEST(TraceSpanTest, NestedSpansAreWellFormed) {
  ScopedTraceLevel scope(obs::TraceLevel::Full);
  {
    BCL_TRACE_SPAN("outer");
    {
      BCL_TRACE_SPAN("inner");
    }
  }
  const obs::TraceBuffer buffer = obs::drain_trace();
  ASSERT_EQ(buffer.records.size(), 4u);
  EXPECT_EQ(buffer.dropped, 0u);
  // One thread, so drain order is record order: outer-B inner-B inner-E
  // outer-E, with non-decreasing timestamps.
  EXPECT_STREQ(buffer.records[0].name, "outer");
  EXPECT_EQ(buffer.records[0].phase, 'B');
  EXPECT_STREQ(buffer.records[1].name, "inner");
  EXPECT_EQ(buffer.records[1].phase, 'B');
  EXPECT_STREQ(buffer.records[2].name, "inner");
  EXPECT_EQ(buffer.records[2].phase, 'E');
  EXPECT_STREQ(buffer.records[3].name, "outer");
  EXPECT_EQ(buffer.records[3].phase, 'E');
  for (std::size_t i = 1; i < buffer.records.size(); ++i) {
    EXPECT_EQ(buffer.records[i].tid, buffer.records[0].tid);
    EXPECT_GE(buffer.records[i].ts_ns, buffer.records[i - 1].ts_ns);
  }
}

TEST(TraceSpanTest, ThreadAttributionIsPerWorker) {
  ScopedTraceLevel scope(obs::TraceLevel::Full);
  ThreadPool pool(3);
  pool.parallel_for(0, 16, [](std::size_t) {
    BCL_TRACE_SPAN("worker.task");
  });
  const obs::TraceBuffer buffer = obs::drain_trace();
  EXPECT_EQ(buffer.records.size(), 32u);  // 16 B/E pairs
  std::set<std::uint32_t> tids;
  std::map<std::uint32_t, int> open;
  for (const auto& record : buffer.records) {
    tids.insert(record.tid);
    // Records are concatenated per thread, so each tid's slice must be a
    // valid B/E sequence on its own.
    open[record.tid] += record.phase == 'B' ? 1 : -1;
    EXPECT_GE(open[record.tid], 0);
  }
  for (const auto& [tid, depth] : open) EXPECT_EQ(depth, 0) << "tid " << tid;
  // parallel_for help-drains on the caller, so 1..4 distinct threads can
  // have participated; every one got a distinct tid.
  EXPECT_GE(tids.size(), 1u);
  EXPECT_LE(tids.size(), 4u);
  EXPECT_GE(obs::trace_thread_count(), tids.size());
}

TEST(TraceExportTest, ChromeTraceIsWellFormedJson) {
  ScopedTraceLevel scope(obs::TraceLevel::Spans);
  {
    BCL_TRACE_SPAN("alpha");
    {
      BCL_TRACE_SPAN("beta");
    }
  }
  const obs::TraceBuffer buffer = obs::drain_trace();
  std::ostringstream out;
  obs::write_chrome_trace(out, buffer);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  // Matched B/E pairs only.
  std::size_t b = 0, e = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++b;
    ++pos;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++e;
    ++pos;
  }
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(e, 2u);
}

TEST(TraceProfileTest, SelfTimeSubtractsNestedChildren) {
  // Hand-built record stream: outer [0, 100] with inner [10, 40] on one
  // thread; a second thread contributes its own outer [0, 50].
  const char* outer = "outer";
  const char* inner = "inner";
  std::vector<obs::TraceRecord> records = {
      {outer, 0, 0, 'B'},   {inner, 10, 0, 'B'}, {inner, 40, 0, 'E'},
      {outer, 100, 0, 'E'}, {outer, 0, 1, 'B'},  {outer, 50, 1, 'E'},
  };
  const auto stats = obs::self_time(records);
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by self time descending: outer self = (100-30) + 50 = 120.
  EXPECT_EQ(stats[0].name, "outer");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].total_ns, 150u);
  EXPECT_EQ(stats[0].self_ns, 120u);
  EXPECT_EQ(stats[1].name, "inner");
  EXPECT_EQ(stats[1].total_ns, 30u);
  EXPECT_EQ(stats[1].self_ns, 30u);
}

TEST(HistogramTest, BucketBoundariesRoundTrip) {
  using obs::Histogram;
  for (int i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const double lo = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "bucket " << i;
    const double hi = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(hi), i + 1) << "bucket " << i;
  }
  // Underflow and overflow land in the edge buckets.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
}

TEST(HistogramTest, SnapshotTracksExactMoments) {
  obs::Histogram histogram;
  for (const double v : {0.5, 2.0, 8.0, 8.0}) histogram.record(v);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 18.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 4.625);
  // Quantiles are bucket upper bounds clamped into [min, max]: within one
  // bucket width (2^(1/4) relative) of the true order statistic.
  const double width = std::pow(2.0, 0.25);
  EXPECT_GE(snap.quantile(0.0), 0.5);
  EXPECT_LE(snap.quantile(0.0), 0.5 * width);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 8.0);  // clamped to max
  const double p50 = snap.quantile(0.5);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 2.0 * width);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  obs::Histogram histogram;
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsConsistentUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.hits");
  obs::Histogram& histogram = registry.histogram("test.latency");
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 250;
  ThreadPool pool(4);
  pool.parallel_for(0, kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      counter.add();
      histogram.record(static_cast<double>(task + 1));
      // Name lookups from workers must be safe too (mutex-guarded).
      registry.counter("test.lookups").add();
    }
  });
  registry.gauge("test.level").set(3.5);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("test.hits"), kTasks * kPerTask);
  EXPECT_EQ(snap.counter_or("test.lookups"), kTasks * kPerTask);
  EXPECT_EQ(snap.counter_or("test.absent", 7u), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.level"), 3.5);
  const obs::HistogramSnapshot h = snap.histograms.at("test.latency");
  EXPECT_EQ(h.count, kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, static_cast<double>(kTasks));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(LoggingTest, ScopedCaptureCollectsAndRestores) {
  const std::uint64_t warnings_before = log_count(LogLevel::Warn);
  {
    ScopedLogCapture capture;
    log_warn() << "flight recorder test warning";
    log_info() << "and an info line";
    EXPECT_TRUE(capture.contains(LogLevel::Warn, "recorder test"));
    EXPECT_FALSE(capture.contains(LogLevel::Error, "recorder test"));
    EXPECT_EQ(capture.records().size(), 2u);
  }
  EXPECT_EQ(log_count(LogLevel::Warn), warnings_before + 1);
  // The bounded ring keeps the records regardless of sink.
  bool found = false;
  for (const auto& record : recent_log_records()) {
    found = found ||
            record.message.find("flight recorder test warning") !=
                std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioTraceKeyTest, RoundTripsAndRejects) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.trace, "off");
  spec.set("trace", "spans");
  EXPECT_EQ(ScenarioSpec::parse(spec.to_string()), spec);
  EXPECT_NE(spec.name().find("trace:spans"), std::string::npos);
  EXPECT_THROW(spec.set("trace", "everything"), std::invalid_argument);
}

ScenarioSpec small_spec(const std::string& trace) {
  ScenarioSpec spec;
  spec.rule = "KRUM";
  spec.attack = "sign-flip";
  spec.clients = 8;
  spec.byzantine = 1;
  spec.rounds = 3;
  spec.trace = trace;
  return spec;
}

void expect_identical_histories(const ScenarioSummary& a,
                                const ScenarioSummary& b) {
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_TRUE(b.error.empty()) << b.error;
  ASSERT_EQ(a.result.history.size(), b.result.history.size());
  for (std::size_t r = 0; r < a.result.history.size(); ++r) {
    const RoundMetrics& x = a.result.history[r];
    const RoundMetrics& y = b.result.history[r];
    // Every field except wall-clock seconds must be bitwise identical:
    // recording spans must not perturb the computation.
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.accuracy, y.accuracy);
    EXPECT_EQ(x.accuracy_min, y.accuracy_min);
    EXPECT_EQ(x.accuracy_max, y.accuracy_max);
    EXPECT_EQ(x.mean_honest_loss, y.mean_honest_loss);
    EXPECT_EQ(x.learning_rate, y.learning_rate);
    EXPECT_EQ(x.disagreement, y.disagreement);
    EXPECT_EQ(x.gradient_diameter, y.gradient_diameter);
    EXPECT_EQ(x.sim_seconds, y.sim_seconds);
    EXPECT_EQ(x.bytes_delivered, y.bytes_delivered);
    EXPECT_EQ(x.bytes_dense, y.bytes_dense);
    EXPECT_EQ(x.live_clients, y.live_clients);
    EXPECT_EQ(x.stale_accepted, y.stale_accepted);
    EXPECT_EQ(x.stale_rejected, y.stale_rejected);
    EXPECT_EQ(x.degraded, y.degraded);
    EXPECT_EQ(x.cohort, y.cohort);
    EXPECT_EQ(x.shards, y.shards);
  }
}

TEST(TraceBitwiseTest, TracedCentralizedRunMatchesUntraced) {
  ScenarioRunner runner;
  const ScenarioSummary off = runner.run(small_spec("off"));
  const ScenarioSummary full = runner.run(small_spec("full"));
  expect_identical_histories(off, full);
  EXPECT_TRUE(off.trace.empty());
  EXPECT_FALSE(full.trace.empty());
  // Deterministic counters must agree between the runs too.
  EXPECT_EQ(off.metrics.counters, full.metrics.counters);
  // And the recorder is disarmed again after the traced cell.
  EXPECT_EQ(obs::trace_level(), obs::TraceLevel::Off);
}

TEST(TraceBitwiseTest, TracedDecentralizedAsyncRunMatchesUntraced) {
  ScenarioSpec spec;
  spec.rule = "BOX-GEOM";
  spec.attack = "sign-flip";
  spec.clients = 7;
  spec.byzantine = 1;
  spec.rounds = 2;
  spec.topology = experiments::Topology::Decentralized;
  spec.net = "async:delay=exp,mean=2,timeout=50";
  ScenarioRunner runner;
  ScenarioSpec traced = spec;
  traced.trace = "full";
  const ScenarioSummary off = runner.run(spec);
  const ScenarioSummary full = runner.run(traced);
  expect_identical_histories(off, full);
  // The sub-round sharing and network counters are deterministic under the
  // seeded engine and must survive the emitter plumbing.
  EXPECT_GT(full.metrics.counter_or("agreement.gram_builds"), 0u);
  EXPECT_GT(full.metrics.counter_or("net.messages_delivered"), 0u);
  EXPECT_EQ(off.metrics.counters, full.metrics.counters);
}

TEST(TraceEmitterTest, WritesPerCellTraceFiles) {
  const std::string dir = testing::TempDir() + "bcl_obs_traces";
  experiments::TraceEmitter emitter(dir, false);
  ScenarioRunner runner;
  std::vector<experiments::MetricsEmitter*> emitters = {&emitter};
  runner.run(small_spec("spans"), emitters);
  emitter.finish();
  ASSERT_EQ(emitter.written().size(), 1u);
  std::ifstream in(emitter.written()[0]);
  ASSERT_TRUE(in.good()) << emitter.written()[0];
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.str().find("\"round\""), std::string::npos);
}

}  // namespace
}  // namespace bcl
